"""E3 -- operation latency under bounded link delays (Lemma V.4).

Measures write, extended-write and read durations on the simulator with
per-link delay bounds tau0 = tau1 = 1 and a sweep of tau2 = mu * tau1, and
checks them against the closed-form bounds:

* write           <= 4 tau1 + 2 tau0
* extended write  <= max(3 tau1 + 2 tau0 + 2 tau2, 4 tau1 + 2 tau0)
* read            <= max(6 tau1 + 2 tau2, 6 tau1 + 2 tau0 + tau2)
"""

import pytest

from repro.core.analysis import latency_bounds
from repro.core.config import LDSConfig
from repro.core.system import LDSSystem
from repro.net.latency import BoundedLatencyModel

from bench_utils import emit_table

MU_SWEEP = [2.0, 5.0, 10.0, 20.0]
RUNS_PER_POINT = 5


def _measure(mu: float):
    config = LDSConfig(n1=5, n2=6, f1=1, f2=1)
    write_durations, extended_durations, read_durations = [], [], []
    for seed in range(RUNS_PER_POINT):
        latency = BoundedLatencyModel(tau0=1.0, tau1=1.0, tau2=mu, seed=seed)
        system = LDSSystem(config, num_writers=1, num_readers=1, latency_model=latency)
        write = system.write(b"latency probe")
        system.run_until_idle()
        clear_time = system.storage.temporary_clear_time(write.tag)
        write_durations.append(write.duration)
        extended_durations.append((clear_time or write.responded_at) - write.invoked_at)
        read_durations.append(system.read().duration)
    return (max(write_durations), max(extended_durations), max(read_durations))


def run_experiment():
    rows = []
    for mu in MU_SWEEP:
        bounds = latency_bounds(1.0, 1.0, mu)
        write_max, extended_max, read_max = _measure(mu)
        rows.append((
            f"mu={mu:g}",
            f"{bounds.write:.1f}", f"{write_max:.2f}",
            f"{bounds.extended_write:.1f}", f"{extended_max:.2f}",
            f"{bounds.read:.1f}", f"{read_max:.2f}",
        ))
    emit_table(
        "E3-latency", "Operation durations vs Lemma V.4 bounds (tau0=tau1=1, tau2=mu)",
        ("point", "write bound", "write max", "ext-write bound", "ext-write max",
         "read bound", "read max"),
        rows,
    )
    return rows


def test_bench_latency_bounds(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for row in rows:
        assert float(row[2]) <= float(row[1]) + 1e-9
        assert float(row[4]) <= float(row[3]) + 1e-9
        assert float(row[6]) <= float(row[5]) + 1e-9


def test_bench_read_latency_simulation_speed(benchmark):
    """Wall-clock time of a quiescent (regenerating) read simulation."""
    config = LDSConfig(n1=7, n2=9, f1=2, f2=2)
    system = LDSSystem(config, latency_model=BoundedLatencyModel(seed=1))
    system.write(b"warm value")
    system.run_until_idle()

    def one_read():
        return system.read()

    result = benchmark(one_read)
    assert result.value == b"warm value"
