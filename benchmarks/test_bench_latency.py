"""E3 -- operation latency under bounded link delays (Lemma V.4),
plus the tail-latency percentile sweep over ``read_quorum``.

The first half measures write, extended-write and read durations on the
simulator with per-link delay bounds tau0 = tau1 = 1 and a sweep of
tau2 = mu * tau1, and checks them against the closed-form bounds:

* write           <= 4 tau1 + 2 tau0
* extended write  <= max(3 tau1 + 2 tau0 + 2 tau2, 4 tau1 + 2 tau0)
* read            <= max(6 tau1 + 2 tau2, 6 tau1 + 2 tau0 + tau2)

The second half drives the cluster-level tail-latency observability
stack (``repro.obs.latency``) under the same heavy-lag quorum regime as
``test_bench_quorum_reads`` and emits machine-readable per-class
p50/p99/p999 percentiles plus the dominant critical-path phase of each
class's p99+ band to ``benchmarks/results/BENCH_latency.json`` -- the
quorum-width / tail-latency trade-off in percentiles, not just means.
"""

import pytest

from repro.core.analysis import latency_bounds
from repro.core.config import LDSConfig
from repro.core.system import LDSSystem
from repro.net.latency import BoundedLatencyModel

from bench_utils import emit_json, emit_table

MU_SWEEP = [2.0, 5.0, 10.0, 20.0]
RUNS_PER_POINT = 5


def _measure(mu: float):
    config = LDSConfig(n1=5, n2=6, f1=1, f2=1)
    write_durations, extended_durations, read_durations = [], [], []
    for seed in range(RUNS_PER_POINT):
        latency = BoundedLatencyModel(tau0=1.0, tau1=1.0, tau2=mu, seed=seed)
        system = LDSSystem(config, num_writers=1, num_readers=1, latency_model=latency)
        write = system.write(b"latency probe")
        system.run_until_idle()
        clear_time = system.storage.temporary_clear_time(write.tag)
        write_durations.append(write.duration)
        extended_durations.append((clear_time or write.responded_at) - write.invoked_at)
        read_durations.append(system.read().duration)
    return (max(write_durations), max(extended_durations), max(read_durations))


def run_experiment():
    rows = []
    for mu in MU_SWEEP:
        bounds = latency_bounds(1.0, 1.0, mu)
        write_max, extended_max, read_max = _measure(mu)
        rows.append((
            f"mu={mu:g}",
            f"{bounds.write:.1f}", f"{write_max:.2f}",
            f"{bounds.extended_write:.1f}", f"{extended_max:.2f}",
            f"{bounds.read:.1f}", f"{read_max:.2f}",
        ))
    emit_table(
        "E3-latency", "Operation durations vs Lemma V.4 bounds (tau0=tau1=1, tau2=mu)",
        ("point", "write bound", "write max", "ext-write bound", "ext-write max",
         "read bound", "read max"),
        rows,
    )
    return rows


def test_bench_latency_bounds(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for row in rows:
        assert float(row[2]) <= float(row[1]) + 1e-9
        assert float(row[4]) <= float(row[3]) + 1e-9
        assert float(row[6]) <= float(row[5]) + 1e-9


def test_bench_read_latency_simulation_speed(benchmark):
    """Wall-clock time of a quiescent (regenerating) read simulation."""
    config = LDSConfig(n1=7, n2=9, f1=2, f2=2)
    system = LDSSystem(config, latency_model=BoundedLatencyModel(seed=1))
    system.write(b"warm value")
    system.run_until_idle()

    def one_read():
        return system.read()

    result = benchmark(one_read)
    assert result.value == b"warm value"


# -- cluster tail-latency percentiles vs read_quorum ---------------------------

TAIL_SEED = 19
TAIL_KEYS = 24
TAIL_OPERATIONS = 240
TAIL_WRITE_FRACTION = 0.3
TAIL_DURATION = 900.0
TAIL_REPLICATION_LAG = 500.0
TAIL_POOLS = [f"pool-{i}" for i in range(4)]
TAIL_QUANTILES = ("p50", "p99", "p999")


def _tail_workload():
    from repro import WorkloadGenerator

    generator = WorkloadGenerator(seed=TAIL_SEED, client_spacing=60.0)
    return generator.zipf_keyed(
        [f"obj-{i}" for i in range(TAIL_KEYS)],
        TAIL_OPERATIONS, write_fraction=TAIL_WRITE_FRACTION,
        duration=TAIL_DURATION, s=1.1,
    )


def _tail_run(read_quorum: int):
    from repro import (ClusterSimulation, KeyedWorkloadRunner,
                       ReplicationConfig)

    config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
    simulation = ClusterSimulation(
        config, TAIL_POOLS, seed=TAIL_SEED, latency=True,
        replication=ReplicationConfig(r=3,
                                      replication_lag=TAIL_REPLICATION_LAG,
                                      read_quorum=read_quorum),
        read_policy="quorum",
    )
    KeyedWorkloadRunner(simulation).run(_tail_workload())
    audit = simulation.audit()
    assert audit.ok, audit.describe()
    tracker = simulation.telemetry.latency
    classes = {}
    for op_class, row in tracker.summary().items():
        classes[op_class] = {
            "count": row["count"],
            **{q: round(row[q], 3) for q in TAIL_QUANTILES},
            "dominant_p99_phase": row["dominant_p99_phase"],
        }
    return {"read_quorum": read_quorum, "classes": classes,
            "stranded": tracker.stranded}


def test_bench_tail_latency_quantiles():
    runs = [_tail_run(q) for q in (1, 2, 3)]

    rows = []
    for run in runs:
        for op_class, stats in sorted(run["classes"].items()):
            rows.append((
                f"q={run['read_quorum']}", op_class, stats["count"],
                f"{stats['p50']:.1f}", f"{stats['p99']:.1f}",
                f"{stats['p999']:.1f}", stats["dominant_p99_phase"],
            ))
    emit_table(
        "tail_latency",
        "per-class latency percentiles + p99 critical-path phase vs "
        f"read_quorum (r=3, lag={TAIL_REPLICATION_LAG:g})",
        ["point", "op class", "n", "p50", "p99", "p999", "p99+ phase"],
        rows,
    )

    # Every sweep point must observe quorum reads with a full percentile
    # ladder and a critical-path attribution for the tail.
    for run in runs:
        assert "quorum-read" in run["classes"], run
        stats = run["classes"]["quorum-read"]
        assert stats["count"] > 0
        assert stats["p50"] <= stats["p99"] <= stats["p999"]
        assert stats["dominant_p99_phase"]

    emit_json("BENCH_latency.json", {
        "name": "tail_latency",
        "seed": TAIL_SEED,
        "experiment": "tail_latency",
        "config": {
            "r": 3, "pools": len(TAIL_POOLS), "keys": TAIL_KEYS,
            "operations": TAIL_OPERATIONS,
            "write_fraction": TAIL_WRITE_FRACTION,
            "replication_lag": TAIL_REPLICATION_LAG,
            "read_policy": "quorum",
            "read_quorum_sweep": [run["read_quorum"] for run in runs],
        },
        "metrics": {f"q{run['read_quorum']}": run["classes"]
                    for run in runs},
    })
