"""Telemetry-overhead benchmark: full instrumentation vs none.

Runs the same seeded quorum-read workload twice -- once bare, once with
every telemetry pillar on (registry, sampler, tracer, pump profile) --
and reports the wall-clock overhead of observing the run, alongside the
artefact sizes (trace events, samples, profiled event types).  The
correctness half is free: the two runs must produce identical kernel
fingerprints, which is the subsystem's governing invariant (telemetry
is pure observation).

There is no paper analogue; this characterises the instrumentation
layer itself (ROADMAP: flamegraph-backed pump benchmarking).
"""

from __future__ import annotations

import time

from bench_utils import emit_json, emit_table

from repro import (
    ClusterSimulation,
    KeyedWorkloadRunner,
    LDSConfig,
    ReplicationConfig,
    Telemetry,
    WorkloadGenerator,
)

NUM_KEYS = 24
OPERATIONS = 240
WRITE_FRACTION = 0.3
DURATION = 900.0
SEED = 19
POOLS = [f"pool-{i}" for i in range(4)]
SAMPLE_INTERVAL = 25.0


def _workload():
    generator = WorkloadGenerator(seed=SEED, client_spacing=60.0)
    return generator.zipf_keyed(
        [f"obj-{i}" for i in range(NUM_KEYS)],
        OPERATIONS, write_fraction=WRITE_FRACTION, duration=DURATION, s=1.1,
    )


def _run(telemetry):
    config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
    simulation = ClusterSimulation(
        config, POOLS, seed=SEED,
        replication=ReplicationConfig(r=3, replication_lag=250.0,
                                      read_quorum=2),
        read_policy="quorum",
        telemetry=telemetry,
    )
    started = time.perf_counter()
    KeyedWorkloadRunner(simulation).run(_workload())
    wall = time.perf_counter() - started
    return simulation, wall


def test_bench_telemetry_overhead():
    _, bare_wall = _run(None)
    bare_sim, bare_wall_2 = _run(None)
    bare_wall = min(bare_wall, bare_wall_2)

    telemetry = Telemetry.full(sample_interval=SAMPLE_INTERVAL)
    full_sim, full_wall = _run(telemetry)

    # The governing invariant, asserted where the overhead is measured:
    # instrumentation observed the run without perturbing it.
    assert full_sim.kernel.fingerprint == bare_sim.kernel.fingerprint

    overhead = full_wall / bare_wall if bare_wall else 1.0
    trace_events = len(telemetry.trace.events)
    samples = len(telemetry.sampler.samples)
    profile = telemetry.pump_profile

    emit_table(
        "telemetry_overhead",
        "full telemetry vs bare run (same seed, fingerprint-identical)",
        ["run", "wall ms", "trace events", "samples", "profiled types"],
        [
            ("bare", f"{bare_wall * 1e3:.1f}", "-", "-", "-"),
            ("full", f"{full_wall * 1e3:.1f}", trace_events, samples,
             len(profile.rows())),
            ("full/bare", f"{overhead:.2f}x", "", "", ""),
        ],
    )
    emit_json("BENCH_telemetry.json", {
        "name": "telemetry_overhead",
        "seed": SEED,
        "config": {"pools": len(POOLS), "keys": NUM_KEYS,
                   "operations": OPERATIONS, "r": 3, "read_quorum": 2,
                   "sample_interval": SAMPLE_INTERVAL},
        "metrics": {
            "full_over_bare_wall": overhead,
            "bare_wall_s": bare_wall,
            "full_wall_s": full_wall,
            "trace_events": trace_events,
            "samples": samples,
            "profiled_event_types": len(profile.rows()),
            "profiled_events": profile.events,
        },
    })

    # Loose bound only (single-sample wall clocks are noisy on shared
    # runners): full telemetry must not blow the run up by 3x-class
    # factors; the emitted JSON is the real trajectory signal.
    assert overhead <= 3.0
    assert trace_events > 0 and samples > 0 and profile.events > 0
