"""Cluster scale-out benchmark: throughput and storage balance vs pool count.

Drives the same Zipf-skewed keyed workload through sharded clusters of
increasing pool counts and reports:

* virtual-time makespan (the busiest shard's clock when the workload
  drains) and throughput in operations per unit virtual time -- more
  pools spread the per-key load so the makespan should not degrade as the
  cluster grows;
* placement balance (coefficient of variation of shards per pool) and
  storage balance (CV of the normalised L1+L2 storage cost per pool) --
  consistent hashing should keep both CVs moderate at every size;
* router batching efficiency (operations per flushed batch).

There is no paper analogue (the paper stops at the single-deployment
analysis); this benchmark characterises the new cluster layer itself.
"""

from __future__ import annotations

import time

from bench_utils import emit_table

from repro import (
    KeyedWorkloadRunner,
    LDSConfig,
    ShardedCluster,
    WorkloadGenerator,
)
from repro.cluster.ring import RingBalance

NUM_KEYS = 48
NUM_OPERATIONS = 192
DURATION = 400.0


def _run_cluster(num_pools: int):
    config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
    cluster = ShardedCluster(config, [f"pool-{i}" for i in range(num_pools)])
    keys = [f"obj-{i}" for i in range(NUM_KEYS)]
    generator = WorkloadGenerator(seed=23, client_spacing=60.0)
    workload = generator.zipf_keyed(
        keys, num_operations=NUM_OPERATIONS, write_fraction=0.4,
        duration=DURATION, s=1.2,
    )
    started = time.perf_counter()
    report = KeyedWorkloadRunner(cluster.router).run(workload)
    wall = time.perf_counter() - started

    makespan = max(
        shard.system.simulator.now for shard in cluster.router.shards.values()
    )
    throughput = len(workload) / makespan if makespan else 0.0
    shard_cv = cluster.router.shard_balance().coefficient_of_variation
    storage_cv = RingBalance.from_counts(
        cluster.storage_by_pool()
    ).coefficient_of_variation
    stats = cluster.router_stats
    return {
        "report": report,
        "wall": wall,
        "makespan": makespan,
        "throughput": throughput,
        "shard_cv": shard_cv,
        "storage_cv": storage_cv,
        "mean_batch": stats.mean_batch_size,
        "shards": len(cluster.router.shards),
    }


def test_bench_cluster_scaleout():
    rows = []
    results = {}
    for num_pools in (2, 4, 8):
        outcome = _run_cluster(num_pools)
        results[num_pools] = outcome
        assert outcome["report"].is_atomic
        assert outcome["report"].incomplete_operations == 0
        rows.append((
            num_pools,
            outcome["shards"],
            f"{outcome['makespan']:.0f}",
            f"{outcome['throughput']:.3f}",
            f"{outcome['shard_cv']:.3f}",
            f"{outcome['storage_cv']:.3f}",
            f"{outcome['mean_batch']:.1f}",
            f"{outcome['wall'] * 1000:.0f}",
        ))
    emit_table(
        "cluster_scaleout",
        f"Zipf keyed workload ({NUM_OPERATIONS} ops, {NUM_KEYS} keys) vs pool count",
        ("pools", "shards", "makespan", "ops/time", "shard CV",
         "storage CV", "mean batch", "wall ms"),
        rows,
    )
    # Growing the cluster must not degrade virtual-time throughput: the
    # workload is fixed, so the makespan is dominated by the hottest key,
    # not by the pool count.
    assert results[8]["throughput"] >= 0.5 * results[2]["throughput"]
    # Consistent hashing keeps storage spread sane at every size (the CV
    # bound is loose: with only 48 keys the placement is naturally lumpy).
    for outcome in results.values():
        assert outcome["storage_cv"] < 1.0


def test_bench_cluster_scaleout_balance_large_keyspace():
    """With a production-sized keyspace the placement balance tightens."""
    config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
    cluster = ShardedCluster(config, [f"pool-{i}" for i in range(8)])
    keys = [f"obj-{i}" for i in range(20_000)]
    balance = cluster.membership.ring.balance(keys)
    emit_table(
        "cluster_placement_balance",
        "consistent-hash balance, 8 pools, 20k keys",
        ("pool", "keys"),
        sorted(balance.counts.items()),
    )
    assert balance.coefficient_of_variation < 0.15
