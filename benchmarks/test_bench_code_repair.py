"""E7 -- repair bandwidth of the code layer (Section II-c, reference [25]).

The reason LDS uses MBR regenerating codes is that reconstructing one
coded element via repair downloads only ``d * beta = alpha`` symbols,
whereas a Reed-Solomon style recreation downloads ``k`` full elements
(the whole object).  This benchmark measures the actual bytes moved by
the implemented codes for a sweep of (k, d) and compares with the
normalised formulas, alongside wall-clock encode/repair timings.
"""

import pytest

from repro.codes.product_matrix import ProductMatrixMBRCode
from repro.codes.reed_solomon import ReedSolomonCode

from bench_utils import emit_table

SWEEP = [(3, 4, 10), (4, 6, 12), (5, 8, 16), (8, 12, 24)]  # (k, d, n)
PAYLOAD = bytes(range(256)) * 2


def _mbr_repair_bytes(code: ProductMatrixMBRCode, payload: bytes) -> int:
    elements = code.encode(payload)
    failed = 0
    helpers = {i: code.helper_data(i, elements[i].data, failed) for i in range(1, code.d + 1)}
    repaired = code.repair(failed, helpers)
    assert repaired.data == elements[failed].data
    return sum(len(data) for data in helpers.values())


def _rs_recreate_bytes(code: ReedSolomonCode, payload: bytes) -> int:
    elements = code.encode(payload)
    subset = elements[1 : code.k + 1]
    assert code.decode(subset) == payload
    return sum(len(element.data) for element in subset)


def run_experiment():
    rows = []
    for k, d, n in SWEEP:
        mbr = ProductMatrixMBRCode(n=n, k=k, d=d)
        rs = ReedSolomonCode(n=n, k=k)
        payload_symbols = mbr.stripe_count(len(PAYLOAD)) * mbr.block_size
        mbr_bytes = _mbr_repair_bytes(mbr, PAYLOAD)
        rs_bytes = _rs_recreate_bytes(rs, PAYLOAD)
        rows.append((
            f"(n={n}, k={k}, d={d})",
            f"{float(mbr.repair_bandwidth_fraction):.3f}",
            f"{mbr_bytes / payload_symbols:.3f}",
            "1.000",
            f"{rs_bytes / (rs.stripe_count(len(PAYLOAD)) * rs.block_size):.3f}",
            f"{float(mbr.storage_overhead):.2f}",
            f"{rs.storage_overhead:.2f}",
        ))
    emit_table(
        "E7-repair-bandwidth",
        "Rebuilding one element: MBR repair vs Reed-Solomon recreation (normalised)",
        ("code", "MBR repair (paper)", "MBR repair (measured)",
         "RS recreate (paper)", "RS recreate (measured)",
         "MBR storage overhead", "RS storage overhead"),
        rows,
    )
    return rows


def test_bench_repair_bandwidth(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for row in rows:
        mbr_paper, mbr_measured = float(row[1]), float(row[2])
        rs_measured = float(row[4])
        assert mbr_measured == pytest.approx(mbr_paper, rel=1e-6)
        assert rs_measured == pytest.approx(1.0, rel=1e-6)
        # The headline claim: MBR repair moves strictly less data than a full
        # Reed-Solomon recreation whenever k > 1.
        assert mbr_measured < rs_measured
    # Shape: the repair advantage grows as k grows.
    fractions = [float(row[2]) for row in rows]
    assert fractions[-1] < fractions[0]


def test_bench_mbr_repair_wall_clock(benchmark):
    code = ProductMatrixMBRCode(n=16, k=5, d=8)
    elements = code.encode(PAYLOAD)
    helpers = {i: code.helper_data(i, elements[i].data, 0) for i in range(1, code.d + 1)}

    repaired = benchmark(code.repair, 0, helpers)
    assert repaired.data == elements[0].data


def test_bench_rs_decode_wall_clock(benchmark):
    code = ReedSolomonCode(n=16, k=5)
    elements = code.encode(PAYLOAD)

    decoded = benchmark(code.decode, elements[: code.k])
    assert decoded == PAYLOAD
