"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's quantitative results
(Lemmas V.2-V.5, Remarks 1-2, Figure 6) by driving the simulator and
printing a "paper vs measured" table.  The tables are printed to stdout
and also written to ``benchmarks/results/<experiment>.txt`` so they
survive pytest output capturing.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit_json(filename: str, payload) -> str:
    """Persist a machine-readable result next to the text tables.

    ``filename`` is taken verbatim (e.g. ``BENCH_quorum_reads.json``) so
    downstream tooling can address the artefact by a stable name; returns
    the written path.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def emit_table(experiment: str, title: str, header: Sequence[str],
               rows: Iterable[Sequence[object]]) -> str:
    """Format, print and persist a results table; returns the formatted text."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    header = tuple(str(cell) for cell in header)
    widths = [len(cell) for cell in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(row):
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))

    lines = [f"== {experiment}: {title} ==", fmt(header), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in rows)
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{experiment}.txt"), "w") as handle:
        handle.write(text)
    return text
