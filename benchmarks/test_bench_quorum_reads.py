"""Quorum-read benchmark: latency and session fallbacks vs quorum size.

Drives the same seeded Zipf workload (fixed write load, read-heavy mix,
heavy replication lag) through an r=3 cluster under the ``quorum``
routing policy with read_quorum = 1, 2 and 3, plus a lag-only control
(read_quorum=2 with read repair disabled), and reports how the quorum
width trades per-read transfer against freshness: a wider quorum pays
more store-read legs per read, but lands below a session floor less
often (a full quorum always contains the primary and never falls back),
while a narrow quorum under heavy lag spends a quarter of its reads on
expensive full protocol fallbacks at the primary -- which is why *mean*
read latency drops as the quorum widens in this regime.

Alongside the text table the run emits machine-readable results to
``benchmarks/results/BENCH_quorum_reads.json`` for downstream tooling.

There is no paper analogue for the sweep itself; the quorum discovery it
characterises is the paper's reader-side tag query, transplanted onto the
replica layer (the ROADMAP's quorum-reads / read-repair items).
"""

from __future__ import annotations

import time

from bench_utils import emit_json, emit_table

from repro import (
    ClusterSimulation,
    KeyedWorkloadRunner,
    LDSConfig,
    ReplicationConfig,
    WorkloadGenerator,
)

NUM_KEYS = 24
OPERATIONS = 240
WRITE_FRACTION = 0.3
DURATION = 900.0
REPLICATION_LAG = 500.0
SEED = 19
POOLS = [f"pool-{i}" for i in range(4)]


def _workload():
    generator = WorkloadGenerator(seed=SEED, client_spacing=60.0)
    return generator.zipf_keyed(
        [f"obj-{i}" for i in range(NUM_KEYS)],
        OPERATIONS, write_fraction=WRITE_FRACTION, duration=DURATION, s=1.1,
    )


def _run(read_quorum: int, read_repair: bool):
    config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
    simulation = ClusterSimulation(
        config, POOLS, seed=SEED,
        replication=ReplicationConfig(r=3,
                                      replication_lag=REPLICATION_LAG,
                                      read_quorum=read_quorum,
                                      read_repair=read_repair),
        read_policy="quorum",
    )
    started = time.perf_counter()
    report = KeyedWorkloadRunner(simulation).run(_workload())
    wall = time.perf_counter() - started
    distribution = simulation.read_distribution()
    audit = simulation.audit()
    assert audit.ok, audit.describe()
    return {
        "read_quorum": read_quorum,
        "read_repair": read_repair,
        "wall_s": wall,
        "mean_read_latency": report.read_latency.mean,
        "p95_read_latency": report.read_latency.p95,
        "quorum_reads": distribution.quorum_reads,
        "mean_quorum_depth": distribution.mean_quorum_depth,
        "session_fallbacks": distribution.session_fallbacks,
        "session_fallback_rate": distribution.session_fallback_rate,
        "read_repairs": distribution.read_repairs,
        "replication_cost": simulation.replicas.total_cost,
    }


def test_bench_quorum_reads():
    runs = [_run(q, True) for q in (1, 2, 3)]
    lag_only = _run(2, False)

    def row(run):
        label = f"{run['read_quorum']}" + ("" if run["read_repair"]
                                           else " (no repair)")
        return (
            label,
            f"{run['wall_s'] * 1e3:.1f}",
            f"{run['mean_read_latency']:.1f}",
            f"{run['p95_read_latency']:.1f}",
            f"{run['mean_quorum_depth']:.2f}",
            f"{run['session_fallback_rate']:.3f}",
            f"{run['read_repairs']}",
            f"{run['replication_cost']:.0f}",
        )

    emit_table(
        "quorum_reads",
        "read latency / session fallbacks vs read_quorum "
        f"(r=3, lag={REPLICATION_LAG:g}, fixed write load)",
        ["read_quorum", "wall ms", "mean read lat", "p95 read lat",
         "mean depth", "fallback rate", "read repairs", "replica traffic"],
        [row(run) for run in runs] + [row(lag_only)],
    )
    def label(run):
        suffix = "" if run["read_repair"] else "_no_repair"
        return f"q{run['read_quorum']}{suffix}"

    emit_json("BENCH_quorum_reads.json", {
        "name": "quorum_reads",
        "seed": SEED,
        "experiment": "quorum_reads",
        "config": {
            "r": 3, "pools": len(POOLS), "seed": SEED,
            "keys": NUM_KEYS, "operations": OPERATIONS,
            "write_fraction": WRITE_FRACTION,
            "replication_lag": REPLICATION_LAG,
        },
        # The cross-PR trajectory keys: one flat indicator set per
        # configuration (see benchmarks/test_results_schema.py).
        "metrics": {
            label(run): {
                "mean_read_latency": run["mean_read_latency"],
                "session_fallback_rate": run["session_fallback_rate"],
                "read_repairs": run["read_repairs"],
                "wall_s": run["wall_s"],
            }
            for run in runs + [lag_only]
        },
        "runs": runs + [lag_only],
    })

    by_quorum = {run["read_quorum"]: run for run in runs}
    # Every merge resolved at full depth (nothing died in this sweep).
    for quorum, run in by_quorum.items():
        assert run["mean_quorum_depth"] == quorum
    # A full quorum always contains the primary, so no merge can land
    # below a session floor; narrower quorums pay fallbacks instead, and
    # monotonically more of them as the window narrows.
    assert by_quorum[3]["session_fallbacks"] == 0
    assert by_quorum[2]["session_fallbacks"] > 0
    assert by_quorum[1]["session_fallbacks"] \
        > by_quorum[2]["session_fallbacks"]
    # Under heavy lag those fallbacks are full protocol reads, so the
    # narrow quorum is the *slow* configuration on mean read latency.
    assert by_quorum[1]["mean_read_latency"] \
        > by_quorum[3]["mean_read_latency"]
    # Each extra leg is an extra store-read transfer per read.
    assert by_quorum[1]["replication_cost"] \
        < by_quorum[2]["replication_cost"] \
        < by_quorum[3]["replication_cost"]
    # The acceptance claim: at r=3 with the same windows, read repair
    # measurably reduces session fallbacks vs lag-only catch-up.
    repaired = by_quorum[2]
    assert repaired["quorum_reads"] == lag_only["quorum_reads"]
    assert repaired["read_repairs"] > 0 and lag_only["read_repairs"] == 0
    assert repaired["session_fallbacks"] < lag_only["session_fallbacks"]
