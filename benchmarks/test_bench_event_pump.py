"""Event-pump benchmark: global kernel vs the legacy per-shard idle loop.

Drives the same seeded Zipf keyed workload through both execution backends
and reports wall-clock time, simulated events per second, and the kernel's
cross-shard interleaving rate.  The legacy loop runs each shard's queue to
quiescence in turn (no cross-shard timing, but perfect batch locality);
the global kernel merges every queue onto one clock.  Head selection is an
invalidation-tolerant heap over source head times (O(log S) per event; it
used to be an O(S) scan per event), so the kernel's overhead stays flat as
pools -- and with them registered event sources -- multiply.  The pool
sweep at a fixed operation count is the regression signal for that: the
kernel/legacy wall ratio must not grow with the source count.

There is no paper analogue; this characterises the simulation engine itself.
"""

from __future__ import annotations

import time

from bench_utils import emit_json, emit_table

from repro import (
    ClusterSimulation,
    KeyedWorkloadRunner,
    LDSConfig,
    ShardedCluster,
    WorkloadGenerator,
)

DURATION = 400.0
SEED = 23


def _pools(count: int):
    return [f"pool-{i}" for i in range(count)]


def _workload(num_keys: int, num_operations: int):
    generator = WorkloadGenerator(seed=SEED, client_spacing=60.0)
    return generator.zipf_keyed(
        [f"obj-{i}" for i in range(num_keys)],
        num_operations, write_fraction=0.4, duration=DURATION, s=1.2,
    )


def _run_legacy(pools: int, num_keys: int, num_operations: int):
    config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
    cluster = ShardedCluster(config, _pools(pools), seed=SEED)
    started = time.perf_counter()
    report = KeyedWorkloadRunner(cluster.router).run(
        _workload(num_keys, num_operations))
    wall = time.perf_counter() - started
    events = sum(shard.system.simulator.events_processed
                 for shard in cluster.router.shards.values())
    assert report.is_atomic
    return {"wall": wall, "events": events, "switch_rate": 0.0,
            "sources": len(cluster.router.shards)}


def _run_kernel(pools: int, num_keys: int, num_operations: int):
    config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
    simulation = ClusterSimulation(config, _pools(pools), seed=SEED)
    started = time.perf_counter()
    report = KeyedWorkloadRunner(simulation).run(
        _workload(num_keys, num_operations))
    wall = time.perf_counter() - started
    assert report.is_atomic
    return {"wall": wall, "events": simulation.kernel.events_processed,
            "switch_rate": simulation.interleaving.switch_rate,
            "sources": len(simulation.kernel.sources())}


def test_bench_event_pump():
    # Shards (event sources) scale with the cluster: 8 keys per pool, one
    # fixed per-shard load.  Under the old O(S)-scan head selection the
    # kernel/legacy wall ratio grew with the source count (measured 1.20x
    # at 3 pools / 24 sources -> 1.32x at 12 pools / 77 sources); with the
    # heap it must stay flat.
    rows = []
    ratios = {}
    kernel_walls = {}
    legacy_walls = {}
    for pools in (3, 8, 12):
        num_keys = 8 * pools
        num_operations = 6 * num_keys
        legacy = _run_legacy(pools, num_keys, num_operations)
        kernel = _run_kernel(pools, num_keys, num_operations)
        kernel_walls[pools] = kernel["wall"]
        legacy_walls[pools] = legacy["wall"]
        for backend, run in (("legacy-loop", legacy), ("global-kernel", kernel)):
            rows.append((
                pools,
                num_keys,
                num_operations,
                backend,
                run["sources"],
                f"{run['wall'] * 1e3:.1f}",
                run["events"],
                f"{run['events'] / run['wall']:,.0f}",
                f"{run['switch_rate']:.2f}",
            ))
        ratios[pools] = kernel["wall"] / legacy["wall"]
        rows.append((pools, num_keys, num_operations, "kernel/legacy wall",
                     "", f"{ratios[pools]:.2f}x", "", "", ""))

    emit_table(
        "event_pump",
        "global kernel vs legacy idle loop (O(log S) heap head selection)",
        ["pools", "keys", "ops", "backend", "sources", "wall ms",
         "sim events", "events/s", "switch rate"],
        rows,
    )
    emit_json("BENCH_event_pump.json", {
        "name": "event_pump",
        "seed": SEED,
        "config": {"duration": DURATION, "pool_counts": [3, 8, 12],
                   "keys_per_pool": 8, "ops_per_key": 6},
        "metrics": {
            f"pools_{pools}": {
                "kernel_over_legacy_wall": ratios[pools],
                "kernel_wall_s": kernel_walls[pools],
                "legacy_wall_s": legacy_walls[pools],
            }
            for pools in ratios
        },
    })

    # Loose sanity bound only: single-sample wall-clock ratios are noisy
    # on shared CI runners, so the table above is the real regression
    # signal; this assertion only catches a gross (2x-class) blow-up of
    # the kernel's per-event overhead at the largest source count.
    assert ratios[12] <= 2.0
