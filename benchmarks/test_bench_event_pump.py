"""Event-pump benchmark: global kernel vs the legacy per-shard idle loop.

Drives the same seeded Zipf keyed workload through both execution backends
and reports wall-clock time, simulated events per second, and the kernel's
cross-shard interleaving rate.  The legacy loop runs each shard's queue to
quiescence in turn (no cross-shard timing, but perfect batch locality);
the global kernel merges every queue onto one clock, paying one O(#sources)
scan per event for genuine interleaving.  The benchmark quantifies that
fidelity-for-throughput trade so experiment authors can pick a backend
deliberately.

There is no paper analogue; this characterises the simulation engine itself.
"""

from __future__ import annotations

import time

from bench_utils import emit_table

from repro import (
    ClusterSimulation,
    KeyedWorkloadRunner,
    LDSConfig,
    ShardedCluster,
    WorkloadGenerator,
)

NUM_KEYS = 32
DURATION = 400.0
SEED = 23
POOLS = [f"pool-{i}" for i in range(3)]


def _workload(num_operations: int):
    generator = WorkloadGenerator(seed=SEED, client_spacing=60.0)
    return generator.zipf_keyed(
        [f"obj-{i}" for i in range(NUM_KEYS)],
        num_operations, write_fraction=0.4, duration=DURATION, s=1.2,
    )


def _run_legacy(num_operations: int):
    config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
    cluster = ShardedCluster(config, POOLS, seed=SEED)
    started = time.perf_counter()
    report = KeyedWorkloadRunner(cluster.router).run(_workload(num_operations))
    wall = time.perf_counter() - started
    events = sum(shard.system.simulator.events_processed
                 for shard in cluster.router.shards.values())
    assert report.is_atomic
    return {"wall": wall, "events": events, "switch_rate": 0.0,
            "mean_batch": cluster.router_stats.mean_batch_size}


def _run_kernel(num_operations: int):
    config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
    simulation = ClusterSimulation(config, POOLS, seed=SEED)
    started = time.perf_counter()
    report = KeyedWorkloadRunner(simulation).run(_workload(num_operations))
    wall = time.perf_counter() - started
    assert report.is_atomic
    return {"wall": wall, "events": simulation.kernel.events_processed,
            "switch_rate": simulation.interleaving.switch_rate,
            "mean_batch": simulation.router.stats.mean_batch_size}


def test_bench_event_pump():
    rows = []
    for num_operations in (96, 192, 384):
        legacy = _run_legacy(num_operations)
        kernel = _run_kernel(num_operations)
        for backend, run in (("legacy-loop", legacy), ("global-kernel", kernel)):
            rows.append((
                num_operations,
                backend,
                f"{run['wall'] * 1e3:.1f}",
                run["events"],
                f"{run['events'] / run['wall']:,.0f}",
                f"{run['switch_rate']:.2f}",
                f"{run['mean_batch']:.1f}",
            ))
        slowdown = kernel["wall"] / legacy["wall"]
        rows.append((num_operations, "kernel/legacy wall",
                     f"{slowdown:.2f}x", "", "", "", ""))

    emit_table(
        "event_pump",
        "global kernel vs legacy per-shard idle loop",
        ["ops", "backend", "wall ms", "sim events", "events/s",
         "switch rate", "mean batch"],
        rows,
    )
