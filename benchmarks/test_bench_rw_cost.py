"""E1 -- write and read communication cost (Lemma V.2).

Regenerates the paper's communication-cost expressions by measuring the
simulated system across a sweep of symmetric deployments and comparing
against the closed forms:

* write cost  = n1 + n1 n2 * 2d / (k (2d - k + 1))        (Theta(n1))
* read  cost  = n1 (1 + n2/d) * 2d / (k (2d - k + 1))
                + n1 * I(delta > 0)                        (Theta(1) + n1 I(delta>0))
"""

import pytest

from repro.core.analysis import mbr_read_cost, mbr_write_cost
from repro.core.config import LDSConfig
from repro.core.system import LDSSystem
from repro.net.latency import FixedLatencyModel

from bench_utils import emit_table

#: (n, f) pairs for symmetric systems n1 = n2 = n, f1 = f2 = f (k = d).
SWEEP = [(4, 1), (8, 2), (12, 3), (16, 4), (20, 5)]


def _measure(n: int, f: int):
    config = LDSConfig.symmetric(n=n, f=f)
    system = LDSSystem(config, num_writers=2, num_readers=1,
                       latency_model=FixedLatencyModel())
    write = system.write(b"bench-value")
    system.run_until_idle()
    write_cost = system.operation_cost(write.op_id)
    quiescent_read = system.read()
    read_cost_idle = system.operation_cost(quiescent_read.op_id)
    # A read overlapping a concurrent write (delta > 0 regime).
    system.invoke_write(b"bench-value-2", writer=1, at=system.simulator.now)
    concurrent_read_op = system.invoke_read(reader=0, at=system.simulator.now + 0.5)
    system.run_until_idle()
    read_cost_busy = system.operation_cost(concurrent_read_op)
    return config, write_cost, read_cost_idle, read_cost_busy


def run_experiment():
    rows = []
    for n, f in SWEEP:
        config, write_cost, read_idle, read_busy = _measure(n, f)
        rows.append((
            f"n1=n2={n}, k=d={config.k}",
            f"{mbr_write_cost(n, n, config.k, config.d):.2f}",
            f"{write_cost:.2f}",
            f"{mbr_read_cost(n, n, config.k, config.d, 0):.2f}",
            f"{read_idle:.2f}",
            f"{mbr_read_cost(n, n, config.k, config.d, 1):.2f}",
            f"{read_busy:.2f}",
        ))
    emit_table(
        "E1-rw-cost", "Write / read communication cost (Lemma V.2)",
        ("system", "write (paper)", "write (measured)",
         "read d=0 (paper)", "read d=0 (measured)",
         "read d>0 (paper, worst)", "read d>0 (measured)"),
        rows,
    )
    return rows


def test_bench_write_and_read_cost(benchmark):
    """Measured costs must match Lemma V.2 exactly across the sweep."""
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert len(rows) == len(SWEEP)
    for row in rows:
        assert float(row[1]) == pytest.approx(float(row[2]), rel=1e-6)   # write
        assert float(row[3]) == pytest.approx(float(row[4]), rel=1e-6)   # read, delta = 0
        assert float(row[6]) <= float(row[5]) + 1e-6                     # read, delta > 0 bounded


def test_bench_single_write_operation_latency(benchmark):
    """Wall-clock cost of simulating one write on a mid-size system."""
    config = LDSConfig.symmetric(n=12, f=3)

    def one_write():
        system = LDSSystem(config, latency_model=FixedLatencyModel())
        system.write(b"timed write")
        system.run_until_idle()
        return system

    system = benchmark(one_write)
    assert system.storage.l1_cost == 0.0
