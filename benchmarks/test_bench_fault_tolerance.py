"""E8 -- liveness and atomicity under the full failure budgets (Theorems IV.8 / IV.9).

Drives randomized read/write workloads while crashing f1 L1 servers and f2
L2 servers at random times, and reports for each configuration how many
operations were invoked, how many completed (liveness), and whether the
execution was atomic (safety).  The paper proves completion of every
operation by a non-faulty client and atomicity of every well-formed
execution; the benchmark checks exactly that, and also reports the
latency / cost inflation caused by failures relative to a failure-free run
of the same workload.
"""

import pytest

from repro.consistency.linearizability import check_atomicity_by_tags
from repro.core.config import LDSConfig
from repro.core.system import LDSSystem
from repro.net.failures import FailureInjector
from repro.net.latency import BoundedLatencyModel
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.runner import WorkloadRunner

from bench_utils import emit_table

CONFIGS = [
    LDSConfig(n1=5, n2=6, f1=1, f2=1),
    LDSConfig(n1=7, n2=9, f1=2, f2=2),
    LDSConfig(n1=9, n2=12, f1=3, f2=3),
]
SEEDS = [1, 2, 3]


def _run_once(config: LDSConfig, seed: int, inject_failures: bool):
    system = LDSSystem(config, num_writers=2, num_readers=2,
                       latency_model=BoundedLatencyModel(tau0=1, tau1=1, tau2=5, seed=seed))
    if inject_failures:
        injector = FailureInjector(seed=seed)
        schedule = injector.random_schedule(config.l1_pids, config.f1, (0.0, 200.0))
        schedule = schedule.merge(
            injector.random_schedule(config.l2_pids, config.f2, (0.0, 200.0))
        )
        schedule.apply(system.network)
    generator = WorkloadGenerator(seed=seed, client_spacing=90.0)
    workload = generator.mixed_random(num_operations=10, write_fraction=0.5,
                                      duration=250.0, num_writers=2, num_readers=2)
    report = WorkloadRunner(system).run(workload)
    return report


def run_experiment():
    rows = []
    for config in CONFIGS:
        total_ops = completed = atomic_runs = 0
        failure_latency = clean_latency = 0.0
        for seed in SEEDS:
            faulty = _run_once(config, seed, inject_failures=True)
            clean = _run_once(config, seed, inject_failures=False)
            history = faulty.history
            total_ops += len(history)
            completed += sum(1 for op in history if op.is_complete)
            atomic_runs += int(faulty.is_atomic)
            failure_latency += faulty.read_latency.mean + faulty.write_latency.mean
            clean_latency += clean.read_latency.mean + clean.write_latency.mean
        rows.append((
            config.describe(),
            f"{config.f1}+{config.f2}",
            total_ops,
            completed,
            f"{atomic_runs}/{len(SEEDS)}",
            f"{failure_latency / clean_latency:.2f}x",
        ))
    emit_table(
        "E8-fault-tolerance",
        "Liveness and atomicity with f1 L1 + f2 L2 crashes at random times",
        ("system", "crashes injected", "ops invoked", "ops completed",
         "atomic runs", "latency vs failure-free"),
        rows,
    )
    return rows


def test_bench_fault_tolerance(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for row in rows:
        assert row[2] == row[3]                  # liveness: every operation completed
        assert row[4] == f"{len(SEEDS)}/{len(SEEDS)}"  # safety: every run atomic
        assert float(row[5].rstrip("x")) < 3.0   # failures do not blow up latency


def test_bench_failure_free_vs_faulty_single_run(benchmark):
    """Wall-clock cost of simulating one faulty randomized workload."""
    config = LDSConfig(n1=5, n2=6, f1=1, f2=1)

    def run():
        return _run_once(config, seed=9, inject_failures=True)

    report = benchmark(run)
    assert report.incomplete_operations == 0
    assert report.is_atomic
