"""E2 -- permanent (L2) storage cost (Lemma V.3 and Remark 2).

Measures the back-end storage cost of one object for the MBR code used by
LDS and compares against the MSR and replication alternatives:

* MBR:          2 d n2 / (k (2d - k + 1))    (what LDS pays)
* MSR:          n2 / k                        (at most half of MBR)
* replication:  n2                            (the Figure 6 discussion point)
"""

import pytest

from repro.core.analysis import (
    mbr_storage_cost_l2,
    msr_storage_cost_l2,
    replication_storage_cost_l2,
)
from repro.core.config import LDSConfig
from repro.core.system import LDSSystem
from repro.net.latency import FixedLatencyModel

from bench_utils import emit_table

SWEEP = [
    # (n1, n2, f1, f2)
    (4, 6, 1, 1),
    (5, 6, 1, 1),
    (8, 9, 2, 2),
    (12, 12, 3, 3),
    (16, 18, 4, 5),
]


def _measure(n1, n2, f1, f2):
    config = LDSConfig(n1=n1, n2=n2, f1=f1, f2=f2)
    system = LDSSystem(config, latency_model=FixedLatencyModel())
    system.write(b"storage benchmark value")
    system.run_until_idle()
    return config, system.storage.l2_cost, system.storage.l1_cost


def run_experiment():
    rows = []
    for n1, n2, f1, f2 in SWEEP:
        config, measured_l2, residual_l1 = _measure(n1, n2, f1, f2)
        rows.append((
            config.describe(),
            f"{mbr_storage_cost_l2(n2, config.k, config.d):.3f}",
            f"{measured_l2:.3f}",
            f"{msr_storage_cost_l2(n2, config.k, config.d):.3f}",
            f"{replication_storage_cost_l2(n2):.0f}",
            f"{residual_l1:.3f}",
        ))
    emit_table(
        "E2-storage-cost", "Permanent storage cost per object (Lemma V.3, Remark 2)",
        ("system", "MBR (paper)", "MBR (measured)", "MSR (paper)",
         "replication (paper)", "residual L1 after write"),
        rows,
    )
    return rows


def test_bench_l2_storage_cost(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for row in rows:
        paper, measured = float(row[1]), float(row[2])
        assert measured == pytest.approx(paper, rel=1e-6)
        # Remark 2: MBR costs at most twice MSR; both are far below replication.
        assert paper <= 2 * float(row[3]) + 1e-9
        assert paper < float(row[4])
        # Lemma V.1: temporary storage has drained once the write settles.
        assert float(row[5]) == pytest.approx(0.0)


def test_bench_backend_encoding_throughput(benchmark):
    """Wall-clock cost of one backend (C2) encode for the Fig-6-like code."""
    config = LDSConfig(n1=16, n2=18, f1=4, f2=5)
    code = config.build_code()
    payload = bytes(range(256)) * 4

    coded = benchmark(code.encode_for_backend, payload)
    assert len(coded) == config.n2
