"""E5 -- MBR vs MSR operating point (Remarks 1 and 2).

Remark 1: at the MBR point, the read cost with no concurrency is Theta(1);
an MSR back-end would make it Omega(n1) even with delta = 0.
Remark 2: the MBR storage cost is at most twice the MSR storage cost.

The benchmark measures both operating points on the same deployment shape
(n1 = 2f1 + k, n2 = 2f2 + d with d = 2k - 2 so that the product-matrix MSR
construction applies) and prints the measured costs next to the formulas.
"""

import pytest

from repro.core.analysis import (
    mbr_read_cost,
    mbr_storage_cost_l2,
    msr_read_cost,
    msr_storage_cost_l2,
)
from repro.core.config import LDSConfig
from repro.core.system import LDSSystem
from repro.net.latency import FixedLatencyModel

#: (n1, n2, f1, f2) with k derived so that d = 2k - 2 (PM-MSR requirement).
SWEEP = [
    (5, 6, 1, 1),    # k=3, d=4
    (8, 10, 2, 2),   # k=4, d=6
    (11, 14, 3, 3),  # k=5, d=8
]

from bench_utils import emit_table


def _measure(config: LDSConfig):
    system = LDSSystem(config, latency_model=FixedLatencyModel())
    system.write(b"operating point comparison")
    system.run_until_idle()
    read = system.read()
    return system.operation_cost(read.op_id), system.storage.l2_cost


def run_experiment():
    rows = []
    for n1, n2, f1, f2 in SWEEP:
        mbr_config = LDSConfig(n1=n1, n2=n2, f1=f1, f2=f2, operating_point="mbr")
        msr_config = LDSConfig(n1=n1, n2=n2, f1=f1, f2=f2, operating_point="msr")
        mbr_read, mbr_store = _measure(mbr_config)
        msr_read, msr_store = _measure(msr_config)
        k, d = mbr_config.k, mbr_config.d
        rows.append((
            f"n1={n1}, n2={n2}, k={k}, d={d}",
            f"{mbr_read_cost(n1, n2, k, d, 0):.2f}", f"{mbr_read:.2f}",
            f"{msr_read_cost(n1, n2, k, d, 0):.2f}", f"{msr_read:.2f}",
            f"{mbr_storage_cost_l2(n2, k, d):.2f}", f"{mbr_store:.2f}",
            f"{msr_storage_cost_l2(n2, k, d):.2f}", f"{msr_store:.2f}",
        ))
    emit_table(
        "E5-mbr-vs-msr", "MBR vs MSR back-end (Remarks 1 and 2), delta = 0 reads",
        ("system", "MBR read (paper)", "MBR read (meas)", "MSR read (paper)",
         "MSR read (meas)", "MBR store (paper)", "MBR store (meas)",
         "MSR store (paper)", "MSR store (meas)"),
        rows,
    )
    return rows


def test_bench_mbr_vs_msr(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for row in rows:
        mbr_read_paper, mbr_read_meas = float(row[1]), float(row[2])
        msr_read_paper, msr_read_meas = float(row[3]), float(row[4])
        mbr_store_paper, mbr_store_meas = float(row[5]), float(row[6])
        msr_store_paper, msr_store_meas = float(row[7]), float(row[8])
        assert mbr_read_meas == pytest.approx(mbr_read_paper, rel=1e-6)
        assert msr_read_meas == pytest.approx(msr_read_paper, rel=1e-6)
        assert mbr_store_meas == pytest.approx(mbr_store_paper, rel=1e-6)
        assert msr_store_meas == pytest.approx(msr_store_paper, rel=1e-6)
        # Remark 1: MSR reads are more expensive than MBR reads at delta = 0.
        assert msr_read_meas > mbr_read_meas
        # Remark 2: MBR storage is at most twice MSR storage.
        assert mbr_store_meas <= 2 * msr_store_meas + 1e-9
    # Shape at the paper's scale (n1 = n2 = 100, k = d = 80, Remark 1): the
    # MSR read cost is an order of magnitude above the MBR read cost even
    # with delta = 0, because relaying MSR elements alone costs n1 / k.
    assert msr_read_cost(100, 100, 80, 80, 0) > 10 * mbr_read_cost(100, 100, 80, 80, 0)
