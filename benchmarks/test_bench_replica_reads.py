"""Replica-read benchmark: read throughput and balance vs replication factor.

Drives the same seeded Zipf workload (fixed write load, read-heavy mix)
through clusters with r = 1, 2, 3 and the round-robin routing policy, and
reports how the replica layer spreads the read traffic: follower share,
per-pool balance (CV of serves), mean read latency (follower stores answer
in store-read time instead of a full two-layer protocol read), and the
replication traffic the extra copies cost at the fixed write load.

There is no paper analogue; this characterises the cluster's scale-out
read path (the ROADMAP's "route reads to the nearest replica" item).
"""

from __future__ import annotations

import time

from bench_utils import emit_json, emit_table

from repro import (
    ClusterSimulation,
    KeyedWorkloadRunner,
    LDSConfig,
    ReplicationConfig,
    WorkloadGenerator,
)

NUM_KEYS = 24
OPERATIONS = 240
WRITE_FRACTION = 0.25
DURATION = 900.0
SEED = 19
POOLS = [f"pool-{i}" for i in range(4)]


def _workload():
    generator = WorkloadGenerator(seed=SEED, client_spacing=60.0)
    return generator.zipf_keyed(
        [f"obj-{i}" for i in range(NUM_KEYS)],
        OPERATIONS, write_fraction=WRITE_FRACTION, duration=DURATION, s=1.1,
    )


def _run(r: int):
    config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
    simulation = ClusterSimulation(
        config, POOLS, seed=SEED,
        replication=ReplicationConfig(r=r, replication_lag=25.0),
        read_policy="round-robin",
    )
    started = time.perf_counter()
    report = KeyedWorkloadRunner(simulation).run(_workload())
    wall = time.perf_counter() - started
    distribution = simulation.read_distribution()
    audit = simulation.audit()
    assert audit.ok, audit.describe()
    replicas = simulation.replicas
    return {
        "wall": wall,
        "reads": OPERATIONS - report.history.writes().__len__(),
        "read_latency": report.read_latency.mean,
        "distribution": distribution,
        "replication_cost": 0.0 if replicas is None else replicas.total_cost,
    }


def test_bench_replica_reads():
    rows = []
    smoke = {}
    metrics = {}
    for r in (1, 2, 3):
        run = _run(r)
        distribution = run["distribution"]
        smoke[r] = distribution
        metrics[f"r{r}"] = {
            "wall_s": run["wall"],
            "reads_per_s_wall": run["reads"] / run["wall"],
            "mean_read_latency": run["read_latency"],
            "follower_fraction": distribution.follower_fraction,
            "serve_cv": distribution.coefficient_of_variation,
            "replication_cost": run["replication_cost"],
        }
        rows.append((
            r,
            f"{run['wall'] * 1e3:.1f}",
            f"{run['reads'] / run['wall']:,.0f}",
            f"{run['read_latency']:.1f}",
            f"{distribution.follower_fraction:.2f}",
            f"{distribution.coefficient_of_variation:.2f}",
            f"{distribution.policy_hit_rate:.2f}",
            f"{run['replication_cost']:.0f}",
        ))

    emit_table(
        "replica_reads",
        "read routing vs replication factor (round-robin, fixed write load)",
        ["r", "wall ms", "reads/s (wall)", "mean read latency",
         "follower share", "serve CV", "policy hit rate", "replication cost"],
        rows,
    )
    emit_json("BENCH_replica_reads.json", {
        "name": "replica_reads",
        "seed": SEED,
        "config": {"pools": len(POOLS), "keys": NUM_KEYS,
                   "operations": OPERATIONS,
                   "write_fraction": WRITE_FRACTION,
                   "replication_lag": 25.0, "read_policy": "round-robin"},
        "metrics": metrics,
    })

    # The balance claims the table makes, asserted so the benchmark doubles
    # as a smoke test: replication actually offloads the primaries.
    assert smoke[1].follower_fraction == 0.0
    assert smoke[2].follower_fraction >= 0.30
    assert smoke[3].follower_fraction >= smoke[2].follower_fraction
    assert smoke[3].coefficient_of_variation <= 0.40
