"""E9 (extension) -- repairing crashed back-end servers.

The paper's conclusion lists repair of erasure-coded L2 servers as future
work.  This repository implements it (``repro.core.repair``); the ablation
compares the regenerating-code repair download against the naive
alternative of decoding the full value from k surviving servers and
re-encoding the lost element (what a Reed-Solomon back-end would do).
"""

import pytest

from repro.core.config import LDSConfig
from repro.core.repair import BackendRepairCoordinator
from repro.core.system import LDSSystem
from repro.net.latency import FixedLatencyModel

from bench_utils import emit_table

SWEEP = [
    (5, 6, 1, 1),
    (7, 9, 2, 2),
    (9, 12, 3, 3),
    (12, 18, 3, 5),
]


def run_experiment():
    rows = []
    for n1, n2, f1, f2 in SWEEP:
        config = LDSConfig(n1=n1, n2=n2, f1=f1, f2=f2)
        system = LDSSystem(config, latency_model=FixedLatencyModel())
        system.write(b"value that must survive repair")
        system.run_until_idle()
        system.crash_l2(0)
        report = BackendRepairCoordinator(system).repair(0)
        naive_download = config.k * float(system.code.costs.element_fraction)
        survived = system.read().value == b"value that must survive repair"
        rows.append((
            config.describe(),
            f"{report.download_fraction:.3f}",
            f"{naive_download:.3f}",
            f"{naive_download / report.download_fraction:.2f}x",
            "yes" if survived else "no",
        ))
    emit_table(
        "E9-l2-repair", "Back-end repair: regenerating repair vs decode-and-re-encode",
        ("system", "repair download (measured)", "naive decode download",
         "saving", "value readable after repair"),
        rows,
    )
    return rows


def test_bench_l2_repair(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for row in rows:
        repair_download = float(row[1])
        naive_download = float(row[2])
        assert repair_download <= naive_download + 1e-9
        assert row[4] == "yes"
    # The saving grows with the code dimension k.
    savings = [float(row[3].rstrip("x")) for row in rows]
    assert savings[-1] >= savings[0]
