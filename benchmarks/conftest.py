"""Pytest configuration for the benchmark harness.

The benchmark modules live outside the installed package; this conftest
only ensures the benchmarks directory itself is importable so they can
share :mod:`bench_utils`.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
