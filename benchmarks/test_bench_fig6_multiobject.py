"""E4 -- Figure 6: temporary vs permanent storage in a multi-object system.

Figure 6 of the paper plots the Lemma V.5 storage bounds for a symmetric
system with n1 = n2 = 100, k = d = 80, tau2 = 10 tau1 and theta = 100
concurrent writes per tau1, as a function of the number of objects N:
the L1 (temporary) bound is flat in N while the L2 (permanent) cost grows
linearly, so permanent storage dominates for large N.

The benchmark reproduces the figure in two parts:

1. the *analytical* curves at the paper's exact parameters (what Figure 6
   actually plots), and
2. a *measured* scaled-down simulation (n1 = n2 = 5, k = d = 3) that
   validates the bounds: the simulated peak L1 cost never exceeds the
   Lemma V.5 L1 bound and the simulated L2 cost matches the formula.
"""

import pytest

from repro.core.analysis import (
    mbr_storage_cost_l2,
    multi_object_storage_bounds,
    replication_storage_cost_l2,
)
from repro.core.config import LDSConfig
from repro.core.multi_object import MultiObjectSystem
from repro.net.latency import BoundedLatencyModel

from bench_utils import emit_table

#: Figure 6 parameters.
FIG6_N = 100
FIG6_K = 80
FIG6_MU = 10.0
FIG6_THETA = 100
FIG6_OBJECT_COUNTS = [1_000, 10_000, 50_000, 100_000, 500_000, 1_000_000]

#: Scaled-down simulated validation.
SIM_OBJECTS = [2, 4, 8]
SIM_N, SIM_F = 5, 1
SIM_MU = 5.0


def run_analytical_figure():
    rows = []
    for count in FIG6_OBJECT_COUNTS:
        bounds = multi_object_storage_bounds(count, FIG6_N, FIG6_N, FIG6_K,
                                             theta=FIG6_THETA, mu=FIG6_MU)
        per_object = mbr_storage_cost_l2(FIG6_N, FIG6_K, FIG6_K)
        rows.append((
            f"N={count:,}",
            f"{bounds.l1_bound:,.0f}",
            f"{bounds.l2_bound:,.0f}",
            f"{per_object:.2f}",
            f"{replication_storage_cost_l2(FIG6_N) * count:,.0f}",
            "L2" if bounds.l2_bound > bounds.l1_bound else "L1",
        ))
    emit_table(
        "E4-fig6-analytical",
        "Figure 6: L1 vs L2 storage bounds (n1=n2=100, k=d=80, mu=10, theta=100)",
        ("objects", "L1 bound", "L2 cost", "L2 cost / object",
         "replication L2 cost", "dominant"),
        rows,
    )
    return rows


def run_simulated_validation():
    rows = []
    config = LDSConfig.symmetric(n=SIM_N, f=SIM_F)
    for count in SIM_OBJECTS:
        fleet = MultiObjectSystem(
            config, num_objects=count, seed=count,
            latency_factory=lambda i: BoundedLatencyModel(tau0=1, tau1=1, tau2=SIM_MU,
                                                          seed=i),
        )
        ops = fleet.schedule_uniform_write_load(writes_per_unit_time=0.3, duration=40.0)
        fleet.run_all()
        theta = len(ops)
        bounds = multi_object_storage_bounds(count, config.n1, config.n2, config.k,
                                             theta=theta, mu=SIM_MU)
        rows.append((
            f"N={count}",
            f"{fleet.peak_l1_cost():.2f}",
            f"{bounds.l1_bound:.0f}",
            f"{fleet.total_l2_cost():.2f}",
            f"{count * mbr_storage_cost_l2(config.n2, config.k, config.d):.2f}",
            "yes" if fleet.all_operations_complete() else "no",
        ))
    emit_table(
        "E4-fig6-simulated",
        f"Figure 6 validation on a simulated fleet (n1=n2={SIM_N}, k=d={config.k})",
        ("objects", "peak L1 (measured)", "L1 bound (paper)",
         "L2 (measured)", "L2 (paper)", "all ops complete"),
        rows,
    )
    return rows


def test_bench_fig6_analytical_curves(benchmark):
    rows = benchmark.pedantic(run_analytical_figure, rounds=1, iterations=1)
    # Shape of Figure 6: L2 grows linearly with N and dominates for large N,
    # the L1 bound is constant, and the per-object L2 cost is < 3 (vs 100 for
    # replication).
    l1_bounds = [float(row[1].replace(",", "")) for row in rows]
    l2_costs = [float(row[2].replace(",", "")) for row in rows]
    assert len(set(l1_bounds)) == 1
    assert l2_costs[-1] > l2_costs[0]
    assert rows[-1][-1] == "L2"
    assert rows[0][-1] == "L1"
    assert float(rows[0][3]) < 3.0


def test_bench_fig6_simulated_fleet(benchmark):
    rows = benchmark.pedantic(run_simulated_validation, rounds=1, iterations=1)
    for row in rows:
        measured_l1, l1_bound = float(row[1]), float(row[2])
        measured_l2, paper_l2 = float(row[3]), float(row[4])
        assert measured_l1 <= l1_bound + 1e-9
        assert measured_l2 == pytest.approx(paper_l2, rel=1e-6)
        assert row[5] == "yes"
    # Linear growth of permanent storage with the number of objects.
    l2_values = [float(row[3]) for row in rows]
    assert l2_values[-1] == pytest.approx(l2_values[0] * SIM_OBJECTS[-1] / SIM_OBJECTS[0],
                                          rel=1e-6)
