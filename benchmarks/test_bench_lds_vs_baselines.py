"""E6 -- LDS vs single-layer baselines (ABD replication, CAS coded).

The paper's introduction positions the layered design against single-layer
replication-based ([3]) and erasure-code-based ([6], [17]) algorithms, and
the Figure 6 discussion quotes the n2-per-object storage cost a replicated
back-end would pay.  This benchmark runs the *same* sequential workload on
all three systems and reports per-operation communication cost, storage
cost and operation latency.
"""

import pytest

from repro.baselines.abd import ABDSystem
from repro.baselines.cas import CASSystem
from repro.core.config import LDSConfig
from repro.core.system import LDSSystem
from repro.net.latency import FixedLatencyModel
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.runner import WorkloadRunner

from bench_utils import emit_table

N_SERVERS = 9  # single-layer size; LDS additionally uses an 9-server back-end
K = 5


def _workload():
    return WorkloadGenerator(seed=6, client_spacing=100.0).sequential(
        num_writes=3, num_reads=3, spacing=100.0
    )


def _lds():
    config = LDSConfig(n1=N_SERVERS, n2=N_SERVERS, f1=2, f2=2)
    return LDSSystem(config, latency_model=FixedLatencyModel()), config


def run_experiment():
    rows = []
    lds, config = _lds()
    report = WorkloadRunner(lds).run(_workload())
    rows.append((
        f"LDS (n1=n2={N_SERVERS}, k={config.k}, d={config.d})",
        f"{report.mean_write_cost:.2f}", f"{report.mean_read_cost:.2f}",
        f"{lds.storage.l2_cost:.2f}",
        f"{report.write_latency.mean:.1f}", f"{report.read_latency.mean:.1f}",
        "yes" if report.is_atomic else "no",
    ))

    abd = ABDSystem(n=N_SERVERS, latency_model=FixedLatencyModel())
    report = WorkloadRunner(abd).run(_workload())
    rows.append((
        f"ABD replication (n={N_SERVERS})",
        f"{report.mean_write_cost:.2f}", f"{report.mean_read_cost:.2f}",
        f"{abd.storage_cost:.2f}",
        f"{report.write_latency.mean:.1f}", f"{report.read_latency.mean:.1f}",
        "yes" if report.is_atomic else "no",
    ))

    cas = CASSystem(n=N_SERVERS, k=K, latency_model=FixedLatencyModel())
    report = WorkloadRunner(cas).run(_workload())
    rows.append((
        f"CAS single-layer coded (n={N_SERVERS}, k={K})",
        f"{report.mean_write_cost:.2f}", f"{report.mean_read_cost:.2f}",
        f"{cas.storage_cost:.2f}",
        f"{report.write_latency.mean:.1f}", f"{report.read_latency.mean:.1f}",
        "yes" if report.is_atomic else "no",
    ))
    emit_table(
        "E6-lds-vs-baselines",
        "Identical sequential workload on LDS, ABD and CAS (tau0=tau1=1, tau2=10)",
        ("algorithm", "write cost", "read cost", "permanent storage",
         "write latency", "read latency", "atomic"),
        rows,
    )
    return rows


def test_bench_lds_vs_baselines(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    lds_row, abd_row, cas_row = rows
    assert all(row[-1] == "yes" for row in rows)
    # Storage: the coded back-end beats replication by a wide margin
    # (Figure 6 discussion: n2 per object for replication).
    assert float(lds_row[3]) < float(abd_row[3]) / 2
    # Reads: LDS quiescent reads move less data than ABD reads (which carry
    # full replicas from a majority and write one back).
    assert float(lds_row[2]) < float(abd_row[2])
    # Writes: LDS pays the two-layer offload, so its write cost exceeds the
    # single-layer baselines -- that is the expected trade-off shape.
    assert float(lds_row[1]) > float(abd_row[1])
    assert float(lds_row[1]) > float(cas_row[1])
    # Client-visible write latency does not pay the slow back-end link
    # (tau2 = 10): a single L1<->L2 round trip would already cost 20.
    assert float(lds_row[4]) < 20.0


def test_bench_abd_write_simulation_speed(benchmark):
    system = ABDSystem(n=N_SERVERS, latency_model=FixedLatencyModel())

    def one_write():
        return system.write(b"abd bench")

    result = benchmark(one_write)
    assert result.kind == "write"
