"""Schema gate for the machine-readable benchmark artefacts.

Every ``benchmarks/results/BENCH_*.json`` is part of the cross-PR perf
trajectory: downstream tooling reads them by stable name and expects at
least ``{name, seed, metrics}`` at the top level.  This test keeps the
committed artefacts honest -- a bench that emits a malformed file (or a
hand-edited result that drops a key) fails here, in tier 1, not in some
later consumer.
"""

from __future__ import annotations

import glob
import json
import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

REQUIRED_KEYS = ("name", "seed", "metrics")


def _bench_files():
    return sorted(glob.glob(os.path.join(RESULTS_DIR, "BENCH_*.json")))


def test_bench_artifacts_exist():
    assert _bench_files(), "no BENCH_*.json artefacts committed"


@pytest.mark.parametrize("path", _bench_files(),
                         ids=[os.path.basename(p) for p in _bench_files()])
def test_bench_artifact_schema(path):
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert isinstance(payload, dict), f"{path} is not a JSON object"
    missing = [key for key in REQUIRED_KEYS if key not in payload]
    assert not missing, (
        f"{os.path.basename(path)} is missing required keys {missing}; "
        f"every BENCH_*.json carries {REQUIRED_KEYS}"
    )
    assert isinstance(payload["name"], str) and payload["name"]
    assert isinstance(payload["seed"], int)
    assert isinstance(payload["metrics"], dict) and payload["metrics"]
