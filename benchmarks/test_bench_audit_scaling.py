"""Audit scaling benchmark: streaming vs batch session auditing.

The batch auditor (``check_sessions``) materialises every eligible
operation of the history before checking -- its working set grows
linearly with run length, which is exactly what makes it unusable as an
always-on monitor.  The streaming auditor's claim is that watermark
retirement keeps its peak tracked state flat in run length (it holds
only in-flight operations plus folded per-group maxima) while producing
the identical verdict.

This benchmark replays the auditor's worst case -- a dense single-hot-key
session stream, where the batch working set is the entire run -- at
increasing scales and records both peak state and wall time.  The
headline metric is ``peak_ratio_16x``: the streaming auditor's peak
tracked entries at 16x the operations, relative to 1x.  Flat retention
means it stays near 1.0; the asserted bound is 2.0.

There is no paper analogue; this characterises the live-audit subsystem
(ROADMAP: correctness observability).
"""

from __future__ import annotations

import time

from bench_utils import emit_json, emit_table

from repro.consistency.history import History, Operation, READ, WRITE
from repro.consistency.sessions import check_sessions
from repro.consistency.streaming import replay_history

SEED = 23  # fixed by construction: the stream below is deterministic
SCALES = (1, 4, 16)
BASE_OPERATIONS = 400
SESSIONS = ("s0", "s1")
ADVANCE_EVERY = 16


def hot_key_stream(operations: int) -> History:
    """A dense keyed session stream: every operation lands on one hot
    key, so the batch auditor's working set is the whole run."""
    ops = []
    clock = 0.0
    tag = 0
    for index in range(operations):
        clock += 1.0
        kind = WRITE if index % 3 == 0 else READ
        if kind == WRITE:
            tag += 1
        ops.append(Operation(
            op_id=f"op-{index}",
            client_id=f"client-{index % 2}",
            kind=kind, object_id="hot", value=b"v",
            invoked_at=clock, responded_at=clock + 0.5, tag=tag,
            session=SESSIONS[index % 2],
        ))
    return History(ops)


def test_bench_audit_scaling():
    rows = []
    metrics = {}
    peaks = {}
    for scale in SCALES:
        operations = BASE_OPERATIONS * scale
        history = hot_key_stream(operations)

        started = time.perf_counter()
        batch = check_sessions(history)
        batch_wall = time.perf_counter() - started

        started = time.perf_counter()
        auditor = replay_history(history, advance_every=ADVANCE_EVERY)
        stream_wall = time.perf_counter() - started
        streamed = auditor.report()

        # Verdict equivalence at every scale, asserted where measured.
        assert sorted(map(str, streamed.violations)) == \
            sorted(map(str, batch.violations))
        assert streamed.pairs_checked == batch.pairs_checked

        # The batch working set is every eligible operation; the
        # streaming peak is the high-water mark of retained state.
        batch_entries = batch.operations_checked
        stream_peak = auditor.peak_tracked_entries
        peaks[scale] = stream_peak
        rows.append((f"{scale}x", operations, batch_entries, stream_peak,
                     f"{batch_wall * 1e3:.1f}", f"{stream_wall * 1e3:.1f}"))
        metrics[f"scale_{scale}x"] = {
            "operations": operations,
            "batch_entries": batch_entries,
            "stream_peak_entries": stream_peak,
            "batch_wall_s": batch_wall,
            "stream_wall_s": stream_wall,
        }

    peak_ratio = peaks[SCALES[-1]] / peaks[SCALES[0]]
    batch_ratio = (metrics[f"scale_{SCALES[-1]}x"]["batch_entries"]
                   / metrics[f"scale_{SCALES[0]}x"]["batch_entries"])
    metrics["peak_ratio_16x"] = peak_ratio
    metrics["batch_ratio_16x"] = batch_ratio

    emit_table(
        "audit_scaling",
        "streaming vs batch session audit state (hot-key stream)",
        ["scale", "operations", "batch entries", "stream peak",
         "batch ms", "stream ms"],
        rows + [("16x/1x", "", f"{batch_ratio:.1f}x", f"{peak_ratio:.2f}x",
                 "", "")],
    )
    emit_json("BENCH_audit_scaling.json", {
        "name": "audit_scaling",
        "seed": SEED,
        "config": {"base_operations": BASE_OPERATIONS,
                   "scales": list(SCALES), "sessions": len(SESSIONS),
                   "advance_every": ADVANCE_EVERY},
        "metrics": metrics,
    })

    # The acceptance bound: 16x the operations, at most 2x the peak
    # retained state -- while the batch working set grows linearly.
    assert peak_ratio <= 2.0, peaks
    assert batch_ratio >= SCALES[-1] * 0.9
