"""Compatibility shim so that legacy editable installs (``setup.py develop``)
work on environments without the ``wheel`` package."""

from setuptools import setup

setup()
