"""Fault injection for the session auditor.

An auditor that has never caught anything is untrustworthy, so this
module *perturbs* a real (or synthetic) history into one that violates a
chosen session guarantee, proving the detector actually fires for every
violation class.  Mutations only ever move *observed versions between
operations of the same key* -- an operation's ``(object_id, value, tag)``
triple is replaced wholesale by another same-key operation's -- so the
injected history is exactly what a buggy implementation would have
recorded (stale read served from a lagging shard, a write acknowledged
with a recycled tag, ...), not an arbitrary corruption.

Sites are searched deterministically (sessions and keys in sorted order,
operations in invocation order), so a given history always yields the
same injection.  A history with no eligible site for the requested class
raises :class:`InjectionError`; dense keyed workloads (hot keys, mixed
reads/writes per session) always have sites.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Dict, List, Optional, Tuple

from repro.consistency.history import History, Operation, READ, WRITE
from repro.consistency.sessions import (
    MONOTONIC_READS,
    MONOTONIC_WRITES,
    READ_YOUR_WRITES,
    SESSION_GUARANTEES,
    WRITES_FOLLOW_READS,
    operation_version,
    session_groups,
    split_object_id,
)


class InjectionError(LookupError):
    """The history has no eligible site for the requested violation."""


@dataclass(frozen=True)
class Injection:
    """One injected violation: the mutated history plus what was done."""

    guarantee: str
    description: str
    history: History
    #: Ids of the operations whose observed versions were rewritten.
    mutated: Tuple[str, ...]
    session: str
    key: str


def _key_versions(history: History, key: str) -> List[Operation]:
    """Every tagged complete operation on ``key`` (any session), by version."""
    ops = [op for op in history
           if op.is_complete and op.tag is not None
           and split_object_id(op.object_id)[0] == key]
    ops.sort(key=lambda op: (operation_version(op), op.op_id))
    return ops


def _rebuild(history: History, replacements: Dict[str, Operation]) -> History:
    return History(
        [replacements.get(op.op_id, op) for op in history],
        initial_value=history.initial_value,
    )


def _swap_versions(a: Operation, b: Operation) -> Dict[str, Operation]:
    """Swap the observed ``(object_id, value, tag)`` of two operations."""
    return {
        a.op_id: dc_replace(a, object_id=b.object_id, value=b.value, tag=b.tag),
        b.op_id: dc_replace(b, object_id=a.object_id, value=a.value, tag=a.tag),
    }


def _retag(op: Operation, donor: Operation) -> Dict[str, Operation]:
    """Make ``op`` observe the version of ``donor`` (same key)."""
    return {op.op_id: dc_replace(op, object_id=donor.object_id,
                                 value=donor.value, tag=donor.tag)}


def _ordered_pairs(ops: List[Operation], earlier_kind: str,
                   later_kind: str) -> List[Tuple[Operation, Operation]]:
    """Precedence-ordered same-group pairs with the requested kinds."""
    pairs = []
    for later in ops:
        if later.kind != later_kind:
            continue
        for earlier in ops:
            if earlier.kind == earlier_kind and earlier.precedes(later):
                pairs.append((earlier, later))
    return pairs


def inject_session_violation(history: History, guarantee: str) -> Injection:
    """Perturb ``history`` so it violates ``guarantee``.

    The mutation targets the first eligible site in deterministic order;
    the returned :class:`Injection` names the rewritten operations so a
    test can assert the auditor blames exactly them.
    """
    if guarantee not in SESSION_GUARANTEES:
        raise ValueError(f"unknown session guarantee {guarantee!r}")
    # The auditor's own grouping: injection sites are, by construction,
    # sites the auditor audits.
    groups, _, _ = session_groups(history)
    for (session, key), ops in sorted(groups.items()):
        if guarantee == MONOTONIC_READS:
            # Two ordered reads with distinct versions: swap what they saw,
            # so the later read observes the older version.
            for earlier, later in _ordered_pairs(ops, READ, READ):
                if operation_version(earlier) < operation_version(later):
                    return Injection(
                        guarantee=guarantee,
                        description=(f"swapped the versions read by "
                                     f"{earlier.op_id} and {later.op_id}"),
                        history=_rebuild(history, _swap_versions(earlier, later)),
                        mutated=(earlier.op_id, later.op_id),
                        session=session, key=key,
                    )
        elif guarantee == MONOTONIC_WRITES:
            # Two ordered writes: swap their effect versions, so the later
            # write lands below the earlier one.
            for earlier, later in _ordered_pairs(ops, WRITE, WRITE):
                if operation_version(earlier) < operation_version(later):
                    return Injection(
                        guarantee=guarantee,
                        description=(f"swapped the versions written by "
                                     f"{earlier.op_id} and {later.op_id}"),
                        history=_rebuild(history, _swap_versions(earlier, later)),
                        mutated=(earlier.op_id, later.op_id),
                        session=session, key=key,
                    )
        elif guarantee == READ_YOUR_WRITES:
            # A session write followed by a session read: demote the read
            # to a version older than the write (a stale replica answer).
            for earlier, later in _ordered_pairs(ops, WRITE, READ):
                donor = _version_below(history, key, operation_version(earlier))
                if donor is not None:
                    return Injection(
                        guarantee=guarantee,
                        description=(f"demoted read {later.op_id} to the "
                                     f"stale version of {donor.op_id}"),
                        history=_rebuild(history, _retag(later, donor)),
                        mutated=(later.op_id,),
                        session=session, key=key,
                    )
        else:  # WRITES_FOLLOW_READS
            # A session read followed by a session write: promote the read
            # to a version newer than the write, so the write no longer
            # follows what the session had read.
            for earlier, later in _ordered_pairs(ops, READ, WRITE):
                donor = _version_above(history, key, operation_version(later))
                if donor is not None:
                    return Injection(
                        guarantee=guarantee,
                        description=(f"promoted read {earlier.op_id} to the "
                                     f"future version of {donor.op_id}"),
                        history=_rebuild(history, _retag(earlier, donor)),
                        mutated=(earlier.op_id,),
                        session=session, key=key,
                    )
    raise InjectionError(
        f"no eligible site for a {guarantee} violation: the history needs a "
        "session with precedence-ordered operations (and a same-key donor "
        "version) of the required kinds"
    )


def _version_below(history: History, key: str,
                   bound: Tuple) -> Optional[Operation]:
    for op in _key_versions(history, key):
        if operation_version(op) < bound:
            return op
    return None


def _version_above(history: History, key: str,
                   bound: Tuple) -> Optional[Operation]:
    for op in reversed(_key_versions(history, key)):
        if operation_version(op) > bound:
            return op
    return None


def inject_all(history: History) -> Dict[str, Injection]:
    """One injection per guarantee class (raises if any class has no site)."""
    return {guarantee: inject_session_violation(history, guarantee)
            for guarantee in SESSION_GUARANTEES}


#: Client-id prefix stamped on follower-served operations by the replica
#: coordinator (the single definition; repro.cluster.replicas imports it).
REPLICA_CLIENT_PREFIX = "replica:"


#: Client-id marker of quorum-merged reads (a narrower class than the
#: general replica prefix: the coordinator stamps them ``replica:quorum/``).
QUORUM_CLIENT_MARKER = REPLICA_CLIENT_PREFIX + "quorum/"


def is_follower_read(op: Operation) -> bool:
    """True for reads served by a replica follower store.

    The replica coordinator stamps follower-served operations with a
    ``replica:<pool>/...`` client id (see
    :meth:`repro.cluster.replicas.ReplicaCoordinator`), which is what makes
    the replicated read path auditable as such.
    """
    return op.kind == READ and op.client_id.startswith(REPLICA_CLIENT_PREFIX)


def is_quorum_read(op: Operation) -> bool:
    """True for reads resolved by the replica layer's quorum merge."""
    return op.kind == READ and op.client_id.startswith(QUORUM_CLIENT_MARKER)


def _inject_stale_replica_read(history: History, eligible, what: str,
                               description: str) -> Injection:
    """Shared search: demote a replica-served read below its session floor.

    Finds the first (deterministic order) read matching ``eligible`` that
    has a preceding same-session operation and an older same-key donor
    version, and rewrites it to observe the donor -- the history a buggy
    replica read path would have recorded.
    """
    groups, _, _ = session_groups(history)
    for (session, key), ops in sorted(groups.items()):
        for later in ops:
            if not eligible(later):
                continue
            predecessors = [earlier for earlier in ops
                            if earlier.precedes(later)]
            if not predecessors:
                continue
            strongest = max(predecessors,
                            key=lambda op: (operation_version(op), op.op_id))
            donor = _version_below(history, key, operation_version(strongest))
            if donor is None:
                continue
            guarantee = (READ_YOUR_WRITES if strongest.kind == WRITE
                         else MONOTONIC_READS)
            return Injection(
                guarantee=guarantee,
                description=(f"{description} {later.op_id} to the stale "
                             f"version of {donor.op_id} (session had "
                             f"already observed {strongest.op_id})"),
                history=_rebuild(history, _retag(later, donor)),
                mutated=(later.op_id,),
                session=session, key=key,
            )
    raise InjectionError(
        f"no eligible {what} site: the history needs a matching replica-"
        "served read preceded by a session operation with an older same-key "
        "donor version (run a replicated workload with such reads first)"
    )


def inject_stale_follower_read(history: History) -> Injection:
    """Demote a follower-served read below what its session already saw.

    This is the replica layer's characteristic failure mode: a lagging
    follower answers a read with a version the session has already moved
    past -- exactly what the coordinator's session guard exists to
    prevent.  The mutation rewrites one follower read to observe an older
    same-key version, producing the history a guard-less (or buggy)
    router would record; the session auditor must then report a
    read-your-writes violation (when the session's strongest predecessor
    was its own write) or a monotonic-reads violation (when it was a
    read).  Raises :class:`InjectionError` when the history contains no
    follower read with a preceding session operation and an older donor
    version -- i.e. when replication was off or followers never served.
    """
    return _inject_stale_replica_read(
        history, is_follower_read, "stale-follower",
        "demoted follower read",
    )


def inject_quorum_version_drop(history: History) -> Injection:
    """Drop the max-version response from a quorum merge.

    The quorum read path's characteristic failure mode: the merge loses
    (or never receives) the member holding the maximum version and a
    stale member's answer wins instead.  The mutation rewrites one
    quorum-merged read to observe an older same-key version -- exactly
    the history a merge that dropped its freshest response would have
    recorded -- and the session auditor must report the resulting
    read-your-writes or monotonic-reads violation.  Raises
    :class:`InjectionError` when the history has no quorum read with a
    preceding session operation and an older donor version.
    """
    return _inject_stale_replica_read(
        history, is_quorum_read, "quorum-drop",
        "dropped the max-version response: demoted quorum read",
    )


# -- cluster-level availability drills -------------------------------------------
#
# The history injections above prove the *session* auditor fires; the two
# drills below prove the *availability* monitor fires.  They perturb a
# live ClusterSimulation (duck-typed: needs ``cluster``, ``repair``,
# ``membership``, ``kernel``) into the monitor's alarm condition -- an L2
# fragment that is gone with nobody scheduled to regenerate it.


@dataclass(frozen=True)
class AvailabilityDrill:
    """One availability fault drill: the fragment holes it opened."""

    kind: str
    #: The ``(key, l2_index, pool)`` slots now missing without a pending
    #: repair -- exactly what the sampling monitor must classify SILENT.
    holes: Tuple[Tuple[str, int, str], ...]
    #: The failed node, for the withheld-repair drill.
    node_id: Optional[str] = None


def inject_under_replication(simulation, count: int = 1,
                             l2_index: Optional[int] = None) -> AvailabilityDrill:
    """Silently crash one L2 slot on ``count`` shards (no membership event).

    This models decay the control plane never saw: the fragment is gone
    but no failure event fired, so the repair scheduler has no task for
    it and the membership still believes the node is fine.  Only a probe
    that actually samples fragment presence --
    :class:`repro.obs.availability.AvailabilityMonitor` -- can notice.
    Deterministic: the first ``count`` shard keys in sorted order whose
    chosen slot is still up.  Raises :class:`InjectionError` when the
    simulation has fewer than ``count`` eligible shards (run a workload
    first; shards are created lazily).
    """
    if count < 1:
        raise ValueError("at least one hole is required")
    router = simulation.cluster.router
    shards = router._shards
    index = simulation.config.n2 - 1 if l2_index is None else l2_index
    holes = []
    for key in sorted(shards):
        if len(holes) >= count:
            break
        shard = shards[key]
        if shard.system.l2_servers[index].crashed:
            continue
        # Immediate, not scheduled: the decay happened "in the past"
        # and nothing in the simulation may observe the act itself.
        shard.system.crash_l2(index)
        holes.append((key, index, shard.pool))
    if len(holes) < count:
        raise InjectionError(
            f"only {len(holes)} of {count} under-replication site(s) "
            f"available: the simulation needs that many shards with L2 "
            f"slot {index} still up (run a workload to create shards first)"
        )
    return AvailabilityDrill(kind="under-replication", holes=tuple(holes))


def inject_withheld_repair(simulation,
                           node_id: Optional[str] = None) -> AvailabilityDrill:
    """Fail a node, then abandon every repair its failure scheduled.

    The repair pipeline's characteristic silent failure: the loss *was*
    detected and tasks were queued, but the operator (or a bug) withheld
    them -- ``RepairScheduler.withhold_node`` marks them gave-up -- so
    the backlog no longer covers the holes and the pool, still alive,
    explains nothing.  Every affected fragment is therefore SILENT to
    the availability monitor, which must alarm.  Picks the first (sorted
    pool, then L2 index) alive node whose pool hosts at least one shard
    when ``node_id`` is not given; raises :class:`InjectionError` when
    no failure would schedule any repair (no shards exist yet).
    """
    membership = simulation.membership
    router = simulation.cluster.router
    when = simulation.kernel.now
    if node_id is None:
        pools_with_shards = {shard.pool for shard in router._shards.values()}
        for pool in sorted(membership.pools):
            if pool not in pools_with_shards:
                continue
            l2_alive = [n for n in membership.pool_nodes(pool, status="alive")
                        if n.role == "l2"]
            if l2_alive:
                node_id = l2_alive[0].node_id
                break
        if node_id is None:
            raise InjectionError(
                "no eligible withheld-repair site: no pool with live shards "
                "has an alive L2 node (run a workload to create shards first)"
            )
    simulation.cluster.fail_node(node_id, time=when)
    withheld = simulation.repair.withhold_node(node_id)
    if not withheld:
        raise InjectionError(
            f"failing {node_id!r} scheduled no repairs to withhold: the "
            "node's pool hosts no shards (run a workload first)"
        )
    holes = tuple((task.key, task.l2_index, task.pool)
                  for task in withheld)
    return AvailabilityDrill(kind="withheld-repair", holes=holes,
                             node_id=node_id)


__all__ = [
    "AvailabilityDrill",
    "Injection",
    "InjectionError",
    "QUORUM_CLIENT_MARKER",
    "REPLICA_CLIENT_PREFIX",
    "inject_all",
    "inject_quorum_version_drop",
    "inject_session_violation",
    "inject_stale_follower_read",
    "inject_under_replication",
    "inject_withheld_repair",
    "is_follower_read",
    "is_quorum_read",
]
