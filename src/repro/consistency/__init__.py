"""Consistency checking: histories, atomicity, and session guarantees.

The paper proves (Theorem IV.9) that every well-formed execution of the
LDS algorithm is atomic, using the sufficient condition of Lemma 13.16 of
Lynch's *Distributed Algorithms*.  This package provides the machinery to
check that property -- and the cluster-level guarantees layered on top of
it -- on executions produced by the simulator:

* :mod:`repro.consistency.history` -- recording of operation invocations
  and responses into a :class:`History`.
* :mod:`repro.consistency.linearizability` -- two atomicity checkers: the
  tag-based check that mirrors Lemma 13.16 (used when the implementation
  exposes its version tags) and a general linearizability search for
  read/write registers (used to validate histories without trusting the
  implementation's own tags).
* :mod:`repro.consistency.sessions` -- the cross-shard session auditor:
  validates per-client monotonic reads / monotonic writes / read-your-
  writes / writes-follow-reads across keys, shards and migration epochs
  over a merged global-clock history.
* :mod:`repro.consistency.streaming` -- the online equivalent of the
  session auditor: consumes completions one at a time with
  watermark-based retention, verdict-identical to the batch check but
  with memory flat in run length (the live-audit probe's core).
* :mod:`repro.consistency.injection` -- fault injection that perturbs a
  history into a violation of each session-guarantee class (plus
  cluster-level availability drills: silent under-replication and
  withheld repairs), proving the auditors detect what they claim to
  detect.
"""

from repro.consistency.history import History, Operation, OperationRecorder
from repro.consistency.linearizability import (
    AtomicityViolation,
    LinearizabilityChecker,
    check_atomicity_by_tags,
)
from repro.consistency.sessions import (
    MONOTONIC_READS,
    MONOTONIC_WRITES,
    READ_YOUR_WRITES,
    SESSION_GUARANTEES,
    WRITES_FOLLOW_READS,
    ClusterAuditReport,
    SessionAuditReport,
    SessionViolation,
    check_sessions,
)
from repro.consistency.streaming import StreamingSessionAuditor, replay_history
from repro.consistency.injection import (
    Injection,
    InjectionError,
    inject_all,
    inject_session_violation,
    inject_stale_follower_read,
    inject_under_replication,
    inject_withheld_repair,
    is_follower_read,
)

__all__ = [
    "History",
    "Operation",
    "OperationRecorder",
    "AtomicityViolation",
    "LinearizabilityChecker",
    "check_atomicity_by_tags",
    "MONOTONIC_READS",
    "MONOTONIC_WRITES",
    "READ_YOUR_WRITES",
    "WRITES_FOLLOW_READS",
    "SESSION_GUARANTEES",
    "ClusterAuditReport",
    "SessionAuditReport",
    "SessionViolation",
    "check_sessions",
    "StreamingSessionAuditor",
    "replay_history",
    "Injection",
    "InjectionError",
    "inject_all",
    "inject_session_violation",
    "inject_stale_follower_read",
    "inject_under_replication",
    "inject_withheld_repair",
    "is_follower_read",
]
