"""Consistency checking: operation histories and atomicity verification.

The paper proves (Theorem IV.9) that every well-formed execution of the
LDS algorithm is atomic, using the sufficient condition of Lemma 13.16 of
Lynch's *Distributed Algorithms*.  This package provides the machinery to
check that property on executions produced by the simulator:

* :mod:`repro.consistency.history` -- recording of operation invocations
  and responses into a :class:`History`.
* :mod:`repro.consistency.linearizability` -- two atomicity checkers: the
  tag-based check that mirrors Lemma 13.16 (used when the implementation
  exposes its version tags) and a general linearizability search for
  read/write registers (used to validate histories without trusting the
  implementation's own tags).
"""

from repro.consistency.history import History, Operation, OperationRecorder
from repro.consistency.linearizability import (
    AtomicityViolation,
    LinearizabilityChecker,
    check_atomicity_by_tags,
)

__all__ = [
    "History",
    "Operation",
    "OperationRecorder",
    "AtomicityViolation",
    "LinearizabilityChecker",
    "check_atomicity_by_tags",
]
