"""Atomicity (linearizability) checking for read/write registers.

Two complementary checkers are provided:

* :func:`check_atomicity_by_tags` implements the sufficient condition of
  Lemma 13.16 of Lynch (the one the paper uses to prove Theorem IV.9): the
  partial order induced by the implementation's version tags must be
  consistent with real-time order, writes must be totally ordered, and
  every read must return the value of the write whose tag it carries.

* :class:`LinearizabilityChecker` is a general search-based checker (in
  the style of Wing & Gong) specialised to single-register read/write
  histories.  It does not trust the implementation's tags at all; it is
  exponential in the amount of concurrency, so it is intended for the
  randomized small/medium histories produced by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.consistency.history import History, Operation, READ, WRITE


@dataclass
class AtomicityViolation:
    """Description of a detected atomicity violation."""

    description: str
    operations: Tuple[str, ...] = ()

    def __str__(self) -> str:
        ops = ", ".join(self.operations)
        return f"{self.description} (operations: {ops})" if ops else self.description


# ---------------------------------------------------------------------------
# Tag-based check (Lemma 13.16 of [22])
# ---------------------------------------------------------------------------

def _tag_order(op_a: Operation, op_b: Operation) -> bool:
    """The partial order ``op_a < op_b`` from the paper's atomicity proof.

    Operations without a tag have not been linearized by the
    implementation (incomplete, or dropped); they are unordered with
    respect to everything rather than an error, so a raw recorder history
    can never crash the checker.
    """
    if op_a.tag is None or op_b.tag is None:
        return False
    if op_a.tag < op_b.tag:
        return True
    if op_a.tag == op_b.tag:
        return op_a.kind == WRITE and op_b.kind == READ
    return False


def check_atomicity_by_tags(history: History) -> Optional[AtomicityViolation]:
    """Check atomicity using the implementation-provided tags.

    The checker drops incomplete operations itself (the paper's
    Lemma 13.16 assumes all invoked operations complete; an invoked-but-
    unfinished operation is not yet linearized and is allowed to be
    dropped), so callers may pass histories straight from the recorder --
    pre-filtering with ``history.complete()`` is unnecessary.  A *completed*
    operation without a tag is still a violation: the implementation
    responded without linearizing it.

    Returns ``None`` when the history satisfies properties P1-P3, or an
    :class:`AtomicityViolation` describing the first problem found.
    """
    for object_id in history.object_ids() or ["object-0"]:
        sub_history = history.for_object(object_id).complete()
        operations = sub_history.operations

        # P2: writes must carry distinct tags (total order on writes).
        writes_by_tag: Dict[Any, Operation] = {}
        for op in operations:
            if op.tag is None:
                return AtomicityViolation(
                    "operation is missing a tag", (op.op_id,)
                )
            if op.kind == WRITE:
                existing = writes_by_tag.get(op.tag)
                if existing is not None:
                    return AtomicityViolation(
                        "two writes share the same tag", (existing.op_id, op.op_id)
                    )
                writes_by_tag[op.tag] = op

        # P1: the tag order must not contradict real-time precedence.
        for earlier in operations:
            for later in operations:
                if earlier is later or not earlier.precedes(later):
                    continue
                if _tag_order(later, earlier):
                    return AtomicityViolation(
                        "tag order contradicts real-time order",
                        (earlier.op_id, later.op_id),
                    )

        # P3: every read returns the value of the write with the same tag,
        # or the initial value if its tag is the initial tag (no such write).
        for op in operations:
            if op.kind != READ:
                continue
            matching_write = writes_by_tag.get(op.tag)
            if matching_write is None:
                if op.value != sub_history.initial_value:
                    return AtomicityViolation(
                        "read returned a value never written (and not the initial value)",
                        (op.op_id,),
                    )
            elif op.value != matching_write.value:
                return AtomicityViolation(
                    "read returned a value inconsistent with its tag's write",
                    (op.op_id, matching_write.op_id),
                )
    return None


# ---------------------------------------------------------------------------
# General search-based linearizability checker
# ---------------------------------------------------------------------------

class LinearizabilityChecker:
    """Search-based linearizability checker for a single read/write register.

    The checker explores linearization orders with memoisation on the set
    of already-linearized operations together with the register value at
    that point.  Incomplete operations are treated as optional: they may
    take effect at any point after their invocation or never (standard
    crash semantics for pending operations).
    """

    def __init__(self, max_states: int = 2_000_000) -> None:
        self.max_states = max_states
        self._states_explored = 0

    @property
    def states_explored(self) -> int:
        return self._states_explored

    def check(self, history: History) -> Optional[AtomicityViolation]:
        """Return ``None`` if the history is linearizable, else a violation."""
        for object_id in history.object_ids() or ["object-0"]:
            sub_history = history.for_object(object_id)
            violation = self._check_single_object(sub_history)
            if violation is not None:
                return violation
        return None

    def is_linearizable(self, history: History) -> bool:
        """Convenience wrapper returning a boolean."""
        return self.check(history) is None

    # -- internals -----------------------------------------------------------

    def _check_single_object(self, history: History) -> Optional[AtomicityViolation]:
        operations = history.operations
        complete_ops = [op for op in operations if op.is_complete]
        pending_ops = [op for op in operations if not op.is_complete]
        self._states_explored = 0

        ordered = sorted(operations, key=lambda op: op.invoked_at)
        index_of = {op.op_id: i for i, op in enumerate(ordered)}
        total = len(ordered)

        # Precompute real-time predecessors: op j must be linearized before
        # op i may be linearized if j responded before i was invoked.
        must_precede: List[Set[int]] = [set() for _ in range(total)]
        for i, op_i in enumerate(ordered):
            for j, op_j in enumerate(ordered):
                if i != j and op_j.precedes(op_i):
                    must_precede[i].add(j)

        complete_indices = frozenset(
            index_of[op.op_id] for op in complete_ops
        )
        del pending_ops

        seen: Set[Tuple[FrozenSet[int], Any]] = set()

        def search(linearized: FrozenSet[int], value: Any) -> bool:
            self._states_explored += 1
            if self._states_explored > self.max_states:
                raise RuntimeError(
                    "linearizability search exceeded its state budget; "
                    "use the tag-based checker for histories this concurrent"
                )
            if complete_indices <= linearized:
                return True
            key = (linearized, value)
            if key in seen:
                return False
            seen.add(key)
            for i, op in enumerate(ordered):
                if i in linearized:
                    continue
                # Real-time order: all operations that responded before this
                # one was invoked must already be linearized.
                if not must_precede[i] <= linearized:
                    # If op i is complete and some unlinearized op must precede
                    # it, we may still pick that other op first; just skip i.
                    continue
                if op.kind == WRITE:
                    if search(linearized | {i}, op.value):
                        return True
                else:  # READ
                    if op.is_complete and op.value != value:
                        continue
                    if search(linearized | {i}, value):
                        return True
                # Incomplete operations may also simply never take effect; that
                # case is covered because they are not in complete_indices and
                # we do not require them to be linearized.
            return False

        if search(frozenset(), history.initial_value):
            return None
        return AtomicityViolation(
            "no linearization of the history exists",
            tuple(op.op_id for op in complete_ops),
        )


__all__ = ["AtomicityViolation", "LinearizabilityChecker", "check_atomicity_by_tags"]
