"""Streaming session-consistency auditing with bounded retention.

:func:`repro.consistency.sessions.check_sessions` replays a *complete*
merged history after the run: O(total ops) memory and time, which is the
scaling wall ROADMAP item 4 names -- the larger the run, the more it
costs to learn whether it was even correct.  This module re-derives the
same audit as an *online* computation: a :class:`StreamingSessionAuditor`
consumes completed operations one at a time, keeps the batch auditor's
running-max witnesses per ``(session, key)`` incrementally, and uses
**watermarks** to retire per-operation state as soon as no in-flight
operation can still precede it -- so live memory is proportional to the
number of *active* (session, key) groups and in-flight operations, flat
in run length.

Equivalence argument (mirrors the batch sweep in ``check_sessions``):

* An operation ``O`` must be checked against the maximum-version write
  and read among its group's operations that responded strictly before
  ``O.invoked_at``.  The auditor checks ``O`` only once the key's
  watermark has reached ``O.invoked_at``; the watermark contract
  guarantees every operation responding before it has already been
  consumed, so all of ``O``'s witnesses are present.
* Entries that responded before the watermark can never gain *new*
  successors with earlier thresholds (every future check's threshold is
  at or above the watermark), so they are **folded** into two settled
  maxima per group -- exactly the batch sweep's running maxima -- and
  their per-operation state is dropped.
* Ties between equal-version witnesses are resolved the way the batch
  absorption order does: the first in ``(responded_at, op_id)`` order
  wins (the batch loop only replaces on a strictly greater version).

**Watermark contract.**  ``advance({key: W})`` asserts that (a) every
operation on ``key`` that responded strictly before ``W`` has been
``consume``-d, and (b) every operation on ``key`` not yet consumed --
in flight or not yet invoked -- has ``invoked_at >= W`` *and*
``responded_at >= W``.  In a kernel-driven cluster the live-audit probe
derives ``W`` as ``min(kernel.now, in-flight invocations on key)``
(see :mod:`repro.obs.live_audit`); for an already-recorded history
:func:`replay_history` derives it from the suffix minima of the
invocation times.

Violations, counts and witnesses are identical to the batch auditor on
any complete history (the differential tests in
``tests/consistency/test_streaming.py`` pin this over every shipped
scenario and every injection drill); only the *order* of the violations
list may differ, since groups fire as their watermarks pass rather than
in sorted-group order.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.consistency.history import History, Operation, WRITE
from repro.consistency.sessions import (
    SessionAuditReport,
    SessionViolation,
    _check_pair,
    operation_version,
    split_object_id,
)

#: A witness candidate: the running-max comparison needs the version, the
#: operation itself (for the violation report) and its batch absorption
#: order ``(responded_at, op_id)`` for deterministic tie-breaks.
_Witness = Tuple[Tuple[int, Any], Operation, Tuple[float, str]]


class _GroupState:
    """Live audit state of one ``(session, key)`` group."""

    __slots__ = ("session", "key", "entries", "unchecked",
                 "settled_write", "settled_read")

    def __init__(self, session: str, key: str) -> None:
        self.session = session
        self.key = key
        #: Arrived, auditable, not-yet-folded operations:
        #: ``(responded_at, op_id, kind, version, op)``.
        self.entries: List[Tuple[float, str, str, Tuple[int, Any], Operation]] = []
        #: Arrived operations whose own check still waits on the watermark.
        self.unchecked: List[Operation] = []
        #: Folded running maxima -- the batch sweep's ``max_write`` /
        #: ``max_read`` over everything retired so far.
        self.settled_write: Optional[_Witness] = None
        self.settled_read: Optional[_Witness] = None


class StreamingSessionAuditor:
    """Online, bounded-memory equivalent of ``check_sessions``.

    Feed completed operations through :meth:`consume` (incomplete or
    unsessioned operations are counted and skipped with the batch
    auditor's exact eligibility rules), move the per-key watermarks
    forward with :meth:`advance`, and read the verdict with
    :meth:`report`.  ``on_violation`` (if set) fires the moment a
    violation is detected -- this is the hook the live-audit probe uses
    to surface violations at sim time.
    """

    def __init__(self) -> None:
        self._groups: Dict[Tuple[str, str], _GroupState] = {}
        #: Groups holding unfolded entries or unchecked operations.
        self._dirty: Set[Tuple[str, str]] = set()
        self.violations: List[SessionViolation] = []
        self.operations_checked = 0
        self.pairs_checked = 0
        self.unsessioned_skipped = 0
        self.unlinearized_skipped = 0
        #: Fired as ``on_violation(violation, op)`` when a check fails.
        self.on_violation: Optional[
            Callable[[SessionViolation, Operation], None]] = None
        # Retention accounting: the benchmark's "tracked state" is the
        # per-operation state still held (unfolded entries + pending
        # checks); the high-water marks show it stays flat in run length.
        self._entry_count = 0
        self._unchecked_count = 0
        self.peak_tracked_entries = 0
        self.peak_groups = 0

    # -- intake ----------------------------------------------------------------

    def consume(self, op: Operation) -> None:
        """Feed one operation (same eligibility rules as ``session_groups``)."""
        if op.session is None:
            self.unsessioned_skipped += 1
            return
        if not op.is_complete or op.tag is None:
            self.unlinearized_skipped += 1
            return
        key, _ = split_object_id(op.object_id)
        group_key = (op.session, key)
        group = self._groups.get(group_key)
        if group is None:
            group = self._groups[group_key] = _GroupState(op.session, key)
            self.peak_groups = max(self.peak_groups, len(self._groups))
        self.operations_checked += 1
        group.entries.append((op.responded_at, op.op_id, op.kind,
                              operation_version(op), op))
        group.unchecked.append(op)
        self._entry_count += 1
        self._unchecked_count += 1
        self._dirty.add(group_key)
        tracked = self._entry_count + self._unchecked_count
        if tracked > self.peak_tracked_entries:
            self.peak_tracked_entries = tracked

    # -- watermark progress -----------------------------------------------------

    def dirty_keys(self) -> Set[str]:
        """Keys whose groups still hold per-operation state (need watermarks)."""
        return {key for _, key in self._dirty}

    def advance(self, watermarks: Mapping[str, float]) -> None:
        """Check and fold everything the given per-key watermarks allow."""
        for group_key in sorted(self._dirty):
            watermark = watermarks.get(group_key[1])
            if watermark is None:
                continue
            group = self._groups[group_key]
            self._advance_group(group, watermark)
            if not group.entries and not group.unchecked:
                self._dirty.discard(group_key)

    def finalize(self) -> None:
        """Check every still-pending operation as if no more could arrive.

        At quiescence (all in-flight operations resolved) this yields
        exactly the batch verdict on the complete history.  Called
        mid-run it reflects the completions so far -- operations checked
        here keep their verdicts even if a straggler completes later.
        Entries are *not* folded, so later arrivals still meet correct
        witnesses.
        """
        for group_key in sorted(self._dirty):
            group = self._groups[group_key]
            if group.unchecked:
                ready, group.unchecked = group.unchecked, []
                self._unchecked_count -= len(ready)
                self._check_ready(group, ready)
            if not group.entries:
                self._dirty.discard(group_key)

    def _advance_group(self, group: _GroupState, watermark: float) -> None:
        # 1. Check operations whose threshold the watermark has passed:
        #    every witness (responded strictly before invoked_at) has
        #    arrived, because future arrivals respond at >= watermark.
        ready = [op for op in group.unchecked if op.invoked_at <= watermark]
        if ready:
            group.unchecked = [op for op in group.unchecked
                               if op.invoked_at > watermark]
            self._unchecked_count -= len(ready)
            self._check_ready(group, ready)
        # 2. Fold entries no future check can distinguish from the maxima:
        #    every remaining or future threshold is >= watermark.
        if group.entries:
            keep = []
            folding = []
            for entry in group.entries:
                (folding if entry[0] < watermark else keep).append(entry)
            if folding:
                folding.sort(key=lambda entry: (entry[0], entry[1]))
                for responded_at, op_id, kind, version, op in folding:
                    witness = (version, op, (responded_at, op_id))
                    if kind == WRITE:
                        if (group.settled_write is None
                                or version > group.settled_write[0]):
                            group.settled_write = witness
                    elif (group.settled_read is None
                            or version > group.settled_read[0]):
                        group.settled_read = witness
                group.entries = keep
                self._entry_count -= len(folding)

    # -- checking ----------------------------------------------------------------

    def _check_ready(self, group: _GroupState, ready: List[Operation]) -> None:
        ready.sort(key=lambda op: (op.invoked_at, op.responded_at, op.op_id))
        for op in ready:
            self._check(group, op)

    def _check(self, group: _GroupState, op: Operation) -> None:
        threshold = op.invoked_at
        best_write = group.settled_write
        best_read = group.settled_read
        for responded_at, op_id, kind, version, other in group.entries:
            if responded_at >= threshold:
                continue
            order = (responded_at, op_id)
            if kind == WRITE:
                if _improves(best_write, version, order):
                    best_write = (version, other, order)
            elif _improves(best_read, version, order):
                best_read = (version, other, order)
        op_version = operation_version(op)
        for witness in (best_write, best_read):
            if witness is None:
                continue
            self.pairs_checked += 1
            violation = _check_pair(group.session, group.key, witness[1], op,
                                    witness[0], op_version)
            if violation is not None:
                self.violations.append(violation)
                if self.on_violation is not None:
                    self.on_violation(violation, op)

    # -- results -----------------------------------------------------------------

    @property
    def tracked_groups(self) -> int:
        return len(self._groups)

    @property
    def tracked_entries(self) -> int:
        """Per-operation state currently held (entries + pending checks)."""
        return self._entry_count + self._unchecked_count

    def report(self, *, extra_unsessioned: int = 0,
               extra_unlinearized: int = 0) -> SessionAuditReport:
        """The audit verdict so far, in the batch report's exact shape.

        The extras account for operations the *feed* never delivers --
        in a live cluster, operations still incomplete at report time
        (the batch auditor sees them in the merged history and counts
        them as skips; the completion feed, by construction, does not).
        """
        return SessionAuditReport(
            violations=list(self.violations),
            sessions_checked=len({session for session, _ in self._groups}),
            operations_checked=self.operations_checked,
            pairs_checked=self.pairs_checked,
            unsessioned_skipped=self.unsessioned_skipped + extra_unsessioned,
            unlinearized_skipped=self.unlinearized_skipped + extra_unlinearized,
        )


def _improves(current: Optional[_Witness], version: Tuple[int, Any],
              order: Tuple[float, str]) -> bool:
    """Batch tie-break: higher version wins; among equals, the first in
    ``(responded_at, op_id)`` order (the batch loop's absorption order,
    which only replaces on strictly greater versions)."""
    if current is None:
        return True
    if version != current[0]:
        return version > current[0]
    return order < current[2]


def replay_history(history: History, *,
                   auditor: Optional[StreamingSessionAuditor] = None,
                   advance_every: int = 16) -> StreamingSessionAuditor:
    """Stream a recorded history through an auditor, watermarks included.

    Completed operations are consumed in ``(responded_at, op_id)`` order
    -- the order a live kernel run delivers completions -- and after
    every ``advance_every`` arrivals the per-key watermarks advance to
    the largest value the contract allows: the minimum of the next
    response time and the smallest invocation time still ahead (the
    suffix minimum).  Ends with :meth:`StreamingSessionAuditor.finalize`,
    so the result equals ``check_sessions(history)`` exactly.
    """
    auditor = auditor if auditor is not None else StreamingSessionAuditor()
    complete: List[Operation] = []
    for op in history:
        if op.is_complete:
            complete.append(op)
        else:
            auditor.consume(op)  # counted as a skip, exactly like batch
    complete.sort(key=lambda op: (op.responded_at, op.op_id))
    # suffix_min_invoked[i] = min invocation time of complete[i:].
    suffix_min_invoked = [0.0] * len(complete)
    running = float("inf")
    for index in range(len(complete) - 1, -1, -1):
        running = min(running, complete[index].invoked_at)
        suffix_min_invoked[index] = running
    for index, op in enumerate(complete):
        auditor.consume(op)
        if (index + 1) % advance_every == 0 and index + 1 < len(complete):
            watermark = min(complete[index + 1].responded_at,
                            suffix_min_invoked[index + 1])
            auditor.advance({key: watermark for key in auditor.dirty_keys()})
    auditor.finalize()
    return auditor


__all__ = ["StreamingSessionAuditor", "replay_history"]
