"""Cross-shard session-consistency auditing.

The per-object checkers in :mod:`repro.consistency.linearizability` prove
what the paper proves: each LDS object (each shard epoch) is atomic.  A
sharded deployment, however, serves many keys per client, and nothing in a
per-object check notices a client observing key ``a`` going backwards
while it hops between shards -- or a migration epoch whose carried value
regresses.  This module audits the four classic *session guarantees*
(Terry et al., "Session Guarantees for Weakly Consistent Replicated
Data") over the merged, global-clock history of a whole cluster:

* **monotonic reads** -- once a session has read a version of a key, no
  later read of that key in the session returns an older version;
* **monotonic writes** -- a session's writes to a key take effect in
  session order (strictly increasing versions);
* **read your writes** -- a session's read of a key returns the session's
  own latest preceding write to that key, or something newer;
* **writes follow reads** -- a session's write to a key is ordered after
  every version the session previously read of that key.

**Versions.**  An operation's version is the pair ``(epoch, tag)``: the
shard migration epoch parsed from its ``object_id`` (``key`` is epoch 0,
``key@e2`` is epoch 2) and the implementation's version tag.  Within an
epoch the tags are the paper's totally ordered version tags; across
epochs the router's drain barrier guarantees every epoch-``e`` operation
completes before any epoch-``e+1`` operation is invoked, so the
lexicographic order on ``(epoch, tag)`` is a total order per key that is
consistent with real time.

**Session order.**  Operations of a session are related only by real-time
precedence on the global clock (``a`` responded strictly before ``b`` was
invoked).  Concurrent operations of a session -- possible because a
logical session spans per-shard writer and reader processes -- are
unconstrained, which is exactly the guarantee the cluster actually
provides: per-key atomicity plus the migration drain barrier imply all
four guarantees for precedence-ordered pairs, so a correct run audits
clean and any reported violation is a real bug (or an injected one; see
:mod:`repro.consistency.injection`).

The auditor therefore requires a history whose timestamps are mutually
comparable: use ``history(global_clock=True)`` from a kernel-driven
cluster (legacy per-shard clocks would produce false verdicts across
epochs).  Operations without a session, incomplete operations, and
operations without a tag are skipped (and counted in the report).

In the style of Wing & Gong's checker the audit covers every
precedence-ordered pair, but via running maxima (a guarantee holds
against all predecessors iff it holds against the maximum-version one),
so it costs O(n log n) per (session, key) group and stays cheap even
when a hot key concentrates a production-scale workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.consistency.history import History, Operation, READ, WRITE
from repro.consistency.linearizability import AtomicityViolation

#: Session-guarantee identifiers, as reported in violations.
MONOTONIC_READS = "monotonic-reads"
MONOTONIC_WRITES = "monotonic-writes"
READ_YOUR_WRITES = "read-your-writes"
WRITES_FOLLOW_READS = "writes-follow-reads"

SESSION_GUARANTEES = (
    MONOTONIC_READS,
    MONOTONIC_WRITES,
    READ_YOUR_WRITES,
    WRITES_FOLLOW_READS,
)


def split_object_id(object_id: str) -> Tuple[str, int]:
    """``key@e<n>`` -> ``(key, n)``; plain object ids are epoch 0.

    The parse is unambiguous for cluster histories because the router
    rejects user keys ending in its reserved ``@e<n>`` epoch suffix.
    """
    base, sep, suffix = object_id.rpartition("@e")
    if sep and suffix.isdigit():
        return base, int(suffix)
    return object_id, 0


def join_object_id(key: str, epoch: int) -> str:
    """The inverse of :func:`split_object_id`: ``(key, n)`` -> ``key@e<n>``.

    The single definition of the epoch-qualified object-id format; the
    router and the replica layer both build ids through it so the
    auditor's parse can never drift from the writers' format.
    """
    return key if epoch == 0 else f"{key}@e{epoch}"


def operation_version(op: Operation) -> Tuple[int, Any]:
    """The ``(epoch, tag)`` version an operation wrote or observed."""
    _, epoch = split_object_id(op.object_id)
    return (epoch, op.tag)


@dataclass(frozen=True)
class SessionViolation:
    """One detected violation of a session guarantee."""

    guarantee: str
    session: str
    key: str
    description: str
    #: The (earlier, later) operation ids of the offending pair.
    operations: Tuple[str, ...] = ()

    def __str__(self) -> str:
        ops = ", ".join(self.operations)
        suffix = f" (operations: {ops})" if ops else ""
        return (f"[{self.guarantee}] session {self.session!r}, "
                f"key {self.key!r}: {self.description}{suffix}")


@dataclass
class SessionAuditReport:
    """Everything the session auditor measured over one history."""

    violations: List[SessionViolation] = field(default_factory=list)
    sessions_checked: int = 0
    operations_checked: int = 0
    pairs_checked: int = 0
    #: Operations ignored because they carry no session identity.
    unsessioned_skipped: int = 0
    #: Sessioned but incomplete or untagged operations (not linearized yet).
    unlinearized_skipped: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def for_guarantee(self, guarantee: str) -> List[SessionViolation]:
        """The violations of one guarantee class."""
        return [v for v in self.violations if v.guarantee == guarantee]

    def describe(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"SessionAuditReport({status}, sessions={self.sessions_checked}, "
            f"operations={self.operations_checked}, pairs={self.pairs_checked})"
        )


def session_groups(
    history: History,
) -> Tuple[Dict[Tuple[str, str], List[Operation]], int, int]:
    """Group a history's auditable operations by ``(session, key)``.

    Auditable means sessioned, complete and tagged; each group is sorted
    by invocation time (deterministic tie-breaks).  Returns the groups
    plus the counts of skipped unsessioned and unlinearized (incomplete
    or untagged) operations.  Shared by the auditor and the injection
    harness so eligibility and ordering can never drift between the
    detector and the drill that proves it fires.
    """
    groups: Dict[Tuple[str, str], List[Operation]] = {}
    unsessioned = 0
    unlinearized = 0
    for op in history:
        if op.session is None:
            unsessioned += 1
            continue
        if not op.is_complete or op.tag is None:
            unlinearized += 1
            continue
        key, _ = split_object_id(op.object_id)
        groups.setdefault((op.session, key), []).append(op)
    for ops in groups.values():
        ops.sort(key=lambda op: (op.invoked_at, op.responded_at, op.op_id))
    return groups, unsessioned, unlinearized


def check_sessions(history: History) -> SessionAuditReport:
    """Audit every session of a merged global-clock history.

    Every operation that breaks a guarantee is reported with its
    *strongest witness* -- the maximum-version session operation that
    preceded it -- rather than stopping at the first problem.  Because a
    guarantee holds against all predecessors iff it holds against the
    maximum one, checking each operation against the running maxima gives
    the same verdicts as exhaustive pairing at O(n log n) per
    (session, key) group instead of O(n^2), which matters once a hot key
    concentrates a large share of a production-scale workload.
    """
    report = SessionAuditReport()
    groups, report.unsessioned_skipped, report.unlinearized_skipped = \
        session_groups(history)
    report.sessions_checked = len({session for session, _ in groups})
    report.operations_checked = sum(len(ops) for ops in groups.values())

    for (session, key), ops in sorted(groups.items()):
        # Sweep in invocation order, replaying responses as they become
        # visible: an operation precedes the current one iff it responded
        # strictly before the current invocation, so the running maxima
        # cover exactly the precedence-ordered predecessors.
        responded = sorted(ops, key=lambda op: (op.responded_at, op.op_id))
        cursor = 0
        max_write: Optional[Tuple[Tuple[int, Any], Operation]] = None
        max_read: Optional[Tuple[Tuple[int, Any], Operation]] = None
        for op in ops:
            while (cursor < len(responded)
                   and responded[cursor].responded_at < op.invoked_at):
                prior = responded[cursor]
                version = operation_version(prior)
                if prior.kind == WRITE:
                    if max_write is None or version > max_write[0]:
                        max_write = (version, prior)
                elif max_read is None or version > max_read[0]:
                    max_read = (version, prior)
                cursor += 1
            op_version = operation_version(op)
            for witness in (max_write, max_read):
                if witness is None:
                    continue
                report.pairs_checked += 1
                violation = _check_pair(session, key, witness[1], op,
                                        witness[0], op_version)
                if violation is not None:
                    report.violations.append(violation)
    return report


def _check_pair(session: str, key: str, earlier: Operation, later: Operation,
                earlier_version: Tuple[int, Any],
                later_version: Tuple[int, Any]) -> Optional[SessionViolation]:
    """The guarantee (if any) violated by one precedence-ordered pair."""
    pair = (earlier.op_id, later.op_id)
    if later.kind == READ:
        if later_version >= earlier_version:
            return None
        if earlier.kind == READ:
            return SessionViolation(
                MONOTONIC_READS, session, key,
                f"read observed version {later_version} after the session "
                f"already read version {earlier_version}", pair,
            )
        return SessionViolation(
            READ_YOUR_WRITES, session, key,
            f"read observed version {later_version} although the session "
            f"had already written version {earlier_version}", pair,
        )
    # later is a WRITE: its version must be strictly newer than anything
    # the session previously wrote (monotonic writes) or read (writes
    # follow reads) for this key.
    if later_version > earlier_version:
        return None
    if earlier.kind == WRITE:
        return SessionViolation(
            MONOTONIC_WRITES, session, key,
            f"write took effect at version {later_version}, not after the "
            f"session's earlier write at version {earlier_version}", pair,
        )
    return SessionViolation(
        WRITES_FOLLOW_READS, session, key,
        f"write took effect at version {later_version}, not after version "
        f"{earlier_version} which the session had already read", pair,
    )


@dataclass
class ClusterAuditReport:
    """The combined post-run correctness verdict of a cluster simulation.

    Bundles the per-epoch atomicity check (the paper's guarantee) with the
    cross-shard session audit (the deployment's guarantee) and -- when the
    sampling availability monitor ran -- its durability confidence verdict
    (duck-typed: anything with ``ok`` and ``describe()``); ``ok`` only
    when everything holds.
    """

    atomicity: Optional[AtomicityViolation]
    sessions: SessionAuditReport
    #: :class:`~repro.obs.availability.AvailabilityAssessment` when the
    #: sampling monitor ran, else None.
    availability: Optional[Any] = None

    @property
    def ok(self) -> bool:
        if self.atomicity is not None or not self.sessions.ok:
            return False
        return self.availability is None or self.availability.ok

    def describe(self) -> str:
        atomic = "atomic" if self.atomicity is None else f"VIOLATION: {self.atomicity}"
        parts = f"ClusterAuditReport({atomic}; {self.sessions.describe()}"
        if self.availability is not None:
            parts += f"; {self.availability.describe()}"
        return parts + ")"


__all__ = [
    "MONOTONIC_READS",
    "MONOTONIC_WRITES",
    "READ_YOUR_WRITES",
    "WRITES_FOLLOW_READS",
    "SESSION_GUARANTEES",
    "ClusterAuditReport",
    "SessionAuditReport",
    "SessionViolation",
    "check_sessions",
    "join_object_id",
    "operation_version",
    "session_groups",
    "split_object_id",
]
