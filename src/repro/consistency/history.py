"""Operation histories.

A :class:`History` is the record of an execution from the clients' point
of view: for every read or write operation it stores the invocation time,
the response time (absent for incomplete operations), the value written or
returned, and -- when the implementation exposes it -- the version tag the
operation was associated with.  Histories are what the atomicity checkers
and the cost/latency analyses consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional

WRITE = "write"
READ = "read"


@dataclass(frozen=True)
class Operation:
    """One client operation in a history.

    ``client_id`` names the physical client process that executed the
    operation (unique per shard deployment); ``session`` is the logical
    cross-object client identity threaded through the cluster layer, the
    unit over which the session-consistency guarantees of
    :mod:`repro.consistency.sessions` are checked.  Single-system
    histories leave it ``None``.
    """

    op_id: str
    client_id: str
    kind: str
    object_id: str = "object-0"
    value: Any = None
    invoked_at: float = 0.0
    responded_at: Optional[float] = None
    tag: Any = None
    session: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in (READ, WRITE):
            raise ValueError(f"operation kind must be 'read' or 'write', got {self.kind!r}")
        if self.responded_at is not None and self.responded_at < self.invoked_at:
            raise ValueError("response cannot precede invocation")

    @property
    def is_complete(self) -> bool:
        return self.responded_at is not None

    @property
    def duration(self) -> Optional[float]:
        """Operation latency; None for incomplete operations."""
        if self.responded_at is None:
            return None
        return self.responded_at - self.invoked_at

    def precedes(self, other: "Operation") -> bool:
        """Real-time precedence: this op responded before the other was invoked."""
        return self.responded_at is not None and self.responded_at < other.invoked_at

    def concurrent_with(self, other: "Operation") -> bool:
        """True when neither operation precedes the other."""
        return not self.precedes(other) and not other.precedes(self)


class History:
    """An immutable-ish collection of operations with query helpers."""

    def __init__(self, operations: Iterable[Operation] = (), initial_value: Any = None) -> None:
        self._operations: List[Operation] = list(operations)
        self.initial_value = initial_value

    # -- basic access ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._operations)

    def __iter__(self):
        return iter(self._operations)

    @property
    def operations(self) -> List[Operation]:
        return list(self._operations)

    def add(self, operation: Operation) -> None:
        self._operations.append(operation)

    # -- filtering ---------------------------------------------------------------

    def complete(self) -> "History":
        """Sub-history of completed operations only."""
        return History(
            [op for op in self._operations if op.is_complete],
            initial_value=self.initial_value,
        )

    def for_object(self, object_id: str) -> "History":
        """Sub-history restricted to one object."""
        return History(
            [op for op in self._operations if op.object_id == object_id],
            initial_value=self.initial_value,
        )

    def writes(self) -> List[Operation]:
        return [op for op in self._operations if op.kind == WRITE]

    def reads(self) -> List[Operation]:
        return [op for op in self._operations if op.kind == READ]

    def object_ids(self) -> List[str]:
        """Distinct object ids appearing in the history (insertion order)."""
        seen: Dict[str, None] = {}
        for op in self._operations:
            seen.setdefault(op.object_id, None)
        return list(seen)

    def sessions(self) -> List[str]:
        """Distinct (non-None) session ids in the history (insertion order)."""
        seen: Dict[str, None] = {}
        for op in self._operations:
            if op.session is not None:
                seen.setdefault(op.session, None)
        return list(seen)

    # -- well-formedness -------------------------------------------------------------

    def is_well_formed(self) -> bool:
        """Each client has at most one outstanding operation at any time."""
        by_client: Dict[str, List[Operation]] = {}
        for op in self._operations:
            by_client.setdefault(op.client_id, []).append(op)
        for ops in by_client.values():
            ordered = sorted(ops, key=lambda op: op.invoked_at)
            for previous, current in zip(ordered, ordered[1:]):
                if previous.responded_at is None:
                    return False
                if previous.responded_at > current.invoked_at:
                    return False
        return True

    # -- statistics ------------------------------------------------------------------

    def latencies(self, kind: Optional[str] = None) -> List[float]:
        """Durations of completed operations, optionally restricted to a kind."""
        return [
            op.duration
            for op in self._operations
            if op.is_complete and (kind is None or op.kind == kind)
        ]


class OperationRecorder:
    """Collects invocation/response events as a simulation runs."""

    def __init__(self, initial_value: Any = None) -> None:
        self._pending: Dict[str, Operation] = {}
        self._completed: List[Operation] = []
        self.initial_value = initial_value

    def invoke(self, op_id: str, client_id: str, kind: str, object_id: str,
               value: Any, time: float) -> None:
        """Record the invocation step of an operation."""
        if op_id in self._pending:
            raise ValueError(f"operation {op_id!r} already invoked")
        self._pending[op_id] = Operation(
            op_id=op_id, client_id=client_id, kind=kind, object_id=object_id,
            value=value, invoked_at=time,
        )

    def respond(self, op_id: str, time: float, value: Any = None, tag: Any = None) -> None:
        """Record the response step of an operation.

        For reads, ``value`` is the returned value; for writes it is ignored.
        """
        pending = self._pending.pop(op_id, None)
        if pending is None:
            raise ValueError(f"operation {op_id!r} was never invoked (or responded twice)")
        updates = {"responded_at": time, "tag": tag}
        if pending.kind == READ and value is not None:
            updates["value"] = value
        self._completed.append(replace(pending, **updates))

    @property
    def incomplete_count(self) -> int:
        return len(self._pending)

    def pending_operations(self) -> List[Operation]:
        """The invoked-but-unresponded operations (invocation-time data only)."""
        return list(self._pending.values())

    def history(self) -> History:
        """Build the history of all operations recorded so far."""
        operations = self._completed + list(self._pending.values())
        operations.sort(key=lambda op: op.invoked_at)
        return History(operations, initial_value=self.initial_value)


__all__ = ["History", "Operation", "OperationRecorder", "READ", "WRITE"]
