"""Consistent hashing with virtual nodes.

The cluster layer places object shards onto named server *pools* with a
classic consistent-hash ring (Karger et al.): every pool is projected onto
the ring at ``vnodes`` pseudo-random positions (more for heavier pools),
and a key is owned by the pool whose virtual node follows the key's hash
clockwise.  Adding or removing one pool therefore only remaps the keys in
the ring arcs adjacent to that pool's virtual nodes -- roughly a ``1/P``
fraction of the keyspace -- which is what makes deterministic, incremental
rebalancing plans possible.

Hashes are computed with BLAKE2b so placement is stable across processes
and Python invocations (``hash()`` is salted per process and would not
be).  Given the same set of ``(name, weight)`` pairs the ring is identical
no matter in which order the pools were added.
"""

from __future__ import annotations

import bisect
import hashlib
import math
from typing import Dict, Iterable, List, Sequence, Tuple


def stable_hash(text: str) -> int:
    """A 64-bit hash of ``text`` that is stable across processes."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def derive_seed(root: object, *parts: object) -> int:
    """A child RNG seed deterministically derived from a root seed.

    All cluster components (per-shard latency models, the repair
    scheduler's jitter, workload samplers) draw their seeds through this
    function so one root seed reproduces one identical global event order.
    The derivation is position-sensitive and stable across processes.
    """
    text = "\x1f".join(str(part) for part in (root, *parts))
    return stable_hash(text) & 0x7FFFFFFF


class HashRing:
    """A consistent-hash ring mapping string keys to named nodes (pools)."""

    def __init__(self, vnodes: int = 128) -> None:
        if vnodes < 1:
            raise ValueError("a ring needs at least one virtual node per member")
        self.vnodes = vnodes
        self._weights: Dict[str, float] = {}
        #: Sorted (hash, node) pairs; rebuilt on membership changes.
        self._ring: List[Tuple[int, str]] = []
        self._hashes: List[int] = []

    # -- membership ------------------------------------------------------------

    def add_node(self, name: str, weight: float = 1.0) -> None:
        """Add (or re-weight) a node; ``weight`` scales its virtual-node count."""
        if weight <= 0:
            raise ValueError("node weight must be positive")
        self._weights[name] = float(weight)
        self._rebuild()

    def remove_node(self, name: str) -> None:
        """Remove a node; raises ``KeyError`` for unknown names."""
        del self._weights[name]
        self._rebuild()

    def _rebuild(self) -> None:
        ring: List[Tuple[int, str]] = []
        for name, weight in self._weights.items():
            replicas = max(1, int(round(self.vnodes * weight)))
            for replica in range(replicas):
                ring.append((stable_hash(f"{name}#{replica}"), name))
        # Ties (hash collisions) are broken by node name so the ring is a
        # pure function of its membership, independent of insertion order.
        ring.sort()
        self._ring = ring
        self._hashes = [entry[0] for entry in ring]

    def __contains__(self, name: str) -> bool:
        return name in self._weights

    def __len__(self) -> int:
        return len(self._weights)

    @property
    def nodes(self) -> List[str]:
        """Member names in sorted order."""
        return sorted(self._weights)

    # -- lookups -----------------------------------------------------------------

    def node_for(self, key: str) -> str:
        """The node owning ``key`` (first virtual node clockwise of its hash)."""
        if not self._ring:
            raise LookupError("the hash ring has no members")
        index = bisect.bisect_right(self._hashes, stable_hash(key)) % len(self._ring)
        return self._ring[index][1]

    def nodes_for(self, key: str, count: int) -> List[str]:
        """The first ``count`` *distinct* nodes clockwise of ``key``.

        Useful for replica placement; ``count`` is capped at the member count.
        """
        if not self._ring:
            raise LookupError("the hash ring has no members")
        count = min(count, len(self._weights))
        start = bisect.bisect_right(self._hashes, stable_hash(key))
        found: List[str] = []
        for offset in range(len(self._ring)):
            node = self._ring[(start + offset) % len(self._ring)][1]
            if node not in found:
                found.append(node)
                if len(found) == count:
                    break
        return found

    # -- balance statistics ----------------------------------------------------------

    def key_counts(self, keys: Iterable[str]) -> Dict[str, int]:
        """How many of ``keys`` each member owns (members with zero included)."""
        counts = {name: 0 for name in self._weights}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts

    def balance(self, keys: Sequence[str]) -> "RingBalance":
        """Summary statistics of how evenly ``keys`` spread over the members."""
        counts = self.key_counts(keys)
        return RingBalance.from_counts(counts)


class RingBalance:
    """Spread statistics for a key placement (mean / stddev / CV / counts)."""

    def __init__(self, counts: Dict[str, int]) -> None:
        self.counts = dict(counts)
        values = list(self.counts.values())
        self.mean = sum(values) / len(values) if values else 0.0
        variance = (
            sum((v - self.mean) ** 2 for v in values) / len(values) if values else 0.0
        )
        self.stddev = math.sqrt(variance)

    @classmethod
    def from_counts(cls, counts: Dict[str, int]) -> "RingBalance":
        return cls(counts)

    @property
    def coefficient_of_variation(self) -> float:
        """stddev / mean -- the scale-free imbalance measure."""
        return self.stddev / self.mean if self.mean else 0.0

    @property
    def max_over_mean(self) -> float:
        """Peak-to-average load ratio."""
        if not self.counts or not self.mean:
            return 0.0
        return max(self.counts.values()) / self.mean

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RingBalance(mean={self.mean:.1f}, stddev={self.stddev:.1f}, "
            f"cv={self.coefficient_of_variation:.3f})"
        )


__all__ = ["HashRing", "RingBalance", "stable_hash"]
