"""Shard placement maps and deterministic rebalancing plans.

A *placement* is simply a mapping ``key -> pool``.  The hash ring defines
the target placement for any key set; membership changes (a pool joining
or leaving the ring) change that target, and the difference between the
old and new placements is a :class:`RebalancePlan` -- an explicit, ordered
list of :class:`ShardMove` entries that the router executes one by one.

Plans are deterministic: the ring is a pure function of its membership and
moves are emitted in sorted key order, so the same membership transition
always yields the same plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.cluster.ring import HashRing


def placement_of(ring: HashRing, keys: Iterable[str]) -> Dict[str, str]:
    """The placement the ring currently prescribes for ``keys``."""
    return {key: ring.node_for(key) for key in keys}


def replica_placement_of(ring: HashRing, keys: Iterable[str],
                         r: int) -> Dict[str, List[str]]:
    """The r-way replica placement the ring prescribes for ``keys``.

    Element 0 of each list is the primary (identical to
    :func:`placement_of`); the rest are the follower pools, in ring walk
    order.  ``r`` is capped at the member count by ``nodes_for``.
    """
    return {key: ring.nodes_for(key, r) for key in keys}


@dataclass(frozen=True)
class ShardMove:
    """One shard migration: ``key`` moves from ``source`` pool to ``target``."""

    key: str
    source: str
    target: str

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ValueError("a shard move needs distinct source and target pools")


#: Follower-change actions in a replica-aware plan.
ADD_FOLLOWER = "add"
DROP_FOLLOWER = "drop"


@dataclass(frozen=True)
class FollowerChange:
    """One follower-set adjustment of a replica-aware rebalance plan."""

    key: str
    pool: str
    action: str

    def __post_init__(self) -> None:
        if self.action not in (ADD_FOLLOWER, DROP_FOLLOWER):
            raise ValueError(
                f"follower change action must be '{ADD_FOLLOWER}' or "
                f"'{DROP_FOLLOWER}'"
            )


@dataclass
class RebalancePlan:
    """An ordered, deterministic list of shard moves plus bookkeeping.

    With replica groups the plan additionally carries the follower-set
    changes (``follower_changes``) that align each key's ``r``-way replica
    set with the ring; primary relocations stay ordinary ``moves``.
    """

    moves: List[ShardMove] = field(default_factory=list)
    #: Why the plan was generated (e.g. "join pool-4", "leave pool-1").
    reason: str = ""
    #: Virtual time at which the membership change happened.
    time: float = 0.0
    #: Follower drops/adds (replica-aware plans only), sorted by key.
    follower_changes: List[FollowerChange] = field(default_factory=list)

    @property
    def keys_moved(self) -> List[str]:
        return [move.key for move in self.moves]

    def moved_fraction(self, total_keys: int) -> float:
        """Fraction of the tracked keyspace this plan relocates."""
        return len(self.moves) / total_keys if total_keys else 0.0

    def __len__(self) -> int:
        return len(self.moves)

    def __bool__(self) -> bool:
        return bool(self.moves)


def diff_placements(before: Dict[str, str], after: Dict[str, str],
                    reason: str = "", time: float = 0.0) -> RebalancePlan:
    """The plan turning placement ``before`` into placement ``after``.

    Keys present only in ``after`` (new shards) need no move -- they are
    simply created in place -- so only keys present in both mappings with
    differing owners produce moves.  Moves are sorted by key.
    """
    moves = [
        ShardMove(key=key, source=before[key], target=after[key])
        for key in sorted(before)
        if key in after and before[key] != after[key]
    ]
    return RebalancePlan(moves=moves, reason=reason, time=time)


def diff_replica_placements(before: Dict[str, List[str]],
                            after: Dict[str, List[str]],
                            reason: str = "",
                            time: float = 0.0) -> RebalancePlan:
    """The replica-aware plan turning placement ``before`` into ``after``.

    Placements map ``key -> [primary, follower, ...]``.  A changed primary
    produces an ordinary :class:`ShardMove` (the migration machinery moves
    the authoritative state); follower-set differences produce
    :class:`FollowerChange` records -- note that a follower promoted to
    primary by the move is *dropped* as a follower (its store is consumed
    by the migration target's new epoch) and a demoted primary is *added*
    (it must be re-seeded as a passive store).  Deterministic: keys and
    pools are processed in sorted order.
    """
    moves: List[ShardMove] = []
    changes: List[FollowerChange] = []
    for key in sorted(before):
        if key not in after or not before[key] or not after[key]:
            continue
        old_primary, new_primary = before[key][0], after[key][0]
        if old_primary != new_primary:
            moves.append(ShardMove(key=key, source=old_primary,
                                   target=new_primary))
        old_followers = set(before[key][1:])
        new_followers = set(after[key][1:]) - {new_primary}
        for pool in sorted(old_followers - new_followers):
            changes.append(FollowerChange(key=key, pool=pool,
                                          action=DROP_FOLLOWER))
        for pool in sorted(new_followers - old_followers):
            changes.append(FollowerChange(key=key, pool=pool,
                                          action=ADD_FOLLOWER))
    return RebalancePlan(moves=moves, reason=reason, time=time,
                         follower_changes=changes)


__all__ = [
    "ADD_FOLLOWER",
    "DROP_FOLLOWER",
    "FollowerChange",
    "RebalancePlan",
    "ShardMove",
    "diff_placements",
    "diff_replica_placements",
    "placement_of",
    "replica_placement_of",
]
