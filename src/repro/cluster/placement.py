"""Shard placement maps and deterministic rebalancing plans.

A *placement* is simply a mapping ``key -> pool``.  The hash ring defines
the target placement for any key set; membership changes (a pool joining
or leaving the ring) change that target, and the difference between the
old and new placements is a :class:`RebalancePlan` -- an explicit, ordered
list of :class:`ShardMove` entries that the router executes one by one.

Plans are deterministic: the ring is a pure function of its membership and
moves are emitted in sorted key order, so the same membership transition
always yields the same plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.cluster.ring import HashRing


def placement_of(ring: HashRing, keys: Iterable[str]) -> Dict[str, str]:
    """The placement the ring currently prescribes for ``keys``."""
    return {key: ring.node_for(key) for key in keys}


@dataclass(frozen=True)
class ShardMove:
    """One shard migration: ``key`` moves from ``source`` pool to ``target``."""

    key: str
    source: str
    target: str

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ValueError("a shard move needs distinct source and target pools")


@dataclass
class RebalancePlan:
    """An ordered, deterministic list of shard moves plus bookkeeping."""

    moves: List[ShardMove] = field(default_factory=list)
    #: Why the plan was generated (e.g. "join pool-4", "leave pool-1").
    reason: str = ""
    #: Virtual time at which the membership change happened.
    time: float = 0.0

    @property
    def keys_moved(self) -> List[str]:
        return [move.key for move in self.moves]

    def moved_fraction(self, total_keys: int) -> float:
        """Fraction of the tracked keyspace this plan relocates."""
        return len(self.moves) / total_keys if total_keys else 0.0

    def __len__(self) -> int:
        return len(self.moves)

    def __bool__(self) -> bool:
        return bool(self.moves)


def diff_placements(before: Dict[str, str], after: Dict[str, str],
                    reason: str = "", time: float = 0.0) -> RebalancePlan:
    """The plan turning placement ``before`` into placement ``after``.

    Keys present only in ``after`` (new shards) need no move -- they are
    simply created in place -- so only keys present in both mappings with
    differing owners produce moves.  Moves are sorted by key.
    """
    moves = [
        ShardMove(key=key, source=before[key], target=after[key])
        for key in sorted(before)
        if key in after and before[key] != after[key]
    ]
    return RebalancePlan(moves=moves, reason=reason, time=time)


__all__ = ["ShardMove", "RebalancePlan", "placement_of", "diff_placements"]
