"""Background, rate-limited repair of failed back-end server slots.

When a pool node hosting an L2 server slot fails, every shard on that pool
loses one coded element.  Repairing all of them at the instant of the
failure would flood the back-end with regeneration traffic, so the
:class:`RepairScheduler` consumes the membership's failure events and
schedules one background repair per affected shard through a token-slot
rate limiter: at most ``max_concurrent`` repairs may start within any
``min_interval`` window, and no repair starts before the failure has been
"detected" (``detection_delay`` after the crash).

Each repair runs the existing
:class:`~repro.core.repair.BackendRepairCoordinator` machinery inside the
shard's own simulator at the scheduled virtual time, so repairs interleave
with foreground reads and writes instead of blocking them.  A repair that
is not yet possible -- e.g. no tag is held by ``d`` survivors because
``write-to-L2`` offloads are still in flight -- is retried after
``retry_interval`` (again through the rate limiter) up to ``max_attempts``
times.  When every shard of a failed node has been rebuilt the scheduler
reports the node recovered to the membership.

L1 failures need no repair: the LDS protocol tolerates up to ``f1`` edge
crashes natively and L1 state is temporary by design.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.membership import FAIL, FAILED, L2_ROLE, Membership, MembershipEvent
from repro.cluster.router import ObjectRouter, Shard
from repro.codes.base import RepairError
from repro.core.repair import BackendRepairCoordinator, L2RepairReport

#: Task states.
QUEUED = "queued"
SCHEDULED = "scheduled"
DONE = "done"
GAVE_UP = "gave-up"


@dataclass
class RepairTask:
    """One pending background repair: rebuild one L2 slot of one shard."""

    key: str
    node_id: str
    l2_index: int
    #: Earliest virtual time the repair may start (failure time + detection).
    ready_at: float
    #: Pool hosting the shard when the task was created.  A task whose
    #: shard has since moved pools (migration or replica failover) repairs
    #: nothing -- the degraded epoch is retired -- and gives up instead of
    #: poking the unrelated replacement shard.
    pool: Optional[str] = None
    scheduled_at: Optional[float] = None
    completed_at: Optional[float] = None
    attempts: int = 0
    status: str = QUEUED
    report: Optional[L2RepairReport] = None


@dataclass
class RepairStats:
    """Aggregate counters for the scheduler."""

    tasks_created: int = 0
    #: Tasks that booked a rate-limiter slot (a retry books again).
    dispatched: int = 0
    repairs_completed: int = 0
    repairs_skipped: int = 0
    retries: int = 0
    gave_up: int = 0
    total_download_fraction: float = 0.0


class RepairScheduler:
    """Schedules rate-limited background L2 repairs from failure events."""

    def __init__(self, router: ObjectRouter, *,
                 min_interval: float = 5.0, max_concurrent: int = 1,
                 detection_delay: float = 1.0, retry_interval: Optional[float] = None,
                 max_attempts: int = 8, slot_jitter: float = 0.0,
                 seed: Optional[int] = None,
                 membership: Optional[Membership] = None) -> None:
        if min_interval < 0 or detection_delay < 0 or slot_jitter < 0:
            raise ValueError("intervals must be non-negative")
        if max_concurrent < 1:
            raise ValueError("at least one concurrent repair slot is required")
        if max_attempts < 1:
            raise ValueError("at least one attempt is required")
        self.router = router
        self.min_interval = min_interval
        self.max_concurrent = max_concurrent
        self.detection_delay = detection_delay
        self.retry_interval = min_interval if retry_interval is None else retry_interval
        self.max_attempts = max_attempts
        #: Random extra delay in [0, slot_jitter) added to every assigned
        #: start time, de-synchronising repair waves from periodic
        #: foreground load.  Pass a seed to keep the global event order a
        #: pure function of it; with ``seed=None`` the jitter is genuinely
        #: random and runs are not reproducible.
        self.slot_jitter = slot_jitter
        self._rng = random.Random(seed)
        #: Next-free time of each rate-limiter slot (shared virtual timeline).
        self._slots: List[float] = [0.0] * max_concurrent
        self.tasks: List[RepairTask] = []
        #: node_id -> number of shard repairs still outstanding.
        self._outstanding: Dict[str, int] = {}
        self.stats = RepairStats()
        self.membership = membership if membership is not None else router.membership
        self.membership.subscribe(self._on_event)
        # A shard lazily created on a pool with failed nodes starts degraded
        # (the router crashes the slot at build time); it needs its own
        # repair tasks or it would stay degraded forever while the node is
        # eventually reported recovered.
        router.shard_created_hooks.append(self._on_shard_created)

    # -- event intake -----------------------------------------------------------

    def _on_event(self, event: MembershipEvent) -> None:
        if event.kind != FAIL or event.node.role != L2_ROLE:
            return
        self.schedule_node_repairs(event.node.node_id, event.node.pool,
                                   event.node.index, failed_at=event.time)

    def schedule_node_repairs(self, node_id: str, pool: str, l2_index: int,
                              failed_at: float = 0.0) -> List[RepairTask]:
        """Queue one repair per live shard on ``pool`` for the failed slot."""
        shards = self.router.shards_on_pool(pool)
        created: List[RepairTask] = []
        for shard in shards:
            task = RepairTask(key=shard.key, node_id=node_id, l2_index=l2_index,
                              ready_at=failed_at + self.detection_delay,
                              pool=shard.pool)
            self.tasks.append(task)
            created.append(task)
            self.stats.tasks_created += 1
        self._outstanding[node_id] = self._outstanding.get(node_id, 0) + len(created)
        for task in created:
            self._dispatch(task)
        if not created:
            # No shards to repair: the node is immediately whole again.
            self._outstanding.pop(node_id, None)
            self._recover_if_failed(node_id, failed_at)
        return created

    def _on_shard_created(self, shard: Shard) -> None:
        """Queue repairs for a shard born degraded on a partially failed pool."""
        for node in self.membership.failed_nodes(shard.pool):
            if node.role != L2_ROLE:
                continue
            task = RepairTask(
                key=shard.key, node_id=node.node_id, l2_index=node.index,
                ready_at=self.router.shard_now(shard) + self.detection_delay,
                pool=shard.pool,
            )
            self.tasks.append(task)
            self.stats.tasks_created += 1
            self._outstanding[node.node_id] = (
                self._outstanding.get(node.node_id, 0) + 1
            )
            self._dispatch(task)

    # -- rate limiting ------------------------------------------------------------

    def _dispatch(self, task: RepairTask) -> None:
        """Assign the earliest rate-limiter slot at or after ``ready_at``.

        Tasks already known doomed -- no shard, shard moved pools, or the
        whole pool dead -- give up *before* booking a rate-limiter slot,
        or each dead task would push every later (viable) repair's start
        time out by ``min_interval``.  The same conditions are re-checked
        at execution time because they can also become true afterwards.
        """
        shard = self.router.shards.get(task.key)
        if shard is None or (task.pool is not None
                             and shard.pool != task.pool) \
                or not self.membership.pool_alive(shard.pool):
            task.status = GAVE_UP
            self.stats.gave_up += 1
            self._task_finished(task)
            return
        slot_index = min(range(len(self._slots)), key=lambda i: self._slots[i])
        start = max(task.ready_at, self._slots[slot_index])
        if self.slot_jitter > 0:
            start += self._rng.uniform(0.0, self.slot_jitter)
        self._slots[slot_index] = start + self.min_interval
        task.scheduled_at = start
        task.status = SCHEDULED
        self.stats.dispatched += 1
        self.router.schedule_on_shard(shard, start, lambda: self._execute(task))

    # -- execution -------------------------------------------------------------------

    def _execute(self, task: RepairTask) -> None:
        if task.status in (DONE, GAVE_UP):
            # Terminated between scheduling and execution (e.g. withheld
            # by an availability drill): the booked slot fires into a task
            # that no longer exists.
            return
        shard = self.router.shards.get(task.key)
        if shard is None:  # migrated away since scheduling
            task.status = GAVE_UP
            self.stats.gave_up += 1
            self._task_finished(task)
            return
        if task.pool is not None and shard.pool != task.pool:
            # The shard moved pools (migration, or a replica-group failover
            # retired the degraded epoch): the replacement shard does not
            # host the failed slot, so there is nothing left to repair.
            task.status = GAVE_UP
            self.stats.gave_up += 1
            self._task_finished(task)
            return
        if not self.membership.pool_alive(shard.pool):
            # In-pool regeneration needs live helper slots; a fully dead
            # pool has none.  With replica groups the coordinator fails the
            # shard over instead; either way this task cannot succeed.
            task.status = GAVE_UP
            self.stats.gave_up += 1
            self._task_finished(task)
            return
        server = shard.system.l2_servers[task.l2_index]
        if not server.crashed:
            # Already whole (e.g. the shard migrated to a fresh epoch and
            # back, or a concurrent repair beat us to it): nothing to do.
            task.status = DONE
            task.completed_at = self.router.shard_now(shard)
            self.stats.repairs_skipped += 1
            self._task_finished(task)
            return
        coordinator = BackendRepairCoordinator(shard.system)
        task.attempts += 1
        try:
            report = coordinator.repair(task.l2_index)
        except RepairError:
            if task.attempts >= self.max_attempts:
                task.status = GAVE_UP
                self.stats.gave_up += 1
                self._task_finished(task)
                return
            # Not repairable yet (e.g. offloads still in flight): go back
            # through the rate limiter after a back-off.
            self.stats.retries += 1
            task.ready_at = self.router.shard_now(shard) + self.retry_interval
            self._dispatch(task)
            return
        task.status = DONE
        task.report = report
        task.completed_at = self.router.shard_now(shard)
        self.stats.repairs_completed += 1
        self.stats.total_download_fraction += report.download_fraction
        self._task_finished(task)

    def _task_finished(self, task: RepairTask) -> None:
        remaining = self._outstanding.get(task.node_id)
        if remaining is None:
            return
        remaining -= 1
        if remaining > 0:
            self._outstanding[task.node_id] = remaining
            return
        del self._outstanding[task.node_id]
        # Every shard of the node has been handled; report recovery unless
        # some repair permanently failed.
        if all(t.status == DONE for t in self.tasks if t.node_id == task.node_id):
            shard = self.router.shards.get(task.key)
            now = (self.router.shard_now(shard) if shard is not None
                   else task.ready_at)
            self._recover_if_failed(task.node_id, now)

    def _recover_if_failed(self, node_id: str, time: float) -> None:
        """Report recovery, tolerating nodes that left (or already recovered)
        while their repairs were in flight."""
        try:
            node = self.membership.node(node_id)
        except KeyError:
            return
        if node.status != FAILED:
            return
        if not self.membership.pool_alive(node.pool):
            # The whole pool is down (a correlated kill): its nodes are not
            # "whole again" just because no shard data needed rebuilding.
            # Bringing a dead pool back is an administrative action (or, with
            # replica groups, the failover path replaces it entirely).
            return
        self.membership.recover(node_id, time=time)

    # -- inspection -------------------------------------------------------------------

    def scheduled_times(self) -> List[float]:
        """Start times assigned by the rate limiter, in ascending order."""
        return sorted(task.scheduled_at for task in self.tasks
                      if task.scheduled_at is not None)

    def outstanding_repairs(self) -> int:
        """Repairs queued or scheduled but not finished."""
        return sum(1 for task in self.tasks if task.status in (QUEUED, SCHEDULED))

    def pending_slots(self) -> set:
        """``(key, l2_index)`` of every slot with a repair still in flight.

        The availability monitor uses this to tell a *protected* hole (a
        missing fragment the repair pipeline already knows about) from a
        silent one -- the latter is the alarm condition."""
        return {(task.key, task.l2_index) for task in self.tasks
                if task.status in (QUEUED, SCHEDULED)}

    def withhold_node(self, node_id: str) -> List[RepairTask]:
        """Abandon every unfinished repair for ``node_id`` (fault drill).

        Marks the tasks gave-up immediately -- their booked rate-limiter
        slots fire into nothing -- modelling a repair pipeline that
        silently stops serving one failed node.  Used by
        ``inject_withheld_repair`` to prove the sampling availability
        monitor notices holes the repair backlog no longer covers."""
        withheld: List[RepairTask] = []
        for task in self.tasks:
            if task.node_id == node_id and task.status in (QUEUED, SCHEDULED):
                task.status = GAVE_UP
                self.stats.gave_up += 1
                withheld.append(task)
        # Settle the node's outstanding count through the normal finish
        # path (it will not report recovery: the tasks are not DONE).
        for task in withheld:
            self._task_finished(task)
        return withheld

    def reports(self) -> List[Tuple[str, L2RepairReport]]:
        """(key, report) for every completed repair."""
        return [(task.key, task.report) for task in self.tasks
                if task.report is not None]


__all__ = ["RepairScheduler", "RepairTask", "RepairStats",
           "QUEUED", "SCHEDULED", "DONE", "GAVE_UP"]
