"""The sharded-cluster facade: membership + router + repair, pre-wired.

:class:`ShardedCluster` is the one-stop entry point for scale-out
experiments: it builds a :class:`~repro.cluster.membership.Membership`
with one full node set per named pool, an
:class:`~repro.cluster.router.ObjectRouter` over it, and a
:class:`~repro.cluster.repair.RepairScheduler` subscribed to failures --
then exposes the small driving surface the examples and benchmarks use
(keyed reads/writes, node failure injection, pool join/leave with
automatic rebalancing, and cluster-wide inspection helpers).
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Callable, Dict, List, Optional, Union

from repro.cluster.membership import ClusterNode, Membership, MembershipEvent
from repro.cluster.placement import RebalancePlan
from repro.cluster.repair import RepairScheduler
from repro.cluster.replicas import (
    ReadRoutingPolicy,
    ReplicaCoordinator,
    ReplicationConfig,
)
from repro.cluster.ring import derive_seed
from repro.cluster.router import ObjectRouter, RouterStats
from repro.consistency.linearizability import AtomicityViolation
from repro.core.config import LDSConfig
from repro.core.results import OperationResult
from repro.net.latency import BoundedLatencyModel, LatencyModel, ScaledLatencyModel


def seeded_latency_factory(seed, regime=None) -> Callable[[str, str], LatencyModel]:
    """The canonical seeded per-shard latency factory.

    Every (pool, key) pair gets a :class:`BoundedLatencyModel` whose seed
    derives from the root seed, so one root seed fixes every latency draw
    in the cluster.  With a :class:`~repro.net.latency.LatencyRegime`, each
    model is wrapped so scenario scripts can shift the whole cluster's
    latency at once.  Shared by :class:`ShardedCluster` and
    :class:`~repro.sim.harness.ClusterSimulation` so the derivation scheme
    cannot drift between entry points.
    """
    def factory(pool: str, key: str) -> LatencyModel:
        base = BoundedLatencyModel(seed=derive_seed(seed, "latency", pool, key))
        if regime is None:
            return base
        return ScaledLatencyModel(base, regime)

    return factory


class ShardedCluster:
    """A multi-pool, multi-object LDS deployment with background repair."""

    def __init__(self, config: LDSConfig, pool_names: List[str], *,
                 vnodes: int = 128,
                 writers_per_shard: int = 1, readers_per_shard: int = 1,
                 latency_factory: Optional[Callable[[str, str], LatencyModel]] = None,
                 repair_min_interval: float = 5.0,
                 repair_max_concurrent: int = 1,
                 repair_detection_delay: float = 1.0,
                 repair_slot_jitter: float = 0.0,
                 seed: Optional[int] = None,
                 replication: Optional[ReplicationConfig] = None,
                 read_policy: Union[str, ReadRoutingPolicy] = "primary",
                 telemetry=None) -> None:
        if not pool_names:
            raise ValueError("a cluster needs at least one pool")
        self.config = config
        #: Root RNG seed.  Every stochastic component (per-shard latency
        #: models, repair jitter) derives its own seed from it, so one seed
        #: fixes the entire global event order.
        self.seed = seed
        self.membership = Membership.for_pools(pool_names, n1=config.n1,
                                               n2=config.n2, vnodes=vnodes)
        if latency_factory is None and seed is not None:
            latency_factory = seeded_latency_factory(seed)
        if replication is not None and seed is not None \
                and replication.seed is None:
            # Thread the root seed into replica distances / lag jitter
            # unless the caller pinned one explicitly.
            replication = dc_replace(replication,
                                     seed=derive_seed(seed, "replicas"))
        self.router = ObjectRouter(
            config, self.membership,
            writers_per_shard=writers_per_shard,
            readers_per_shard=readers_per_shard,
            latency_factory=latency_factory,
            replication=replication,
            read_policy=read_policy,
            telemetry=telemetry,
        )
        self.repair = RepairScheduler(
            self.router,
            min_interval=repair_min_interval,
            max_concurrent=repair_max_concurrent,
            detection_delay=repair_detection_delay,
            slot_jitter=repair_slot_jitter,
            seed=None if seed is None else derive_seed(seed, "repair"),
        )

    # -- global kernel -----------------------------------------------------------

    @property
    def kernel(self):
        """The attached :class:`~repro.sim.kernel.GlobalScheduler` (or None)."""
        return self.router.kernel

    def attach_kernel(self, kernel) -> None:
        """Drive the whole cluster from one global clock (see ObjectRouter)."""
        self.router.attach_kernel(kernel)

    # -- driving ------------------------------------------------------------------

    def write(self, key: str, value: bytes,
              writer: Union[int, str] = 0) -> OperationResult:
        return self.router.write(key, value, writer=writer)

    def read(self, key: str, reader: Union[int, str] = 0) -> OperationResult:
        return self.router.read(key, reader=reader)

    def invoke_write(self, key: str, value: bytes, writer: Union[int, str] = 0,
                     at: Optional[float] = None,
                     session: Optional[str] = None,
                     via: Optional[str] = None) -> str:
        return self.router.invoke_write(key, value, writer=writer, at=at,
                                        session=session, via=via)

    def invoke_read(self, key: str, reader: Union[int, str] = 0,
                    at: Optional[float] = None,
                    session: Optional[str] = None) -> str:
        return self.router.invoke_read(key, reader=reader, at=at,
                                       session=session)

    def flush_key(self, key: str) -> int:
        return self.router.flush_key(key)

    def check_workload_clients(self, workload) -> None:
        self.router.check_workload_clients(workload)

    def add_workload(self, workload, start: float = 0.0, on_handle=None) -> int:
        """Kernel mode only: schedule the workload as arrival events."""
        return self.router.add_workload(workload, start=start,
                                        on_handle=on_handle)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        self.router.run_until_idle(max_events=max_events)

    # -- membership operations ---------------------------------------------------------

    @property
    def replicas(self) -> Optional[ReplicaCoordinator]:
        """The replica-group coordinator (None when replication is off)."""
        return self.router.replicas

    def fail_node(self, node_id: str, time: float = 0.0) -> MembershipEvent:
        """Crash one pool node; the repair scheduler takes it from there."""
        return self.membership.fail(node_id, time=time)

    def fail_pool(self, pool: str, time: float = 0.0) -> List[MembershipEvent]:
        """Crash every alive node of a pool (correlated pool loss).

        The kill is atomic at the membership level (every listener sees
        the pool already down); with replica groups that is the signal
        driving primary failover and follower re-provisioning (see
        :mod:`repro.cluster.replicas`).  Without replicas the pool's
        shards simply stall until an administrator migrates them away.
        """
        return self.membership.fail_pool(pool, time=time)

    def add_pool(self, pool: str, time: float = 0.0,
                 weight: float = 1.0) -> RebalancePlan:
        """Join a new pool (full node set) and rebalance onto it."""
        self.membership.join_pool(pool, n1=self.config.n1, n2=self.config.n2,
                                  weight=weight, time=time)
        return self.router.rebalance(reason=f"join {pool}", time=time)

    def remove_pool(self, pool: str, time: float = 0.0) -> RebalancePlan:
        """Drain a pool out of the ring and migrate its shards away."""
        self.membership.leave_pool(pool, time=time)
        return self.router.rebalance(reason=f"leave {pool}", time=time)

    def node(self, node_id: str) -> ClusterNode:
        return self.membership.node(node_id)

    # -- inspection ---------------------------------------------------------------------

    def check_atomicity(self) -> Optional[AtomicityViolation]:
        """Per-object (per-epoch) atomicity over everything recorded so far."""
        return self.router.check_atomicity()

    def history(self, global_clock: bool = False):
        """The merged (id-qualified) history across all shards and epochs."""
        return self.router.history(global_clock=global_clock)

    def operation_cost(self, handle: str) -> float:
        return self.router.operation_cost(handle)

    def shard_counts(self) -> Dict[str, int]:
        return self.router.shard_counts()

    def storage_by_pool(self) -> Dict[str, float]:
        return self.router.storage_by_pool()

    @property
    def communication_cost(self) -> float:
        return self.router.communication_cost

    @property
    def router_stats(self) -> RouterStats:
        return self.router.stats

    def describe(self) -> str:
        """One-line cluster summary."""
        return (
            f"ShardedCluster(pools={len(self.membership.pools)}, "
            f"shards={len(self.router.shards)}, {self.config.describe()})"
        )


__all__ = ["ShardedCluster"]
