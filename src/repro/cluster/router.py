"""The object router: one ``write/read`` front-end over many LDS shards.

:class:`ObjectRouter` exposes the same driving API style as
:class:`~repro.core.system.LDSSystem` -- ``invoke_write`` / ``invoke_read``
/ ``run_until_idle`` / ``history`` / ``operation_cost`` -- but keyed by
*object key*.  Each key is placed on a server pool by the membership's
consistent-hash ring, and the router lazily instantiates one full LDS
deployment (an :class:`LDSSystem` with its own
:class:`~repro.net.simulator.Simulator`) per key on that pool, exactly the
way :class:`~repro.core.multi_object.MultiObjectSystem` drives independent
instances over a shared virtual timeline.

Operations are *batched per shard*: invocations are queued on the target
shard and injected into its simulator in one pass per flush, so a workload
touching thousands of keys performs one dispatch walk per shard instead of
one per operation.  ``run_until_idle`` flushes automatically.

Two execution backends drive the shards:

* **legacy (default)** -- ``run_until_idle`` flushes every batch and runs
  each shard's simulator to quiescence sequentially; shard clocks are
  independent and cross-shard timing is not modelled;
* **global kernel** -- after :meth:`ObjectRouter.attach_kernel`, every
  shard simulator is registered as an event source of a
  :class:`~repro.sim.kernel.GlobalScheduler` and ``run_until_idle``
  delegates to the kernel's merged event pump, so operations, repairs and
  migrations on different shards interleave on one monotonic global
  clock.  Each shard's registration offset maps its local clock onto the
  global one; :meth:`shard_now` / :meth:`schedule_on_shard` let
  cluster-level components (the repair scheduler, scenario engines) speak
  global time without knowing the mapping.

Failures and rebalancing:

* when the membership reports a node **failure**, the router crashes the
  corresponding server slot (same layer, same index) in every shard hosted
  on that pool; repair is *not* inline -- it is the job of the
  :class:`~repro.cluster.repair.RepairScheduler`;
* when a pool **joins or leaves** the ring, the router computes a
  deterministic :class:`~repro.cluster.placement.RebalancePlan` over its
  tracked keys and (on :meth:`rebalance`) migrates each moved shard: the
  source shard is drained, its current value is fetched with a real
  protocol read (the migration copy), and a fresh instance is started on
  the target pool seeded with that value.  Every migration starts a new
  *epoch* for the key; atomicity is checked per epoch (the carried value
  is the new epoch's legitimate initial value), and the drain barrier
  guarantees the real-time order between epochs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace as dc_replace
from typing import Callable, Dict, List, Optional, Union

from repro.cluster.membership import FAIL, L1_ROLE, Membership, MembershipEvent
from repro.cluster.placement import (
    RebalancePlan,
    ShardMove,
    diff_placements,
    diff_replica_placements,
)
from repro.cluster.replicas import (
    ReadRoutingPolicy,
    ReplicaCoordinator,
    ReplicationConfig,
)
from repro.cluster.ring import RingBalance, stable_hash
from repro.consistency.history import History, READ, WRITE
from repro.consistency.linearizability import (
    AtomicityViolation,
    check_atomicity_by_tags,
)
from repro.consistency.sessions import join_object_id
from repro.core.config import LDSConfig
from repro.core.results import OperationResult
from repro.core.system import LDSSystem
from repro.net.latency import BoundedLatencyModel, LatencyModel
from repro.obs.registry import MetricsRegistry


@dataclass
class _PendingOp:
    """One queued (not yet injected) operation on a shard."""

    handle: str
    kind: str
    client: Union[int, str]
    at: Optional[float]
    value: Optional[bytes] = None
    #: Logical cross-shard client session (see repro.consistency.sessions).
    session: Optional[str] = None


@dataclass
class Shard:
    """A live LDS instance serving one object key on one pool."""

    key: str
    pool: str
    epoch: int
    system: LDSSystem
    pending: List[_PendingOp] = field(default_factory=list)
    #: Histories of previous epochs (pre-migration), oldest first.
    retired_histories: List[History] = field(default_factory=list)
    #: Monotone offset mapping nominal workload times onto the shard clock
    #: (grows when a batch arrives after its nominal window already passed).
    time_shift: float = 0.0

    @property
    def object_id(self) -> str:
        return self.system.object_id


class RouterStats:
    """Counters describing the router's batching, migration and (with
    replica groups) read-routing activity.

    Since the observability PR this is a *thin attribute view over the
    metrics registry* (:mod:`repro.obs.registry`): every counter lives as
    a ``router_*`` instrument on ``registry`` -- the shared telemetry
    registry when the cluster runs with one, a private registry otherwise
    -- so all router counters export through the registry's single
    collect/to_dict path.  The historical attribute API is preserved
    exactly: scalar counters read and assign like plain ints (``stats.
    arrivals += 1``), and the dict-shaped series (``reads_by_replica``,
    ``quorum_depths``) read as plain dicts and accept whole-dict
    assignment, backed by labeled counter families.

    Scalar counters (all monotone unless noted):

    * ``batches_flushed`` / ``operations_flushed`` / ``largest_batch``
      (a high-water gauge) / ``migrations``;
    * ``arrivals`` -- operations injected through kernel arrival events;
    * ``primary_reads`` -- reads routed to a group's primary (includes
      session-guard fallbacks and post-failover flushes); ``follower_reads``
      -- reads routed to follower stores.  Both count at dispatch time: a
      read stranded by a crash mid-flight stays counted as routed;
    * ``session_fallbacks`` -- follower choices overridden to the primary
      by the session guard; ``retired_fallbacks`` -- policy choices naming
      a pool without a live store, rerouted like a session fallback but
      counted apart so stale-policy behaviour is visible;
    * ``failover_deferrals`` -- primary-bound reads queued behind an
      in-progress failover;
    * ``quorum_reads`` -- reads resolved by quorum fan-out (each counts
      once however many legs it queried); ``read_repairs`` -- lagging
      stores caught up by quorum-merge read repair;
    * ``forwarded_writes`` -- writes that arrived at a non-primary pool
      and were forwarded (one hop on the kernel clock);
    * ``policy_choices`` / ``policy_honored`` -- reads for which the
      routing policy expressed a concrete choice / ... that the chosen
      replica actually served.

    Labeled families:

    * ``reads_by_replica`` -- reads routed per pool (primary and follower
      routes combined);
    * ``quorum_depths`` -- merged responses per quorum read (legs whose
      store died mid-flight never answer, so depth < read_quorum marks a
      degraded merge).
    """

    #: attribute name -> (metric suffix, gauge?) for the scalar counters.
    _SCALARS = {
        "batches_flushed": ("router_batches_flushed", False),
        "operations_flushed": ("router_operations_flushed", False),
        "largest_batch": ("router_largest_batch", True),
        "migrations": ("router_migrations", False),
        "arrivals": ("router_arrivals", False),
        "primary_reads": ("router_primary_reads", False),
        "follower_reads": ("router_follower_reads", False),
        "session_fallbacks": ("router_session_fallbacks", False),
        "retired_fallbacks": ("router_retired_fallbacks", False),
        "failover_deferrals": ("router_failover_deferrals", False),
        "quorum_reads": ("router_quorum_reads", False),
        "read_repairs": ("router_read_repairs", False),
        "forwarded_writes": ("router_forwarded_writes", False),
        "policy_choices": ("router_policy_choices", False),
        "policy_honored": ("router_policy_honored", False),
    }

    def __init__(self, registry=None) -> None:
        if registry is None:
            registry = MetricsRegistry()
        self._registry = registry
        self._scalars = {}
        for attr, (metric, is_gauge) in self._SCALARS.items():
            make = registry.gauge if is_gauge else registry.counter
            self._scalars[attr] = make(metric)
        self._reads_by_replica = registry.counter(
            "router_reads_by_replica", labels=("pool",))
        self._quorum_depths = registry.counter(
            "router_quorum_depth", labels=("depth",))

    @property
    def registry(self):
        """The :class:`MetricsRegistry` the counters live on."""
        return self._registry

    # -- labeled families ---------------------------------------------------------

    @property
    def reads_by_replica(self) -> Dict[str, int]:
        return self._reads_by_replica.as_dict()

    @reads_by_replica.setter
    def reads_by_replica(self, mapping: Dict[str, int]) -> None:
        self._reads_by_replica.set_values(mapping)

    def count_replica_read(self, pool: str, amount: int = 1) -> None:
        """Count a read routed to ``pool`` (the hot-path increment)."""
        self._reads_by_replica.labels(pool=pool).inc(amount)

    @property
    def quorum_depths(self) -> Dict[int, int]:
        return self._quorum_depths.as_dict()

    @quorum_depths.setter
    def quorum_depths(self, mapping: Dict[int, int]) -> None:
        self._quorum_depths.set_values(mapping)

    def observe_quorum_depth(self, depth: int) -> None:
        """Count one quorum merge that gathered ``depth`` responses."""
        self._quorum_depths.labels(depth=depth).inc()

    # -- derived ------------------------------------------------------------------

    @property
    def mean_batch_size(self) -> float:
        if not self.batches_flushed:
            return 0.0
        return self.operations_flushed / self.batches_flushed

    @property
    def routed_reads(self) -> int:
        """Reads that went through the replica-group read router."""
        return self.primary_reads + self.follower_reads + self.quorum_reads

    @property
    def follower_read_fraction(self) -> float:
        """Share of routed reads served by followers (0.0 without replicas)."""
        routed = self.routed_reads
        return self.follower_reads / routed if routed else 0.0

    @property
    def policy_hit_rate(self) -> float:
        """Fraction of policy choices that were honored (not overridden)."""
        if not self.policy_choices:
            return 0.0
        return self.policy_honored / self.policy_choices

    def as_dict(self) -> Dict[str, object]:
        """A plain-dict snapshot of every counter (benchmarks, reports)."""
        out: Dict[str, object] = {attr: getattr(self, attr)
                                  for attr in self._SCALARS}
        out["reads_by_replica"] = self.reads_by_replica
        out["quorum_depths"] = self.quorum_depths
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        scalars = ", ".join(f"{attr}={getattr(self, attr)}"
                            for attr in self._SCALARS)
        return f"RouterStats({scalars})"


def _scalar_view(attr: str) -> property:
    """An int-like property over one of RouterStats' registry instruments."""
    def getter(self):
        return self._scalars[attr].value

    def setter(self, value):
        # Assignment semantics (``stats.arrivals += 1`` and test seeding
        # both come through here): overwrite, don't re-add.
        self._scalars[attr]._set(value)

    return property(getter, setter)


for _attr in RouterStats._SCALARS:
    setattr(RouterStats, _attr, _scalar_view(_attr))
del _attr


def _object_id(key: str, epoch: int) -> str:
    return join_object_id(key, epoch)


#: Sentinel epoch marking a handle owned by the replica read router
#: (a follower-served or failover-deferred read with no LDS op id).
REPLICA_EPOCH = "replica"


#: Keys must not end in the router's own epoch suffix, or merged-history
#: object ids would be ambiguous (key 'a@e2' vs epoch 2 of key 'a') and the
#: session auditor's (key, epoch) parsing would fold unrelated keys together.
_EPOCH_SUFFIX_RE = re.compile(r"@e\d+$")


class ObjectRouter:
    """Routes keyed read/write operations to per-shard LDS instances."""

    def __init__(self, config: LDSConfig, membership: Membership, *,
                 writers_per_shard: int = 1, readers_per_shard: int = 1,
                 latency_factory: Optional[Callable[[str, str], LatencyModel]] = None,
                 encode_cache_size: int = 64,
                 replication: Optional[ReplicationConfig] = None,
                 read_policy: Union[str, ReadRoutingPolicy] = "primary",
                 telemetry=None) -> None:
        if writers_per_shard < 1 or readers_per_shard < 1:
            raise ValueError("each shard needs at least one writer and one reader "
                             "(reads also implement shard migration)")
        self.config = config
        self.membership = membership
        self.writers_per_shard = writers_per_shard
        self.readers_per_shard = readers_per_shard
        self.encode_cache_size = encode_cache_size
        if latency_factory is None:
            latency_factory = lambda pool, key: BoundedLatencyModel(
                seed=stable_hash(f"{pool}:{key}") & 0xFFFFFFFF
            )
        self._latency_factory = latency_factory
        self._shards: Dict[str, Shard] = {}
        #: handle -> (key, epoch, lds op id); the op id is None until flushed.
        self._handles: Dict[str, List] = {}
        self._handle_counter = 0
        #: results / costs / histories of retired (migrated-away) epochs.
        self._archived_results: Dict[tuple, Dict[str, OperationResult]] = {}
        self._archived_costs: Dict[tuple, Dict[str, float]] = {}
        self._retired_comm_cost = 0.0
        #: (object_id, op_id) of internal migration-copy reads; excluded
        #: from the merged history so workload statistics only count
        #: foreground operations.
        self._internal_ops: set = set()
        #: (object_id, op_id) -> session id.  Sessions are a *cluster-level*
        #: identity (one logical client spanning keys, shards and epochs);
        #: the per-shard systems know nothing about them, so the router
        #: records the mapping at flush time and re-attaches it when
        #: histories are merged.
        self._op_sessions: Dict[tuple, str] = {}
        #: Callbacks invoked for every newly built shard (the repair
        #: scheduler uses this to cover shards born on degraded pools).
        self.shard_created_hooks: List[Callable[[Shard], None]] = []
        #: Pure observers of completed operations, fired as
        #: ``observer(shard, result)`` for primary-shard completions and
        #: ``observer(None, operation)`` for replica-served reads (the
        #: latter already in merged global-clock form).  The live-audit
        #: probe subscribes here; observers must never mutate the
        #: cluster.  Register before the first shard is built -- shards
        #: only install the completion hook when a consumer exists.
        self.operation_observers: List[Callable] = []
        #: The :class:`~repro.obs.telemetry.Telemetry` facade, or None.
        #: Stats always register on its registry when present, so every
        #: router counter exports through the one telemetry path.
        self.telemetry = telemetry
        #: The span sink: the trace recorder, the latency tracker, or a
        #: fanout over both -- all present the same four-method surface.
        self._trace = telemetry.op_sink() if telemetry is not None else None
        self.stats = RouterStats(
            registry=telemetry.registry if telemetry is not None else None
        )
        #: (object_id, op_id) -> handle, recorded at flush while tracing so
        #: shard completion hooks can close the right root span.
        self._op_handles: Dict[tuple, str] = {}
        #: Global simulation kernel, or None for the legacy per-shard loop.
        self._kernel = None
        #: object_id -> global-clock offset of its simulator (kept for
        #: retired epochs so their histories can still be mapped).
        self._kernel_offsets: Dict[str, float] = {}
        #: (time, key, source_pool, target_pool) per migration.  The time
        #: is global under the kernel; in legacy mode it is the retiring
        #: shard's *local* drain time (legacy shard clocks are mutually
        #: incomparable, so do not sort the log across shards there).
        self.migration_log: List[tuple] = []
        #: Replica-group coordinator (None when replication is off, i.e.
        #: r <= 1 -- the pre-replica single-copy behaviour, bit for bit).
        self.replicas: Optional[ReplicaCoordinator] = None
        if replication is not None and replication.r > 1:
            self.replicas = ReplicaCoordinator(self, replication,
                                               read_policy=read_policy)
        membership.subscribe(self._on_membership_event)

    # -- global kernel ---------------------------------------------------------

    @property
    def kernel(self):
        """The attached :class:`~repro.sim.kernel.GlobalScheduler` (or None)."""
        return self._kernel

    def attach_kernel(self, kernel) -> None:
        """Multiplex every shard (existing and future) onto a global clock.

        After attachment, :meth:`run_until_idle` pumps the kernel's merged
        event queue instead of looping shards to idle.  Detaching is not
        supported: the offsets woven into shard histories assume the global
        timeline stays in force.

        Attaching mid-flight anchors each live shard's *current* local time
        to the current global time, so pre-attach operations map to global
        times at or below the attach instant.  Epochs retired before the
        attach are stacked backwards behind their successor's start (each
        legacy epoch restarts its clock at 0, so only their real-time
        *order* is recoverable, which is exactly what the drain barrier
        guaranteed).
        """
        if self._kernel is not None:
            raise RuntimeError("a global kernel is already attached")
        self._kernel = kernel
        for key in sorted(self._shards):
            shard = self._shards[key]
            self._register_shard_source(shard)
            base = self._kernel_offsets[shard.object_id]
            for epoch in range(shard.epoch - 1, -1, -1):
                history = shard.retired_histories[epoch]
                end = max((op.responded_at if op.responded_at is not None
                           else op.invoked_at for op in history), default=0.0)
                base -= end
                self._kernel_offsets[_object_id(key, epoch)] = base

    def _register_shard_source(self, shard: Shard,
                               offset: Optional[float] = None) -> None:
        source = self._kernel.register_simulator(
            shard.system.simulator, name=f"shard:{shard.object_id}",
            offset=offset,
        )
        self._kernel_offsets[shard.object_id] = source.offset
        # Workload times are global under the kernel; seed the shard's
        # nominal->local mapping with the registration offset so a batch
        # scheduled at global t lands at local t - offset.
        shard.time_shift = -source.offset

    def _offset(self, shard: Shard) -> float:
        if self._kernel is None:
            return 0.0
        return self._kernel_offsets.get(shard.object_id, 0.0)

    def shard_now(self, shard: Shard) -> float:
        """The shard's clock on the global timeline (local time in legacy mode)."""
        return shard.system.simulator.now + self._offset(shard)  # simlint: disable=SD03 -- this *is* the sanctioned accessor

    def schedule_on_shard(self, shard: Shard, at: float, callback) -> None:
        """Schedule a callback on a shard at global time ``at`` (clamped to
        the shard's clock when ``at`` already passed)."""
        simulator = shard.system.simulator
        local = max(at - self._offset(shard), simulator.now)
        if local > at - self._offset(shard) and self._kernel is not None:
            sanitizer = self._kernel.sanitizer
            if sanitizer is not None:
                sanitizer.note_clamp(
                    "shard", f"shard:{shard.object_id}",
                    requested=at, effective=local + self._offset(shard))
        simulator.schedule_at(local, callback)

    # -- shard management -----------------------------------------------------

    @property
    def shards(self) -> Dict[str, Shard]:
        return dict(self._shards)

    def shard(self, key: str) -> Shard:
        """The shard serving ``key``, created on first use."""
        existing = self._shards.get(key)
        if existing is not None:
            return existing
        if _EPOCH_SUFFIX_RE.search(key):
            raise ValueError(
                f"key {key!r} ends in the router's reserved epoch suffix "
                "('@e<n>', used to name migration epochs); rename the key"
            )
        pool = self.membership.pool_for(key)
        shard = self._build_shard(key, pool, epoch=0,
                                  initial_value=self.config.initial_value)
        self._shards[key] = shard
        if self._kernel is not None:
            self._register_shard_source(shard)
        if self.replicas is not None:
            self.replicas.ensure_group(key, shard)
        self._announce_shard(shard)
        return shard

    def ensure_shards(self, keys) -> None:
        """Eagerly instantiate shards for ``keys`` (e.g. before failure drills)."""
        for key in keys:
            self.shard(key)

    def _build_shard(self, key: str, pool: str, epoch: int,
                     initial_value: bytes) -> Shard:
        config = self.config
        if initial_value != config.initial_value:
            config = dc_replace(config, initial_value=initial_value)
        system = LDSSystem(
            config,
            num_writers=self.writers_per_shard,
            num_readers=self.readers_per_shard,
            latency_model=self._latency_factory(pool, key),
            object_id=_object_id(key, epoch),
            encode_cache_size=self.encode_cache_size,
        )
        shard = Shard(key=key, pool=pool, epoch=epoch, system=system)
        if self._trace is not None or self.operation_observers:
            # Pure observation: close root spans (and record the protocol
            # phase) and feed the completion observers when the shard
            # reports an operation complete.
            system.completion_hooks.append(
                lambda result, shard=shard: self._notify_completion(shard,
                                                                    result)
            )
        # A shard created while some of its pool's nodes are down must start
        # in the degraded state the pool is actually in.
        for node in self.membership.failed_nodes(pool):
            self._crash_slot(shard, node.role, node.index)
        return shard

    def _notify_completion(self, shard: Shard, result: OperationResult) -> None:
        """Fan one shard completion out to the trace and the observers."""
        if self._trace is not None:
            self._trace_completion(shard, result)
        for observer in self.operation_observers:
            observer(shard, result)

    def notify_replica_completion(self, operation) -> None:
        """Feed a replica-served read (already merged-form) to the observers."""
        for observer in self.operation_observers:
            observer(None, operation)

    def _trace_completion(self, shard: Shard, result: OperationResult) -> None:
        """Record the protocol phase and close the op's root span."""
        handle = self._op_handles.get((shard.object_id, result.op_id))
        if handle is None:
            # Internal traffic (migration copy reads) carries no handle.
            return
        offset = self._offset(shard)
        invoked = result.invoked_at + offset
        responded = result.responded_at + offset
        self._trace.child_span(
            handle, f"protocol-{result.kind}", "protocol", invoked, responded,
            args={"op_id": result.op_id, "epoch": shard.epoch,
                  "pool": shard.pool},
        )
        self._trace.end_op(handle, responded,
                           args={"kind": result.kind, "tag": str(result.tag)})

    def _announce_shard(self, shard: Shard) -> None:
        """Fire creation hooks once the shard is registered and routable."""
        for hook in list(self.shard_created_hooks):
            hook(shard)

    def shard_counts(self) -> Dict[str, int]:
        """Live shard count per pool (pools without shards included)."""
        counts = {pool: 0 for pool in self.membership.pools}
        for shard in self._shards.values():
            counts[shard.pool] = counts.get(shard.pool, 0) + 1
        return counts

    def shard_balance(self) -> RingBalance:
        """Balance statistics of the current shard placement."""
        return RingBalance.from_counts(self.shard_counts())

    def storage_by_pool(self) -> Dict[str, float]:
        """Total (L1 + L2) normalised storage cost hosted on each pool."""
        totals = {pool: 0.0 for pool in self.membership.pools}
        for shard in self._shards.values():
            storage = shard.system.storage
            totals[shard.pool] = (totals.get(shard.pool, 0.0)
                                  + storage.l1_cost + storage.l2_cost)
        return totals

    # -- invoking operations -----------------------------------------------------

    def _new_handle(self, key: str, epoch: int) -> str:
        self._handle_counter += 1
        handle = f"{key}/op-{self._handle_counter}"
        self._handles[handle] = [key, epoch, None]
        return handle

    def check_workload_clients(self, workload) -> None:
        """Reject a workload addressing more per-shard clients than exist.

        Catching this up front turns a bare ``IndexError`` at flush (or,
        under the kernel, at an arbitrary virtual arrival time) into an
        immediate, named error.  Duck-typed over anything iterable with
        ``operations`` carrying ``kind`` / ``client_index``.
        """
        for operation in workload.operations:
            limit = (self.writers_per_shard if operation.kind == WRITE
                     else self.readers_per_shard)
            if operation.client_index >= limit:
                kind = "writers" if operation.kind == WRITE else "readers"
                raise ValueError(
                    f"workload {workload.description!r} uses {operation.kind} "
                    f"client index {operation.client_index}, but each shard "
                    f"has only {limit} {kind}; raise writers_per_shard/"
                    f"readers_per_shard"
                )

    def invoke_write(self, key: str, value: bytes, writer: Union[int, str] = 0,
                     at: Optional[float] = None,
                     session: Optional[str] = None,
                     via: Optional[str] = None) -> str:
        """Queue a write on ``key``'s shard; returns an operation handle.

        ``session`` names the logical client session the operation belongs
        to; it is preserved end to end into the merged history's
        ``Operation.session`` field for cross-shard session auditing.

        With replica groups, ``via`` names the pool the write arrived at;
        a write arriving at a follower pool (explicitly, or because the
        configured ``write_ingress`` discipline routes it there) is
        forwarded to the primary with the forwarding hop charged on the
        kernel clock (see :mod:`repro.cluster.replicas`).
        """
        if via is not None and self.replicas is None:
            raise ValueError(
                "write ingress routing (via=...) needs replica groups; "
                "configure ReplicationConfig(r>1)"
            )
        if self.replicas is not None and (
                via is not None
                or self.replicas.config.write_ingress != "primary"):
            return self.replicas.invoke_write(key, value, writer=writer,
                                              at=at, session=session, via=via)
        return self._queue_write(key, value, writer=writer, at=at,
                                 session=session)

    def _queue_write(self, key: str, value: bytes,
                     writer: Union[int, str] = 0,
                     at: Optional[float] = None,
                     session: Optional[str] = None,
                     handle: Optional[str] = None) -> str:
        """Queue a write on the primary shard.

        ``handle`` re-points an existing replica-routed handle at the
        primary epoch (used when a forwarded write reaches the primary).
        """
        shard = self.shard(key)
        if handle is None:
            handle = self._new_handle(key, shard.epoch)
            if self._trace is not None:
                self._trace.begin_op(
                    handle, WRITE, key,
                    at if at is not None else self.shard_now(shard),
                    args={"writer": writer, "session": session},
                )
        else:
            self._handles[handle][1] = shard.epoch
        shard.pending.append(_PendingOp(handle=handle, kind=WRITE, client=writer,
                                        at=at, value=bytes(value),
                                        session=session))
        return handle

    def invoke_read(self, key: str, reader: Union[int, str] = 0,
                    at: Optional[float] = None,
                    session: Optional[str] = None) -> str:
        """Queue a read on ``key``'s shard; returns an operation handle.

        With replica groups enabled, the read first passes the coordinator's
        routing policy and may be served by a follower store instead of the
        primary's protocol read (see :mod:`repro.cluster.replicas`).
        """
        if self.replicas is not None:
            return self.replicas.invoke_read(key, reader=reader, at=at,
                                             session=session)
        return self._queue_read(key, reader=reader, at=at, session=session)

    def _queue_read(self, key: str, reader: Union[int, str] = 0,
                    at: Optional[float] = None,
                    session: Optional[str] = None,
                    handle: Optional[str] = None) -> str:
        """Queue a protocol read on the primary shard.

        ``handle`` re-points an existing replica-routed handle at the
        primary epoch (used for session-guard fallbacks and post-failover
        flushes of deferred reads).
        """
        shard = self.shard(key)
        if handle is None:
            handle = self._new_handle(key, shard.epoch)
            if self._trace is not None:
                self._trace.begin_op(
                    handle, READ, key,
                    at if at is not None else self.shard_now(shard),
                    args={"reader": reader, "session": session},
                )
        else:
            self._handles[handle][1] = shard.epoch
        shard.pending.append(_PendingOp(handle=handle, kind=READ, client=reader,
                                        at=at, session=session))
        return handle

    def _new_replica_handle(self, key: str) -> str:
        """A handle owned by the replica read router (no LDS op id yet)."""
        handle = self._new_handle(key, REPLICA_EPOCH)
        return handle

    # -- workload arrivals (kernel mode) ---------------------------------------------

    def add_workload(self, workload, start: float = 0.0,
                     on_handle=None) -> int:
        """Schedule a keyed workload's operations as kernel arrival events.

        This is the single implementation of arrival semantics, shared by
        :class:`~repro.sim.harness.ClusterSimulation` and the keyed
        workload runner.  Each operation is injected into its shard --
        creating the shard at that instant if the key is new -- when the
        global clock reaches ``start + operation.at``.  A window that
        already passed is shifted forward *uniformly* (preserving relative
        spacing, hence per-client well-formedness, exactly like the legacy
        batch ratchet).  Every arrival is stamped with the operation's
        session identity (``ScheduledOperation.session_id``), so merged
        histories carry the cross-shard client sessions the session
        auditor groups by.  ``on_handle(kind, handle)`` is invoked for
        every injected operation so callers can collect handles for cost
        reporting.  Returns the number of arrivals scheduled.
        """
        if self._kernel is None:
            raise RuntimeError(
                "add_workload schedules kernel arrival events; attach a "
                "GlobalScheduler first (or use KeyedWorkloadRunner's legacy "
                "batch path)"
            )
        self.check_workload_clients(workload)
        operations = workload.sorted_operations()
        # Validate before scheduling anything so a bad workload is
        # all-or-nothing instead of leaving stranded arrival events.
        for operation in operations:
            if operation.key is None:
                raise ValueError(
                    "the global kernel routes by key; every operation of the "
                    "workload must carry one"
                )
        if operations:
            start = max(start, self._kernel.now - operations[0].at)
        for operation in operations:
            # max() guards against floating-point rounding pushing the
            # earliest shifted arrival epsilon below the global clock.
            at = max(start + operation.at, self._kernel.now)
            self._kernel.schedule_at(
                at, lambda operation=operation, at=at:
                    self._arrive(operation, at, on_handle)
            )
        return len(operations)

    def _arrive(self, operation, at: float, on_handle=None) -> None:
        session = operation.session_id
        if operation.kind == WRITE:
            handle = self.invoke_write(operation.key, operation.value or b"",
                                       writer=operation.client_index, at=at,
                                       session=session)
        else:
            handle = self.invoke_read(operation.key,
                                      reader=operation.client_index, at=at,
                                      session=session)
        self.flush_key(operation.key)
        self.stats.arrivals += 1
        if on_handle is not None:
            on_handle(operation.kind, handle)

    # -- batching / execution ---------------------------------------------------------

    def _flush_shard(self, shard: Shard) -> int:
        """Inject the shard's queued operations into its simulator in one batch."""
        if not shard.pending:
            return 0
        if self.replicas is not None and self.replicas.frozen(shard.key):
            # The group is failing over: primary-bound operations stay
            # queued until the promoted epoch flushes them.
            return 0
        batch = sorted(shard.pending,
                       key=lambda op: op.at if op.at is not None else -1.0)
        shard.pending = []
        now = shard.system.simulator.now  # simlint: disable=SD03 -- batch ratchet reads the owned shard's local clock
        # A shard's clock only moves forward.  When a batch's nominal window
        # has already passed (e.g. a fresh workload on a shard that just ran
        # to quiescence), shift the *whole batch* forward uniformly: relative
        # spacing between operations -- and therefore per-client
        # well-formedness -- is preserved, unlike clamping each one to "now".
        nominal = [op.at for op in batch if op.at is not None]
        if nominal and min(nominal) + shard.time_shift < now:
            shard.time_shift = now - min(nominal)
        for op in batch:
            # max() guards against floating-point rounding pushing the
            # earliest shifted time epsilon below the shard clock.
            at = None if op.at is None else max(op.at + shard.time_shift, now)
            if op.kind == WRITE:
                op_id = shard.system.invoke_write(op.value, writer=op.client,
                                                  at=at)
            else:
                op_id = shard.system.invoke_read(reader=op.client, at=at)
            self._handles[op.handle][2] = op_id
            if op.session is not None:
                self._op_sessions[(shard.object_id, op_id)] = op.session
            if self._trace is not None:
                self._op_handles[(shard.object_id, op_id)] = op.handle
        self.stats.batches_flushed += 1
        self.stats.operations_flushed += len(batch)
        self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
        return len(batch)

    def flush(self) -> int:
        """Flush every shard's pending batch; returns operations injected."""
        return sum(self._flush_shard(shard) for shard in self._shards.values())

    def flush_key(self, key: str) -> int:
        """Flush one key's pending batch (used by kernel arrival events)."""
        shard = self._shards.get(key)
        return 0 if shard is None else self._flush_shard(shard)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Flush all batches, then run to quiescence.

        With a kernel attached this pumps the merged global event queue
        (cross-shard interleaving); otherwise it is the legacy loop running
        each shard's simulator to idle in turn.
        """
        self.flush()
        if self._kernel is not None:
            self._kernel.run_until_idle(max_events=max_events)
            return
        for shard in self._shards.values():
            shard.system.run_until_idle(max_events=max_events)

    # -- synchronous convenience API ------------------------------------------------

    def write(self, key: str, value: bytes,
              writer: Union[int, str] = 0) -> OperationResult:
        """Write ``key`` and run its shard until the write completes."""
        handle = self.invoke_write(key, value, writer=writer)
        return self._run_handle(handle)

    def read(self, key: str, reader: Union[int, str] = 0) -> OperationResult:
        """Read ``key`` and run its shard until the read completes."""
        handle = self.invoke_read(key, reader=reader)
        return self._run_handle(handle)

    def _run_handle(self, handle: str) -> OperationResult:
        key, _epoch, _ = self._handles[handle]
        shard = self._shards[key]
        self._flush_shard(shard)
        if self._kernel is None:
            op_id = self._handles[handle][2]
            return shard.system.run_until_complete(op_id)
        # Under the kernel, other shards' events must keep flowing while we
        # wait, so pump the merged queue instead of this shard alone.
        # Resolution goes through :meth:`result`, which also covers
        # follower-served and failover-deferred replica reads.
        executed = 0
        while True:
            found = self.result(handle)
            if found is not None:
                return found
            if not self._kernel.step():
                raise RuntimeError(
                    f"operation {handle} did not complete (global queue empty)"
                )
            executed += 1
            if executed > 10_000_000:
                raise RuntimeError(
                    f"operation {handle} did not complete within the event budget"
                )

    # -- results and costs ---------------------------------------------------------------

    def result(self, handle: str) -> Optional[OperationResult]:
        """The completed result behind a handle, or None if still pending."""
        key, epoch, op_id = self._resolve(handle)
        if epoch == REPLICA_EPOCH:
            return self.replicas.result(handle)
        if op_id is None:
            return None
        shard = self._shards.get(key)
        if shard is not None and shard.epoch == epoch:
            found = shard.system.results.get(op_id)
            if found is not None:
                return found
        return self._archived_results.get((key, epoch), {}).get(op_id)

    def _resolve(self, handle: str) -> tuple:
        entry = self._handles.get(handle)
        if entry is None:
            raise KeyError(f"unknown operation handle {handle!r}")
        return entry[0], entry[1], entry[2]

    def operation_cost(self, handle: str) -> float:
        """Normalised communication cost attributed to one routed operation."""
        key, epoch, op_id = self._resolve(handle)
        if epoch == REPLICA_EPOCH:
            return self.replicas.operation_cost(handle)
        if op_id is None:
            return 0.0
        shard = self._shards.get(key)
        if shard is not None and shard.epoch == epoch:
            return shard.system.operation_cost(op_id)
        return self._archived_costs.get((key, epoch), {}).get(op_id, 0.0)

    @property
    def communication_cost(self) -> float:
        """Total normalised communication cost across all shards and epochs
        (replication fan-out and follower-read transfers included)."""
        replica_cost = 0.0 if self.replicas is None else self.replicas.total_cost
        return self._retired_comm_cost + replica_cost + sum(
            shard.system.communication_cost for shard in self._shards.values()
        )

    # -- histories and atomicity -----------------------------------------------------------

    def history(self, global_clock: bool = False) -> History:
        """All operations across all shards and epochs, in one merged history.

        Operation and client ids are qualified with the epoch's object id so
        the merged history stays collision-free and well-formed (every shard
        has clients named ``writer-0`` etc.).  The *session* identity is
        deliberately not qualified: it is the cross-shard client identity
        recorded at invocation time, re-attached here so the session
        auditor can follow one logical client across keys, shards and
        migration epochs.  The merged history is meant for latency /
        throughput summaries and session auditing; atomicity is checked per
        epoch by :meth:`check_atomicity` because each migration epoch has
        its own initial value.

        With ``global_clock`` (kernel mode only), every timestamp is shifted
        by its epoch's registration offset so operations from different
        shards become comparable on the one global timeline.  Every epoch
        must have a recorded offset (live shards register on attach or
        creation; retired epochs keep theirs, and pre-attach epochs are
        backfilled by :meth:`attach_kernel`) -- a missing offset is a
        bookkeeping bug and raises instead of silently mis-placing the
        epoch at shift 0.
        """
        if global_clock and self._kernel is None:
            raise RuntimeError(
                "global-clock histories need an attached kernel; legacy "
                "shard clocks are mutually incomparable"
            )
        if self.replicas is not None and self._kernel is not None:
            # Replicated histories are always global-clock: follower reads
            # are recorded with kernel timestamps, and merging them with
            # unshifted local shard clocks would silently misorder the
            # history (replication requires the kernel anyway).
            global_clock = True
        merged = History(initial_value=self.config.initial_value)
        for history in self._all_histories():
            for op in history.operations:
                if (op.object_id, op.op_id) in self._internal_ops:
                    continue
                if global_clock:
                    shift = self._kernel_offsets.get(op.object_id)
                    if shift is None:
                        raise RuntimeError(
                            f"epoch {op.object_id!r} has no global-clock "
                            "offset: it was never registered with the kernel "
                            "nor backfilled at attach time, so its operations "
                            "cannot be placed on the global timeline"
                        )
                else:
                    shift = 0.0
                merged.add(dc_replace(
                    op,
                    op_id=f"{op.object_id}/{op.op_id}",
                    client_id=f"{op.object_id}/{op.client_id}",
                    invoked_at=op.invoked_at + shift,
                    responded_at=(None if op.responded_at is None
                                  else op.responded_at + shift),
                    session=self._op_sessions.get((op.object_id, op.op_id)),
                ))
        if self.replicas is not None:
            # Follower-served reads: recorded with *global* timestamps and
            # their session identity already attached, and kept out of the
            # shard histories so per-epoch atomicity stays primary-only.
            for history in self.replicas.histories():
                for op in history.operations:
                    merged.add(op)
        return merged

    def _all_histories(self) -> List[History]:
        histories: List[History] = []
        for key in sorted(self._shards):
            shard = self._shards[key]
            histories.extend(shard.retired_histories)
            histories.append(shard.system.history())
        return histories

    def check_atomicity(self) -> Optional[AtomicityViolation]:
        """Check every epoch of every shard; returns the first violation found."""
        for history in self._all_histories():
            violation = check_atomicity_by_tags(history)
            if violation is not None:
                return violation
        return None

    def incomplete_operations(self) -> int:
        """Number of invoked-but-unfinished operations across the cluster
        (in-flight and failover-deferred replica reads, and writes still
        travelling a forwarding hop, included)."""
        replica_pending = (0 if self.replicas is None
                           else self.replicas.incomplete_reads()
                           + self.replicas.in_flight_forwards())
        return replica_pending + sum(
            1 for history in self._all_histories()
            for op in history if not op.is_complete
        )

    # -- membership reactions ------------------------------------------------------------

    def _on_membership_event(self, event: MembershipEvent) -> None:
        if event.kind == FAIL:
            for shard in self._shards.values():
                if shard.pool == event.node.pool:
                    self._crash_slot(shard, event.node.role, event.node.index,
                                     at=event.time)

    def _crash_slot(self, shard: Shard, role: str, index: int,
                    at: Optional[float] = None) -> None:
        """Crash one server slot of a shard, clamping ``at`` to the shard clock.

        ``at`` is a global time under the kernel (membership events carry
        global timestamps there) and a shard-local time in legacy mode.
        """
        simulator = shard.system.simulator
        when = None
        if at is not None:
            local = at - self._offset(shard)
            if local > simulator.now:
                when = local
        if role == L1_ROLE:
            if index < self.config.n1:
                shard.system.crash_l1(index, at=when)
        else:
            if index < self.config.n2:
                shard.system.crash_l2(index, at=when)

    def shards_on_pool(self, pool: str) -> List[Shard]:
        """Live shards hosted on ``pool`` in deterministic (key) order."""
        return [self._shards[key] for key in sorted(self._shards)
                if self._shards[key].pool == pool]

    # -- rebalancing -----------------------------------------------------------------------

    def pending_rebalance(self, reason: str = "", time: float = 0.0) -> RebalancePlan:
        """The deterministic plan aligning current shards with the ring.

        With replica groups the plan is replica-aware: primary moves become
        shard migrations exactly as before, and changes to the follower
        sets (``HashRing.nodes_for`` shifting under a join/leave) are
        carried as :class:`~repro.cluster.placement.FollowerChange` entries
        executed by the coordinator (drop immediately, provision after the
        configured copy delay).
        """
        if self.replicas is not None:
            before = self.replicas.current_placement()
            after = self.replicas.desired_placement()
            return diff_replica_placements(before, after, reason=reason,
                                           time=time)
        before = {key: shard.pool for key, shard in self._shards.items()}
        after = self.membership.placement(before)
        return diff_placements(before, after, reason=reason, time=time)

    def rebalance(self, reason: str = "", time: float = 0.0) -> RebalancePlan:
        """Compute the pending plan and migrate every moved shard.

        With replica groups, moves whose key is mid-failover are skipped:
        a migration drains the source with a protocol copy-read, which the
        dead primary pool can never answer (a pool kill freezes its groups
        synchronously, so every such key is frozen by the time a rebalance
        can run).  The failover path owns those keys -- promotion seats a
        live primary, and a later rebalance realigns it with the ring.
        Pools that merely *left* still drain normally.
        """
        plan = self.pending_rebalance(reason=reason, time=time)
        for move in plan.moves:
            if self.replicas is not None and self.replicas.frozen(move.key):
                continue
            self.migrate(move)
        if self.replicas is not None:
            self.replicas.apply_follower_changes(plan.follower_changes, time)
        return plan

    def migrate(self, move: ShardMove) -> Shard:
        """Move one shard to a new pool (drain, copy via a read, new epoch)."""
        shard = self._shards[move.key]
        if shard.pool != move.source:
            raise ValueError(
                f"shard {move.key!r} lives on {shard.pool!r}, not {move.source!r}"
            )
        # Drain: finish queued and in-flight operations, then copy the value
        # out with a real protocol read (this is the migration's data copy,
        # and it is charged to the source shard like any other read).
        self._flush_shard(shard)
        shard.system.run_until_idle()
        copy_read = shard.system.read()
        carried = copy_read.value
        # The copy read stays in the shard's own history (it is real protocol
        # traffic and part of the epoch's atomicity check) but is internal:
        # keep it out of the merged workload statistics.
        self._internal_ops.add((shard.system.object_id, copy_read.op_id))
        # Archive the retiring epoch's history, results and per-op costs.
        epoch_key = (move.key, shard.epoch)
        self._archived_results[epoch_key] = dict(shard.system.results)
        self._archived_costs[epoch_key] = dict(
            shard.system.network.costs.by_operation
        )
        self._retired_comm_cost += shard.system.communication_cost
        retired = shard.retired_histories + [shard.system.history()]
        drained_at = self.shard_now(shard)
        if self._kernel is not None:
            # The new epoch starts at the migration instant or at the
            # retiring epoch's last foreground activity, whichever is
            # later.  Neither a lagging shard clock (long idle) nor a
            # fast-forwarded one (the inline drain executes any future
            # callbacks, e.g. rate-limited repairs, against the retiring
            # epoch) may drag the epoch boundary off the global timeline.
            # Internal operations (the migration's own copy read, which
            # runs after the drain and inherits its inflated clock) do not
            # anchor the boundary; they are invisible in merged histories.
            history_end = max(
                (op.responded_at if op.responded_at is not None
                 else op.invoked_at for op in retired[-1]
                 if (op.object_id, op.op_id) not in self._internal_ops),
                default=0.0,
            )
            drained_at = max(self._kernel.now,
                             self._offset(shard) + history_end)
            self._kernel.unregister(f"shard:{shard.object_id}")
        replacement = self._build_shard(move.key, move.target,
                                        epoch=shard.epoch + 1,
                                        initial_value=carried)
        replacement.retired_histories = retired
        self._shards[move.key] = replacement
        if self._kernel is not None:
            # The new epoch's local time 0 is the instant the old epoch
            # drained, preserving real-time order between epochs on the
            # global timeline.
            self._register_shard_source(replacement, offset=drained_at)
        self._announce_shard(replacement)
        self.stats.migrations += 1
        self.migration_log.append((drained_at, move.key, move.source, move.target))
        if self.replicas is not None:
            self.replicas.on_primary_migrated(move.key, replacement, carried)
        return replacement

    def failover_shard(self, key: str, target_pool: str,
                       carried_value: Optional[bytes]) -> Shard:
        """Promote ``key``'s shard onto ``target_pool`` after primary loss.

        The structural twin of :meth:`migrate` for a *dead* source: the
        retiring epoch cannot be drained (its pool is down, so in-flight
        operations stay incomplete forever -- which is the truth of a
        crash) and the carried value comes from the caught-up follower
        store rather than a protocol copy read.  Frozen pending operations
        transfer onto the new epoch and their handles are re-pointed at
        it; the caller (the replica coordinator) flushes them once it has
        finished its own promotion bookkeeping.
        """
        if self._kernel is None:
            raise RuntimeError("failover is a global-clock operation; "
                               "attach a kernel first")
        shard = self._shards[key]
        epoch_key = (key, shard.epoch)
        self._archived_results[epoch_key] = dict(shard.system.results)
        self._archived_costs[epoch_key] = dict(
            shard.system.network.costs.by_operation
        )
        self._retired_comm_cost += shard.system.communication_cost
        retired = shard.retired_histories + [shard.system.history()]
        promoted_at = self._kernel.now
        self._kernel.unregister(f"shard:{shard.object_id}")
        replacement = self._build_shard(key, target_pool,
                                        epoch=shard.epoch + 1,
                                        initial_value=carried_value
                                        if carried_value is not None
                                        else self.config.initial_value)
        replacement.retired_histories = retired
        # Operations frozen during the failover window carry over; they
        # execute on the promoted epoch.
        replacement.pending = shard.pending
        shard.pending = []
        for op in replacement.pending:
            self._handles[op.handle][1] = replacement.epoch
        self._shards[key] = replacement
        self._register_shard_source(replacement, offset=promoted_at)
        self._announce_shard(replacement)
        return replacement


__all__ = ["ObjectRouter", "Shard", "RouterStats"]
