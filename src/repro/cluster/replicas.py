"""Replica groups: r-way shard placement, read routing and failover.

The base cluster places each key's shard on exactly **one** pool, so a
pool failure makes its keys unavailable until an administrator migrates
them.  This module adds the paper-scale answer to read-heavy traffic and
pool loss: every key's shard is instantiated on ``r`` pools chosen by
:meth:`~repro.cluster.ring.HashRing.nodes_for` -- the **primary** runs the
full two-layer LDS protocol (and keeps the paper's per-object atomicity
guarantee), while the ``r - 1`` **followers** are passive replica stores
that learn each committed write through an explicit, kernel-scheduled
*replication lag*.

**Writes** always execute at the primary.  When a write completes there,
the coordinator appends a :class:`ReplicaRecord` to the group's
replication log and schedules one apply event per follower at
``commit + replication_lag (+ jitter)`` on the global clock, so follower
staleness is a first-class, simulated quantity rather than an accident of
execution order.

**Reads** are dispatched by a pluggable :class:`ReadRoutingPolicy`:

* ``primary`` -- every read runs the full protocol read at the primary;
* ``round-robin`` -- reads cycle deterministically over the group;
* ``nearest`` -- reads go to the replica with the smallest seeded
  *distance* (its effective service latency scales with the shared
  :class:`~repro.net.latency.LatencyRegime`, so regime shifts slow
  follower reads exactly like protocol traffic);
* ``least-loaded`` -- reads go to the replica with the fewest in-flight
  (then fewest served) reads;
* ``quorum`` -- the paper-faithful mode: each read queries
  ``read_quorum`` of the r stores (a rotating window over the canonical
  replica order), merges their ``(epoch, tag)`` versions and returns the
  maximum-version value.  A merge that observes a store *below* the
  merged maximum triggers **read repair** -- the lagging store is caught
  up from the replication log at the merge instant instead of waiting
  out the replication lag (``read_repair=False`` restores lag-only
  catch-up for comparison).

**Write forwarding.**  With ``write_ingress="nearest"`` (or an explicit
``via=`` pool on ``invoke_write``) a write arrives at the client's
nearest replica pool; when that pool is a follower the write is
*forwarded* to the primary, charged one distance-scaled forwarding hop on
the global clock.  Forwarding keeps working through a failover freeze:
the forwarded write queues at the frozen primary slot and flushes into
the promoted epoch, so clients never track who the primary is.

A follower read returns the follower's *applied* version, which may lag
the primary -- safe for fresh sessions, dangerous for a session that has
already seen something newer.  The coordinator therefore keeps a
**session floor** (the highest ``(epoch, tag)`` version each logical
session has observed per key, maintained from operation completions) and
overrides any follower choice whose applied version is below the floor
back to the primary.  That is exactly the discipline that keeps the
cross-shard session auditor (:mod:`repro.consistency.sessions`) clean:
with the guard disabled (``session_guard=False``) a lagging follower
serves stale reads and the auditor provably reports them.

**Failover.**  Node failures within a pool degrade redundancy and are
repaired in the background as before.  When a pool loses its *last*
alive node, the membership layer reports it down and every group whose
primary lived there fails over deterministically:

1. the group freezes primary-bound traffic (writes and primary reads
   queue; follower reads keep serving -- the *degraded reads* window);
2. after ``failover_detection_delay`` the first live follower is chosen
   as successor and **catches up**: every logged record it has not yet
   applied is applied now, charged ``catch_up_per_record`` time each;
3. a fresh LDS instance (a new epoch, exactly like a migration epoch)
   starts on the successor's pool seeded with the caught-up value, the
   frozen operations flush into it, and a replacement follower is
   provisioned on the next ring pool to restore ``r``-way redundancy.

Because every acknowledged write is in the log and catch-up applies all
of it, no acknowledged write is lost and the merged history stays
atomic-at-the-primary and session-clean -- under fixed seeds the whole
sequence is reproducible event for event.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.cluster.membership import (
    FAIL,
    JOIN,
    RECOVER,
    Membership,
    MembershipEvent,
)
from repro.cluster.placement import DROP_FOLLOWER
from repro.cluster.ring import derive_seed
from repro.consistency.history import History, Operation, READ, WRITE
from repro.consistency.injection import REPLICA_CLIENT_PREFIX
from repro.consistency.sessions import join_object_id
from repro.core.results import OperationResult
from repro.core.tags import INITIAL_TAG, Tag

#: Replica-group states.
NORMAL = "normal"
FAILING_OVER = "failing-over"
#: Terminal state: the primary died and no live follower remained.
UNSERVICEABLE = "unserviceable"

#: A replica version: the (migration epoch, protocol tag) pair, ordered
#: lexicographically -- identical to the session auditor's versions.
Version = Tuple[int, Tag]


@dataclass(frozen=True)
class ReplicationConfig:
    """Tuning knobs of the replica-group subsystem.

    ``r=1`` (the default) disables the subsystem entirely: the router
    behaves exactly like the pre-replica cluster.
    """

    #: Replicas per key (primary + r-1 followers), capped at the pool count.
    r: int = 1
    #: Virtual time between a write committing at the primary and a
    #: follower applying it.
    replication_lag: float = 30.0
    #: Extra, seeded per-(follower, record) apply delay in [0, lag_jitter).
    lag_jitter: float = 0.0
    #: Base service time of a follower read (scaled by the replica's
    #: seeded distance and the shared latency regime).
    follower_read_latency: float = 2.0
    #: Time between a pool dying and its groups starting promotion.
    failover_detection_delay: float = 10.0
    #: Catch-up cost per unapplied log record during promotion.
    catch_up_per_record: float = 1.0
    #: Delay before a replacement follower is seeded on a new pool.
    provision_delay: float = 25.0
    #: Normalised communication cost charged per follower read served.
    follower_read_cost: float = 1.0
    #: Normalised communication cost charged per record applied / copied.
    replication_unit_cost: float = 1.0
    #: Route a follower read back to the primary when the follower has
    #: not applied the session's floor version yet.  Disabling this is a
    #: *fault injection*: stale follower reads reach clients and the
    #: session auditor must catch them.
    session_guard: bool = True
    #: Stores queried per read under the ``quorum`` routing policy (the
    #: paper's r'-of-r discovery quorum).  None defaults to a majority
    #: (``r // 2 + 1``); must stay within [1, r].  Setting it with any
    #: other policy is a configuration error (the knob would silently do
    #: nothing).
    read_quorum: Optional[int] = None
    #: When a quorum merge observes a store below the merged maximum
    #: version, apply the group's log to it immediately (kernel-clocked at
    #: the merge instant) instead of waiting out the replication lag.
    #: Disable to measure lag-only catch-up.
    read_repair: bool = True
    #: Base one-hop latency of forwarding a write from the ingress replica
    #: to the primary (scaled by the ingress store's seeded distance and
    #: the shared latency regime, exactly like follower reads).
    forward_latency: float = 2.0
    #: Where writes enter the group: ``"primary"`` assumes clients know
    #: the primary (the pre-forwarding behaviour, bit for bit); with
    #: ``"nearest"`` every write arrives at the client's seeded-nearest
    #: replica pool and is *forwarded* to the primary when that pool is a
    #: follower -- including during a failover freeze, where the
    #: forwarded write queues at the frozen primary slot and flushes into
    #: the promoted epoch.
    write_ingress: str = "primary"
    #: Seed for replica distances and lag jitter (derive_seed'd per use).
    #: None means unpinned: facades thread their root seed in; a bare
    #: router just derives from None (still deterministic).
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.r < 1:
            raise ValueError("the replication factor must be at least 1")
        for name in ("replication_lag", "lag_jitter", "follower_read_latency",
                     "failover_detection_delay", "catch_up_per_record",
                     "provision_delay", "follower_read_cost",
                     "replication_unit_cost", "forward_latency"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.read_quorum is not None and \
                not 1 <= self.read_quorum <= self.r:
            raise ValueError("read_quorum must be within [1, r]")
        if self.write_ingress not in ("primary", "nearest"):
            raise ValueError(
                f"unknown write ingress {self.write_ingress!r}; "
                "choose 'primary' or 'nearest'"
            )


@dataclass(frozen=True)
class ReplicaRecord:
    """One committed write in a group's replication log."""

    seq: int
    #: Global time the primary acknowledged the write.
    committed_at: float
    epoch: int
    tag: Tag
    value: Optional[bytes]

    @property
    def version(self) -> Version:
        return (self.epoch, self.tag)


class FollowerStore:
    """A passive replica of one key on one pool.

    Followers do not run the LDS protocol; they hold the latest applied
    ``(epoch, tag, value)`` and serve reads at replica-read latency.
    """

    def __init__(self, key: str, pool: str, distance: float,
                 version: Version, value: Optional[bytes],
                 created_at: float = 0.0) -> None:
        self.key = key
        self.pool = pool
        #: Seeded, unitless closeness factor; effective read latency is
        #: ``distance * follower_read_latency * regime.scale``.
        self.distance = distance
        self.version = version
        self.value = value
        self.created_at = created_at
        self.applied: Set[int] = set()
        #: Log prefix this store is known to have fully applied: every
        #: record in ``group.log[:log_position]`` is in ``applied``.
        #: Bulk catch-ups (read repair, promotion, provisioning seeds)
        #: advance it so later passes scan only the genuinely new tail;
        #: out-of-order lag applies land in ``applied`` without moving it.
        self.log_position = 0
        self.applies = 0
        self.reads_in_flight = 0
        self.reads_served = 0
        #: True once the store was dropped (pool died, promoted, rebalance).
        self.retired = False

    def apply(self, record: ReplicaRecord) -> bool:
        """Apply one log record; idempotent, keeps the max version."""
        if record.seq in self.applied:
            return False
        self.applied.add(record.seq)
        self.applies += 1
        if record.version > self.version:
            self.version = record.version
            self.value = record.value
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FollowerStore({self.key!r}@{self.pool!r}, "
                f"version={self.version}, applies={self.applies})")


@dataclass(frozen=True)
class ReplicaView:
    """A policy-facing snapshot of one replica at read-dispatch time."""

    pool: str
    is_primary: bool
    distance: float
    reads_in_flight: int
    reads_served: int
    #: Position in the group's canonical order (primary first).
    order: int


class ReadRoutingPolicy(ABC):
    """Chooses which replica serves a read.

    ``choose`` receives the candidates able to serve *right now* (the
    primary is absent while its group is failing over, dead followers are
    dropped) and returns the chosen pool, or ``None`` to wait for the
    primary.  The coordinator may still override a follower choice back
    to the primary to preserve the session guarantees; that override is
    counted against the policy's hit rate, not hidden.
    """

    name: str = "abstract"

    @abstractmethod
    def choose(self, key: str, candidates: List[ReplicaView]) -> Optional[str]:
        """Return the pool to read from (``None`` = wait for the primary)."""

    def rejected(self, key: str, pool: str) -> None:
        """The coordinator could not honor ``choose``'s answer for ``key``
        (session guard override, or the chosen store turned out retired).

        Stateful policies use this to undo the turn they spent on the
        rejected choice, so a temporarily lagging replica keeps its place
        in a deterministic cycle instead of being skipped for good.  The
        default is a no-op (stateless policies have nothing to undo).
        """


class PrimaryOnlyPolicy(ReadRoutingPolicy):
    """Every read runs the full protocol read at the primary."""

    name = "primary"

    def choose(self, key: str, candidates: List[ReplicaView]) -> Optional[str]:
        for view in candidates:
            if view.is_primary:
                return view.pool
        return None


class RoundRobinPolicy(ReadRoutingPolicy):
    """Reads cycle deterministically over the group's replicas."""

    name = "round-robin"

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def choose(self, key: str, candidates: List[ReplicaView]) -> Optional[str]:
        if not candidates:
            return None
        index = self._counters.get(key, 0)
        self._counters[key] = index + 1
        return candidates[index % len(candidates)].pool

    def rejected(self, key: str, pool: str) -> None:
        # Give the turn back: the rejected replica is re-offered on the
        # next read, so a lagging follower resumes its place in the cycle
        # the moment it catches up instead of losing a turn per rejection.
        self._counters[key] = max(0, self._counters.get(key, 1) - 1)


class QuorumReadPolicy(ReadRoutingPolicy):
    """Reads fan out to a quorum of stores and merge their versions.

    The paper resolves every read by querying a *quorum* of servers,
    taking the maximum tag and reading that version; this policy is the
    replica layer's analogue: each read queries ``read_quorum`` of the
    group's r stores (the primary answers from its committed log head at
    store-read latency, followers from their applied state), the
    coordinator merges the ``(epoch, tag)`` versions and returns the
    maximum-version value.  The quorum *window* rotates deterministically
    over the canonical replica order per key, so successive reads spread
    load and periodically form follower-only quorums -- the case where a
    lagging store loses the merge and (with ``read_repair``) is caught up
    on the spot.
    """

    name = "quorum"

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def choose(self, key: str, candidates: List[ReplicaView]) -> Optional[str]:
        chosen = self.choose_quorum(key, candidates, 1)
        return chosen[0] if chosen else None

    def choose_quorum(self, key: str, candidates: List[ReplicaView],
                      quorum: int) -> List[str]:
        """The pools to query: ``quorum`` consecutive candidates starting
        at a per-key rotating offset (distinct by construction)."""
        if not candidates:
            return []
        quorum = min(quorum, len(candidates))
        start = self._counters.get(key, 0)
        self._counters[key] = start + 1
        return [candidates[(start + i) % len(candidates)].pool
                for i in range(quorum)]


class NearestPolicy(ReadRoutingPolicy):
    """Reads go to the replica with the smallest seeded distance."""

    name = "nearest"

    def choose(self, key: str, candidates: List[ReplicaView]) -> Optional[str]:
        if not candidates:
            return None
        return min(candidates, key=lambda v: (v.distance, v.order)).pool


class LeastLoadedPolicy(ReadRoutingPolicy):
    """Reads go to the replica with the fewest in-flight (then served) reads."""

    name = "least-loaded"

    def choose(self, key: str, candidates: List[ReplicaView]) -> Optional[str]:
        if not candidates:
            return None
        return min(candidates,
                   key=lambda v: (v.reads_in_flight, v.reads_served, v.order)).pool


_POLICIES = {
    PrimaryOnlyPolicy.name: PrimaryOnlyPolicy,
    RoundRobinPolicy.name: RoundRobinPolicy,
    QuorumReadPolicy.name: QuorumReadPolicy,
    NearestPolicy.name: NearestPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
}


def make_read_policy(spec: Union[str, ReadRoutingPolicy]) -> ReadRoutingPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(spec, ReadRoutingPolicy):
        return spec
    try:
        return _POLICIES[spec]()
    except KeyError:
        raise ValueError(
            f"unknown read routing policy {spec!r}; "
            f"choose one of {sorted(_POLICIES)}"
        ) from None


class ReplicaGroup:
    """The replica set serving one key: primary shard + follower stores."""

    def __init__(self, key: str, primary_pool: str, epoch: int,
                 primary_distance: float) -> None:
        self.key = key
        self.primary_pool = primary_pool
        self.epoch = epoch
        self.primary_distance = primary_distance
        self.followers: List[FollowerStore] = []
        self.status = NORMAL
        self.log: List[ReplicaRecord] = []
        #: Highest committed (version, value); seeds promotions and
        #: replacement followers.
        self.latest_version: Version = (epoch, INITIAL_TAG)
        self.latest_value: Optional[bytes] = None
        #: Follower-served reads (kept outside the shard histories so the
        #: per-epoch atomicity check stays primary-only).
        self.history = History()
        #: (handle, reader, nominal at, session) queued while primary-bound
        #: traffic is frozen during failover.  The nominal time is kept so
        #: the post-promotion flush preserves per-client spacing (a client
        #: may only have one operation in flight).
        self.deferred_reads: List[
            Tuple[str, Union[int, str], Optional[float], Optional[str]]
        ] = []
        #: Reads the coordinator routed to the primary and that have not
        #: completed yet (a load heuristic, decremented on READ completions
        #: of the live epoch, so it is approximate around migrations).
        self.primary_in_flight = 0
        #: Reads dispatched per pool over the group's lifetime.
        self.dispatched: Dict[str, int] = {}
        #: Pools with a replacement-follower provision scheduled but not
        #: yet seated (keeps multi-deficit provisioning from piling onto
        #: one target and lets the deficit be filled in one pass).
        self.pending_provisions: Set[str] = set()
        self._read_counter = 0

    def live_followers(self) -> List[FollowerStore]:
        return [store for store in self.followers if not store.retired]

    def follower(self, pool: str) -> Optional[FollowerStore]:
        for store in self.live_followers():
            if store.pool == pool:
                return store
        return None

    def pools(self) -> List[str]:
        """Pools currently holding a replica (primary first)."""
        return [self.primary_pool] + [s.pool for s in self.live_followers()]

    def next_read_id(self) -> int:
        self._read_counter += 1
        return self._read_counter


@dataclass
class ReplicaStats:
    """Aggregate counters of the coordinator."""

    groups_created: int = 0
    records_logged: int = 0
    records_applied: int = 0
    failovers_started: int = 0
    promotions: int = 0
    followers_provisioned: int = 0
    followers_lost: int = 0
    catch_up_records: int = 0
    #: Log records applied by quorum-merge read repair (outside the
    #: normal lag applies counted in ``records_applied``).
    read_repair_records: int = 0


@dataclass
class _PendingQuorumRead:
    """One in-flight quorum read: outstanding legs and their answers."""

    handle: str
    group: ReplicaGroup
    reader: Union[int, str]
    session: Optional[str]
    invoked_at: float
    outstanding: int
    #: ``(version, value, store)`` per successful leg; ``store`` is None
    #: for the primary leg.
    responses: List[Tuple[Version, Optional[bytes],
                          Optional[FollowerStore]]] = field(
        default_factory=list)


class ReplicaCoordinator:
    """Owns every replica group of one :class:`ObjectRouter`.

    Wired by the router itself when its :class:`ReplicationConfig` has
    ``r > 1``; requires the global simulation kernel (replication lag,
    follower reads and failover are kernel events -- legacy per-shard
    clocks cannot express them).
    """

    def __init__(self, router, config: ReplicationConfig,
                 read_policy: Union[str, ReadRoutingPolicy] = "primary") -> None:
        self.router = router
        self.config = config
        self.policy = make_read_policy(read_policy)
        if isinstance(self.policy, QuorumReadPolicy):
            self.read_quorum = (config.read_quorum
                                if config.read_quorum is not None
                                else config.r // 2 + 1)
        else:
            if config.read_quorum is not None:
                raise ValueError(
                    "read_quorum only applies to the 'quorum' read policy; "
                    f"the configured policy is {self.policy.name!r}"
                )
            self.read_quorum = None
        self.membership: Membership = router.membership
        for pool in self.membership.pools:
            self._check_pool_name(pool)
        self.groups: Dict[str, ReplicaGroup] = {}
        #: Follower-read handle -> completed result.
        self._results: Dict[str, OperationResult] = {}
        #: Handles of follower reads dispatched but not yet completed.
        self._pending: Set[str] = set()
        #: Handle -> (key, global invocation time) for every pending read,
        #: maintained in lockstep with ``_pending``.  The live-audit
        #: probe's per-key watermark must not pass the invocation time of
        #: any read that may still complete; reads stranded by a pool
        #: crash are removed (they never respond, so they constrain
        #: nothing).
        self._pending_invocations: Dict[str, Tuple[str, float]] = {}
        #: Handle -> in-flight quorum read state.
        self._quorums: Dict[str, _PendingQuorumRead] = {}
        #: Handles already counted in ``RouterStats.quorum_reads`` whose
        #: merge fell back to the primary: the protocol re-dispatch must
        #: not count the same logical read again in ``primary_reads``.
        self._quorum_counted: Set[str] = set()
        #: Per-handle communication cost of served quorum reads (one
        #: store-read cost per merged leg).
        self._handle_costs: Dict[str, float] = {}
        #: Handles of writes forwarded follower->primary, still in flight.
        self._forwarding: Set[str] = set()
        #: (session, key) -> highest version the session has observed.
        self._floors: Dict[Tuple[str, str], Version] = {}
        self._seq = 0
        #: Communication cost of replication traffic (applies, catch-up,
        #: provisioning copies) and of served follower reads.
        self.replication_cost = 0.0
        self.read_cost = 0.0
        #: (global_time, kind, detail) for the harness timeline:
        #: ``primary-down`` / ``promote`` / ``follower-lost`` /
        #: ``follower-provisioned`` / ``unserviceable`` / ``read-repair``.
        self.failover_log: List[Tuple[float, str, str]] = []
        self.stats = ReplicaStats()
        #: Optional shared latency regime scaling follower-read latency.
        self.latency_regime = None
        #: Pools whose kill was already processed (fail_pool delivers one
        #: FAIL event per node; only the first needs the group scan).
        self._dead_pools: Set[str] = set()
        #: Times each pool has gone fully down, ever.  Quorum primary
        #: legs capture the count at dispatch: a pool that crashed while
        #: the leg was in flight stays silent even if it has since
        #: recovered (recovery empties ``_dead_pools``, but it cannot
        #: un-lose an in-flight request).
        self._pool_crashes: Dict[str, int] = {}
        #: Tracing bookkeeping (only filled while the router traces):
        #: log seq -> write handle, so replication applies can hang child
        #: spans off the write that produced the record; handle -> freeze
        #: start, so deferred reads get a freeze-wait span at flush.
        self._record_handles: Dict[int, str] = {}
        self._freeze_started: Dict[str, float] = {}
        self.membership.subscribe(self._on_membership_event)

    @property
    def _trace(self):
        """The router's trace recorder (None when tracing is off)."""
        return self.router._trace

    # -- wiring ------------------------------------------------------------------

    @property
    def kernel(self):
        kernel = self.router.kernel
        if kernel is None:
            raise RuntimeError(
                "replica groups run on the global clock; attach a "
                "GlobalScheduler before driving an r>1 cluster"
            )
        return kernel

    def _now(self) -> float:
        return self.kernel.now

    def _distance(self, key: str, pool: str) -> float:
        """Seeded, unitless replica distance in [0.5, 1.5)."""
        return 0.5 + (derive_seed(self.config.seed, "distance", key, pool)
                      % 1000) / 1000.0

    def _lag_jitter(self, key: str, pool: str, seq: int) -> float:
        if self.config.lag_jitter <= 0:
            return 0.0
        unit = (derive_seed(self.config.seed, "lag", key, pool, seq)
                % 10_000) / 10_000.0
        return unit * self.config.lag_jitter

    def _scaled_latency(self, distance: float, base: float) -> float:
        """One replica hop: seeded distance x base cost x regime scale.

        The single definition of how the shared latency regime scales
        replica traffic -- store reads, quorum legs and forwarding hops
        all price through it.
        """
        scale = (self.latency_regime.scale
                 if self.latency_regime is not None else 1.0)
        return distance * base * scale

    def _read_latency(self, store: FollowerStore) -> float:
        return self._scaled_latency(store.distance,
                                    self.config.follower_read_latency)

    # -- group lifecycle ------------------------------------------------------------

    def ensure_group(self, key: str, shard) -> ReplicaGroup:
        """Create the replica group for a freshly built epoch-0 shard."""
        existing = self.groups.get(key)
        if existing is not None:
            return existing
        now = self._now()
        pools = self.membership.ring.nodes_for(key, self.config.r)
        group = ReplicaGroup(key=key, primary_pool=shard.pool,
                             epoch=shard.epoch,
                             primary_distance=self._distance(key, shard.pool))
        group.latest_value = self.router.config.initial_value
        for pool in pools[1:]:
            # The ring still lists dead pools (failures do not change
            # placement); a store created there would never be retired --
            # its pool's FAIL events predate the group -- and would serve
            # reads from a dead pool forever.  Seed live pools only and
            # let provisioning restore the missing redundancy elsewhere.
            if not self.membership.pool_alive(pool):
                continue
            group.followers.append(FollowerStore(
                key=key, pool=pool, distance=self._distance(key, pool),
                version=group.latest_version, value=group.latest_value,
                created_at=now,
            ))
        self.groups[key] = group
        self.stats.groups_created += 1
        self._hook_primary(group, shard)
        if len(group.live_followers()) < self.config.r - 1:
            self._provision_replacement(group, now)
        # A key can be touched for the first time after its primary pool
        # already died (lazy shard creation): fail over immediately.
        if not self.membership.pool_alive(group.primary_pool):
            self._begin_failover(group, now)
        return group

    def _hook_primary(self, group: ReplicaGroup, shard) -> None:
        """Subscribe to the (current epoch's) primary completions."""
        epoch = shard.epoch
        object_id = shard.system.object_id

        def on_completion(result: OperationResult,
                          _group=group, _epoch=epoch, _object_id=object_id,
                          _shard=shard) -> None:
            self._on_primary_completion(_group, _shard, _epoch, _object_id,
                                        result)

        shard.system.completion_hooks.append(on_completion)

    def frozen(self, key: str) -> bool:
        """True while ``key``'s primary-bound traffic must queue (failover)."""
        group = self.groups.get(key)
        return group is not None and group.status in (FAILING_OVER,
                                                      UNSERVICEABLE)

    # -- primary completions: floors + write fan-out ----------------------------------

    def _bump_floor(self, session: Optional[str], key: str,
                    version: Version) -> None:
        if session is None:
            return
        slot = (session, key)
        current = self._floors.get(slot)
        if current is None or version > current:
            self._floors[slot] = version

    def session_floor(self, session: Optional[str],
                      key: str) -> Optional[Version]:
        if session is None:
            return None
        return self._floors.get((session, key))

    def _on_primary_completion(self, group: ReplicaGroup, shard, epoch: int,
                               object_id: str, result: OperationResult) -> None:
        session = self.router._op_sessions.get((object_id, result.op_id))
        version = (epoch, result.tag)
        self._bump_floor(session, group.key, version)
        if result.kind != WRITE:
            if group.primary_in_flight > 0:
                group.primary_in_flight -= 1
            return
        if self.router._shards.get(group.key) is not shard:
            return  # a retired epoch draining; its writes were already logged
        self._seq += 1
        record = ReplicaRecord(seq=self._seq,
                               committed_at=self.router.shard_now(shard),
                               epoch=epoch, tag=result.tag, value=result.value)
        group.log.append(record)
        self.stats.records_logged += 1
        if self._trace is not None:
            handle = self.router._op_handles.get((object_id, result.op_id))
            if handle is not None:
                self._record_handles[record.seq] = handle
        if record.version > group.latest_version:
            group.latest_version = record.version
            group.latest_value = record.value
        for store in group.live_followers():
            self._schedule_apply(group, store, record)

    def _schedule_apply(self, group: ReplicaGroup, store: FollowerStore,
                        record: ReplicaRecord) -> None:
        at = (record.committed_at + self.config.replication_lag
              + self._lag_jitter(group.key, store.pool, record.seq))
        self.kernel.schedule_at(
            max(at, self._now()),
            lambda: self._apply(group, store, record),
        )

    def _apply(self, group: ReplicaGroup, store: FollowerStore,
               record: ReplicaRecord) -> None:
        if store.retired:
            return
        if store.apply(record):
            self.stats.records_applied += 1
            self.replication_cost += self.config.replication_unit_cost
            tracer = self._trace
            if tracer is not None:
                handle = self._record_handles.get(record.seq)
                if handle is not None:
                    tracer.child_span(
                        handle, f"replication-apply {store.pool}", "replica",
                        record.committed_at, self._now(),
                        args={"pool": store.pool, "seq": record.seq},
                    )

    # -- epoch transitions driven by the router -----------------------------------------

    def on_primary_migrated(self, key: str, shard,
                            carried_value: Optional[bytes]) -> None:
        """A rebalance moved ``key``'s primary: adopt the new epoch.

        The new epoch's initial state is replicated to the followers like
        a write (they must learn the epoch bump, or their versions would
        stay comparable-but-stale forever).
        """
        group = self.groups.get(key)
        if group is None:
            return
        group.primary_pool = shard.pool
        group.primary_distance = self._distance(key, shard.pool)
        group.epoch = shard.epoch
        self._hook_primary(group, shard)
        self._log_snapshot(group, shard.epoch, carried_value)

    def _log_snapshot(self, group: ReplicaGroup, epoch: int,
                      value: Optional[bytes]) -> None:
        """Append an epoch-boundary record (initial value of a new epoch)."""
        self._seq += 1
        record = ReplicaRecord(seq=self._seq, committed_at=self._now(),
                               epoch=epoch, tag=INITIAL_TAG, value=value)
        group.log.append(record)
        self.stats.records_logged += 1
        if record.version > group.latest_version:
            group.latest_version = record.version
            group.latest_value = record.value
        for store in group.live_followers():
            self._schedule_apply(group, store, record)

    # -- read routing --------------------------------------------------------------------

    def _candidates(self, group: ReplicaGroup) -> List[ReplicaView]:
        """The replicas able to serve right now, in canonical order (the
        primary is absent while the group is failing over)."""
        candidates: List[ReplicaView] = []
        order = 0
        if group.status == NORMAL:
            candidates.append(ReplicaView(
                pool=group.primary_pool, is_primary=True,
                distance=group.primary_distance,
                reads_in_flight=group.primary_in_flight,
                reads_served=group.dispatched.get(group.primary_pool, 0),
                order=order,
            ))
            order += 1
        for store in group.live_followers():
            candidates.append(ReplicaView(
                pool=store.pool, is_primary=False, distance=store.distance,
                reads_in_flight=store.reads_in_flight,
                reads_served=store.reads_served, order=order,
            ))
            order += 1
        return candidates

    def invoke_read(self, key: str, reader: Union[int, str] = 0,
                    at: Optional[float] = None,
                    session: Optional[str] = None) -> str:
        """Route one read: quorum fan-out, follower serve, primary queue,
        or failover defer.

        The routing decision is made at invocation time (the kernel's
        arrival events invoke at their nominal global time, so for
        workload traffic this *is* the arrival instant).
        """
        self.router.shard(key)  # also creates the group
        group = self.groups[key]
        handle = self.router._new_replica_handle(key)
        now = self._now()
        # A late-scheduled arrival (nominal ``at`` already in the past)
        # dispatches at the clock, never before it -- on *every* path, so
        # primary- and follower-served reads of the same arrival batch get
        # consistent invocation timestamps.
        dispatch_at = now if at is None else max(at, now)
        clamped_at = None if at is None else dispatch_at
        if self._trace is not None:
            self._trace.begin_op(handle, READ, group.key, dispatch_at,
                                 args={"reader": reader, "session": session})

        if self.read_quorum is not None:
            return self._invoke_quorum_read(group, handle, reader,
                                            dispatch_at, session)

        candidates = self._candidates(group)
        choice = self.policy.choose(key, candidates)
        stats = self.router.stats
        if choice is not None:
            stats.policy_choices += 1
        routed = choice
        store = None
        rejected: Set[str] = set()
        remaining = candidates
        while routed is not None and routed != group.primary_pool:
            if routed in rejected:
                # A policy ignoring the reduced list (e.g. a stale cache)
                # re-named an already-rejected pool: stop retrying.
                routed = None
                break
            store = group.follower(routed)
            floor = (self.session_floor(session, key)
                     if self.config.session_guard else None)
            if store is None:
                # The policy named a pool without a live store (e.g. a
                # stale cache of a just-retired follower): reject, but
                # visibly.
                stats.retired_fallbacks += 1
            elif floor is not None and store.version < floor:
                # The follower has not caught up to what this session
                # already observed.
                stats.session_fallbacks += 1
                if self._trace is not None:
                    self._trace.child_instant(handle, "session-fallback",
                                              "read", dispatch_at,
                                              args={"pool": routed,
                                                    "floor": floor})
                store = None
            else:
                break  # a serviceable follower
            # Rejected: give the policy its turn back and re-offer the
            # *reduced* candidate list, so the turn passes to the next
            # replica instead of collapsing straight onto the primary (a
            # lagging follower must not starve its healthy peers).
            self.policy.rejected(key, routed)
            rejected.add(routed)
            remaining = [view for view in remaining if view.pool != routed]
            routed = self.policy.choose(key, remaining)
        if routed is not None and routed != group.primary_pool \
                and store is not None:
            if routed == choice:
                stats.policy_honored += 1
            self._serve_follower_read(group, store, handle, reader,
                                      dispatch_at, session)
            return handle

        # Primary-bound (explicitly, by fallback, or because nothing else
        # can serve): queue on the shard, or defer while failing over.
        if group.status != NORMAL:
            group.deferred_reads.append((handle, reader, dispatch_at, session))
            self._pending.add(handle)
            self._pending_invocations[handle] = (group.key, dispatch_at)
            stats.failover_deferrals += 1
            if self._trace is not None:
                self._freeze_started[handle] = dispatch_at
            return handle
        if routed == choice and choice is not None:
            stats.policy_honored += 1
        self._dispatch_primary_read(group, handle, reader, clamped_at, session)
        return handle

    def _dispatch_primary_read(self, group: ReplicaGroup, handle: str,
                               reader: Union[int, str], at: Optional[float],
                               session: Optional[str]) -> None:
        """Queue one read on the group's primary, with the shared accounting
        (also used when failover-deferred reads flush at promotion).

        A read that already counted as a quorum read (its merge fell back
        here) is one *logical* read: it stays in ``quorum_reads`` and is
        excluded from ``primary_reads``, so ``routed_reads`` counts every
        read exactly once however it was resolved.
        """
        stats = self.router.stats
        if handle in self._quorum_counted:
            self._quorum_counted.discard(handle)
        else:
            stats.primary_reads += 1
        stats.count_replica_read(group.primary_pool)
        group.primary_in_flight += 1
        group.dispatched[group.primary_pool] = (
            group.dispatched.get(group.primary_pool, 0) + 1
        )
        self.router._queue_read(group.key, reader=reader, at=at,
                                session=session, handle=handle)

    def _serve_follower_read(self, group: ReplicaGroup, store: FollowerStore,
                             handle: str, reader: Union[int, str],
                             at: float, session: Optional[str]) -> None:
        store.reads_in_flight += 1
        group.dispatched[store.pool] = group.dispatched.get(store.pool, 0) + 1
        self._pending.add(handle)
        self._pending_invocations[handle] = (group.key, at)
        # Routing counters are symmetric with the primary path: both count
        # at dispatch.  A read stranded by a crash mid-flight therefore
        # still counts as *routed* to its replica (see RouterStats).
        stats = self.router.stats
        stats.follower_reads += 1
        stats.count_replica_read(store.pool)
        respond_at = at + self._read_latency(store)
        self.kernel.schedule_at(
            max(respond_at, self._now()),
            lambda crashes=self._pool_crashes.get(store.pool, 0):
                self._complete_follower_read(group, store, handle, reader,
                                             at, session, crashes),
        )

    def _complete_follower_read(self, group: ReplicaGroup, store: FollowerStore,
                                handle: str, reader: Union[int, str],
                                invoked_at: float, session: Optional[str],
                                crashes_at_dispatch: int) -> None:
        now = self._now()
        store.reads_in_flight -= 1
        epoch, tag = store.version
        object_id = join_object_id(group.key, epoch)
        op_id = (f"{group.key}/{REPLICA_CLIENT_PREFIX}{store.pool}"
                 f"/read-{group.next_read_id()}")
        client_id = f"{REPLICA_CLIENT_PREFIX}{store.pool}/reader-{reader}"
        if self._pool_crashes.get(store.pool, 0) != crashes_at_dispatch:
            # The store's pool *crashed* while the read was in flight:
            # like in-flight operations at a crashed primary, it never
            # responds.  Recorded as incomplete so the merged history
            # tells the truth; the handle stays pending.  A graceful
            # retirement (rebalance drop, promotion) is not a crash: the
            # store served until it was dropped and its answer stands.
            group.history.add(Operation(
                op_id=op_id, client_id=client_id, kind=READ,
                object_id=object_id, invoked_at=invoked_at, session=session,
            ))
            # Stranded forever: it constrains no future completion, so it
            # must not pin the live-audit watermark for this key.
            self._pending_invocations.pop(handle, None)
            if self._trace is not None:
                self._trace.child_instant(
                    handle, f"store-crashed {store.pool}", "replica", now,
                    args={"pool": store.pool},
                )
            return
        store.reads_served += 1
        operation = Operation(
            op_id=op_id, client_id=client_id, kind=READ, object_id=object_id,
            value=store.value, invoked_at=invoked_at, responded_at=now,
            tag=tag, session=session,
        )
        group.history.add(operation)
        self.router.notify_replica_completion(operation)
        result = OperationResult(
            op_id=op_id, client_id=client_id, kind=READ, tag=tag,
            value=store.value, invoked_at=invoked_at, responded_at=now,
        )
        self._results[handle] = result
        self._pending.discard(handle)
        self._pending_invocations.pop(handle, None)
        self._bump_floor(session, group.key, (epoch, tag))
        self.read_cost += self.config.follower_read_cost
        tracer = self._trace
        if tracer is not None:
            tracer.child_span(handle, f"store-read {store.pool}", "replica",
                              invoked_at, now, args={"pool": store.pool})
            tracer.end_op(handle, now, args={"tag": str(tag)})

    # -- quorum reads --------------------------------------------------------------------

    def _invoke_quorum_read(self, group: ReplicaGroup, handle: str,
                            reader: Union[int, str], dispatch_at: float,
                            session: Optional[str]) -> str:
        """Fan one read out to ``read_quorum`` stores and merge the answers.

        Every leg is a *store read*: followers answer from their applied
        state, the primary from its committed log head
        (``group.latest_*``), each at store-read latency scaled by its
        seeded distance and the shared latency regime -- the paper's
        query-a-quorum-of-servers discovery, not a full protocol read.
        The read completes when the last leg resolves; a leg whose store
        dies mid-flight resolves as *failed*, so the merge degrades to the
        surviving answers instead of hanging.
        """
        stats = self.router.stats
        candidates = self._candidates(group)
        if not candidates:
            # Failing over with no live follower: defer to the promoted
            # primary like any other primary-bound read.
            group.deferred_reads.append((handle, reader, dispatch_at, session))
            self._pending.add(handle)
            self._pending_invocations[handle] = (group.key, dispatch_at)
            stats.failover_deferrals += 1
            if self._trace is not None:
                self._freeze_started[handle] = dispatch_at
            return handle
        pools = self.policy.choose_quorum(group.key, candidates,
                                          self.read_quorum)
        stats.quorum_reads += 1
        stats.policy_choices += 1
        views = {view.pool: view for view in candidates}
        pending = _PendingQuorumRead(
            handle=handle, group=group, reader=reader, session=session,
            invoked_at=dispatch_at, outstanding=len(pools),
        )
        self._quorums[handle] = pending
        self._pending.add(handle)
        self._pending_invocations[handle] = (group.key, dispatch_at)
        now = self._now()
        for pool in pools:
            view = views[pool]
            store = None if view.is_primary else group.follower(pool)
            if store is not None:
                store.reads_in_flight += 1
            group.dispatched[pool] = group.dispatched.get(pool, 0) + 1
            stats.count_replica_read(pool)
            latency = self._scaled_latency(view.distance,
                                           self.config.follower_read_latency)
            self.kernel.schedule_at(
                max(dispatch_at + latency, now),
                lambda pool=pool, store=store,
                crashes=self._pool_crashes.get(pool, 0):
                    self._complete_quorum_leg(pending, pool, store, crashes),
            )
        return handle

    def _complete_quorum_leg(self, pending: _PendingQuorumRead, pool: str,
                             store: Optional[FollowerStore],
                             crashes_at_dispatch: int) -> None:
        pending.outstanding -= 1
        group = pending.group
        answered = False
        if store is not None:
            store.reads_in_flight -= 1
            # Same crash-generation rule as the single-store path: only a
            # pool crash during the flight silences the leg; a graceful
            # retirement answers from the state the store served until.
            if self._pool_crashes.get(pool, 0) == crashes_at_dispatch:
                store.reads_served += 1
                self.read_cost += self.config.follower_read_cost
                pending.responses.append((store.version, store.value, store))
                answered = True
        elif self._pool_crashes.get(pool, 0) == crashes_at_dispatch:
            # The primary leg answers from the committed log head, sampled
            # at response time.  Only a *crash* of the queried pool while
            # the leg was in flight silences it -- compared by crash
            # generation, so a crash-then-recover inside the window stays
            # silent (recovery cannot un-lose the request), while a
            # benign mid-flight migration (or a graceful leave, which
            # drains first) still answers, and the head only grows, so
            # the answer stands.  Crash semantics match the follower
            # legs' permanent ``retired`` flag.
            self.read_cost += self.config.follower_read_cost
            pending.responses.append(
                (group.latest_version, group.latest_value, None))
            answered = True
        tracer = self._trace
        if tracer is not None:
            tracer.child_span(pending.handle, f"quorum-leg {pool}", "replica",
                              pending.invoked_at, self._now(),
                              args={"pool": pool, "answered": answered})
        if pending.outstanding == 0:
            self._merge_quorum(pending)

    def _merge_quorum(self, pending: _PendingQuorumRead) -> None:
        group = pending.group
        handle = pending.handle
        session = pending.session
        now = self._now()
        del self._quorums[handle]
        stats = self.router.stats
        depth = len(pending.responses)
        stats.observe_quorum_depth(depth)
        tracer = self._trace
        op_id = (f"{group.key}/{REPLICA_CLIENT_PREFIX}quorum"
                 f"/read-{group.next_read_id()}")
        client_id = (f"{REPLICA_CLIENT_PREFIX}quorum"
                     f"/reader-{pending.reader}")
        if not pending.responses:
            # Every queried store died mid-flight: like a single stranded
            # follower read, the operation never responds and the merged
            # history records the truth.
            group.history.add(Operation(
                op_id=op_id, client_id=client_id, kind=READ,
                object_id=join_object_id(group.key, group.epoch),
                invoked_at=pending.invoked_at, session=session,
            ))
            # Stranded forever: do not pin the live-audit watermark.
            self._pending_invocations.pop(handle, None)
            if tracer is not None:
                tracer.child_instant(handle, "quorum-stranded", "replica",
                                     now, args={"depth": depth})
            return
        version, value, _ = max(pending.responses, key=lambda r: r[0])
        if self.config.read_repair:
            self._read_repair(group, pending.responses, version, now,
                              handle=handle)
        floor = self.session_floor(session, group.key)
        if self.config.session_guard and floor is not None \
                and version < floor:
            # The whole quorum lags what this session already observed
            # (a follower-only window): fall back to a full protocol read
            # at the primary.  The legs' transfer cost was still paid.
            stats.session_fallbacks += 1
            self._quorum_counted.add(handle)
            if tracer is not None:
                tracer.child_instant(handle, "quorum-fallback", "replica",
                                     now, args={"depth": depth})
            if group.status != NORMAL:
                group.deferred_reads.append(
                    (handle, pending.reader, now, session))
                stats.failover_deferrals += 1
                if tracer is not None:
                    self._freeze_started[handle] = now
                return
            self._pending.discard(handle)
            self._pending_invocations.pop(handle, None)
            self._dispatch_primary_read(group, handle, pending.reader, now,
                                        session)
            self.router.flush_key(group.key)
            return
        stats.policy_honored += 1
        epoch, tag = version
        operation = Operation(
            op_id=op_id, client_id=client_id, kind=READ,
            object_id=join_object_id(group.key, epoch), value=value,
            invoked_at=pending.invoked_at, responded_at=now, tag=tag,
            session=session,
        )
        group.history.add(operation)
        self.router.notify_replica_completion(operation)
        self._results[handle] = OperationResult(
            op_id=op_id, client_id=client_id, kind=READ, tag=tag,
            value=value, invoked_at=pending.invoked_at, responded_at=now,
        )
        self._handle_costs[handle] = depth * self.config.follower_read_cost
        self._pending.discard(handle)
        self._pending_invocations.pop(handle, None)
        self._bump_floor(session, group.key, version)
        if tracer is not None:
            tracer.end_op(handle, now,
                          args={"tag": str(tag), "depth": depth})

    def _read_repair(self, group: ReplicaGroup, responses, merged: Version,
                     now: float, handle: Optional[str] = None) -> None:
        """Catch up the quorum members the merge observed stale.

        Only stores that *answered this quorum* are repaired (follower
        pairs that never met in a quorum drift until the lag fan-out or a
        later merge catches them -- anti-entropy between followers is a
        tracked follow-up).  The repairer holds the whole replication
        log, so an observed-stale store is brought fully current
        (idempotent applies; records the normal lag fan-out delivers
        later are simply skipped), charged like any other replication
        traffic -- the immediate alternative to waiting out the lag.
        """
        stats = self.router.stats
        for _, _, store in responses:
            if store is None or store.retired or store.version >= merged:
                continue
            applied = sum(1 for record in group.log[store.log_position:]
                          if store.apply(record))
            store.log_position = len(group.log)
            if not applied:
                continue
            stats.read_repairs += 1
            self.stats.read_repair_records += applied
            self.replication_cost += (applied
                                      * self.config.replication_unit_cost)
            self.failover_log.append(
                (now, "read-repair",
                 f"{group.key}: {store.pool} repaired to {store.version} "
                 f"({applied} record(s))")
            )
            if self._trace is not None and handle is not None:
                self._trace.child_instant(
                    handle, f"read-repair {store.pool}", "replica", now,
                    args={"pool": store.pool, "records": applied},
                )

    # -- write forwarding ----------------------------------------------------------------

    def invoke_write(self, key: str, value: bytes,
                     writer: Union[int, str] = 0,
                     at: Optional[float] = None,
                     session: Optional[str] = None,
                     via: Optional[str] = None) -> str:
        """Route one write through its ingress replica.

        ``via`` names the pool the write arrived at (defaults to the
        configured ingress discipline).  A write arriving at the primary
        queues directly, exactly like the pre-forwarding router; a write
        arriving anywhere else is *forwarded*: the primary sees it one
        forwarding hop later on the kernel clock.  Forwarding works
        during a failover freeze too -- the forwarded write queues at the
        frozen primary slot and flushes into the promoted epoch, so
        clients never need to learn the new primary.
        """
        self.router.shard(key)  # also creates the group
        group = self.groups[key]
        if via is not None and via != group.primary_pool \
                and group.follower(via) is None:
            # A mistyped (or foreign-group) ingress would be silently
            # "forwarded" with a fabricated distance -- plausible but
            # wrong accounting.  Only actual members take writes in.
            raise ValueError(
                f"pool {via!r} holds no replica of key {key!r}; "
                f"its members are {group.pools()}"
            )
        now = self._now()
        dispatch_at = now if at is None else max(at, now)
        ingress = via if via is not None else self._ingress_pool(group)
        if ingress == group.primary_pool:
            # Arrived at the primary: no hop to charge, no forward to
            # count -- even mid-failover, where the queued write simply
            # rides the frozen pending queue into the promoted epoch.
            # Like every replica-routed path, a nominal time already in
            # the past is clamped to the clock (a raw past timestamp
            # would ratchet the whole shard batch forward).
            return self.router._queue_write(
                key, value, writer=writer,
                at=None if at is None else dispatch_at, session=session)
        handle = self.router._new_replica_handle(key)
        self.router.stats.forwarded_writes += 1
        # Validation above plus the ingress discipline guarantee a live
        # follower store here (the primary case queued directly).
        store = group.follower(ingress)
        delay = self._scaled_latency(store.distance,
                                     self.config.forward_latency)
        self._forwarding.add(handle)
        arrive_at = dispatch_at + delay
        tracer = self._trace
        if tracer is not None:
            tracer.begin_op(handle, WRITE, key, dispatch_at,
                            args={"writer": writer, "session": session,
                                  "via": ingress})
            tracer.child_span(handle, f"forward-hop {ingress}", "replica",
                              dispatch_at, arrive_at,
                              args={"from": ingress,
                                    "to": group.primary_pool})
        self.kernel.schedule_at(
            max(arrive_at, now),
            lambda: self._deliver_forwarded_write(group, handle, bytes(value),
                                                  writer, arrive_at, session),
        )
        return handle

    def _ingress_pool(self, group: ReplicaGroup) -> str:
        """The pool a client's write arrives at under the configured
        ingress discipline (the seeded-nearest live replica for
        ``"nearest"``; dead primaries are never an ingress)."""
        if self.config.write_ingress == "primary":
            return group.primary_pool
        nearest = None
        if group.status == NORMAL and \
                self.membership.pool_alive(group.primary_pool):
            nearest = (group.primary_distance, 0, group.primary_pool)
        for order, store in enumerate(group.live_followers(), start=1):
            entry = (store.distance, order, store.pool)
            if nearest is None or entry < nearest:
                nearest = entry
        return group.primary_pool if nearest is None else nearest[2]

    def _deliver_forwarded_write(self, group: ReplicaGroup, handle: str,
                                 value: bytes, writer: Union[int, str],
                                 at: float, session: Optional[str]) -> None:
        """The forwarded write reaches the primary slot: queue and flush.

        While the group is frozen mid-failover the flush is a no-op and
        the write rides the frozen pending queue into the promoted epoch.
        """
        self._forwarding.discard(handle)
        self.router._queue_write(group.key, value, writer=writer, at=at,
                                 session=session, handle=handle)
        self.router.flush_key(group.key)

    # -- results / accounting ----------------------------------------------------------

    def result(self, handle: str) -> Optional[OperationResult]:
        return self._results.get(handle)

    def operation_cost(self, handle: str) -> float:
        """Cost of one served replica read (0 while pending/deferred):
        one store-read cost per merged quorum leg, or a single store-read
        cost for a follower serve."""
        if handle in self._handle_costs:
            return self._handle_costs[handle]
        if handle in self._results:
            return self.config.follower_read_cost
        return 0.0

    def incomplete_reads(self) -> int:
        """Replica reads in flight (follower serves and quorum fan-outs)
        plus reads deferred behind a failover."""
        return len(self._pending)

    def in_flight_forwards(self) -> int:
        """Forwarded writes still travelling follower -> primary."""
        return len(self._forwarding)

    def pending_read_invocations(self) -> List[Tuple[str, float]]:
        """``(key, global invocation time)`` of every replica read that may
        still complete -- the replica layer's contribution to the
        live-audit watermark (reads stranded by a pool crash are already
        excluded; they never respond)."""
        return list(self._pending_invocations.values())

    def sanitizer_watches(self) -> List[Tuple[str, Dict]]:
        """In-flight maps whose entries must all drain by idle.

        Each is popped on every completion *and* strand path; an entry
        surviving to quiescence means some path skipped its cleanup (the
        bug class where a stranded quorum kept its merge state forever).
        Consumed by :meth:`KernelSanitizer.watch_map
        <repro.sim.sanitizer.KernelSanitizer.watch_map>`.
        """
        return [
            ("replicas.pending_invocations", self._pending_invocations),
            ("replicas.quorums", self._quorums),
        ]

    @property
    def total_cost(self) -> float:
        """Replication traffic plus follower-read transfer cost."""
        return self.replication_cost + self.read_cost

    def histories(self) -> List[History]:
        """Follower-read histories, one per group, in key order."""
        return [self.groups[key].history for key in sorted(self.groups)]

    # -- membership reactions: failover and follower loss -----------------------------------

    @staticmethod
    def _check_pool_name(pool: str) -> None:
        """Reject the one pool name that would alias quorum client ids.

        Follower-served operations are stamped ``replica:<pool>/...`` and
        quorum merges ``replica:quorum/...``; a pool named ``quorum`` --
        or anything under a ``quorum/`` prefix, since the marker match is
        prefix-based -- would make the two classes indistinguishable to
        the auditing and injection helpers (the same discipline as the
        router's reserved ``@e<n>`` key suffix).
        """
        if pool == "quorum" or pool.startswith("quorum/"):
            raise ValueError(
                f"pool name {pool!r} is reserved by the replica layer "
                "(quorum-merged reads are stamped 'replica:quorum/...'); "
                "rename the pool"
            )

    def _on_membership_event(self, event: MembershipEvent) -> None:
        pool = event.node.pool
        if event.kind == JOIN:
            self._check_pool_name(pool)
            return
        if event.kind == RECOVER:
            if pool in self._dead_pools:
                self._dead_pools.discard(pool)
                # A previously dead pool is back: groups that could not
                # restore full redundancy for lack of live pools get
                # another provisioning pass.
                for key in sorted(self.groups):
                    group = self.groups[key]
                    if group.status == NORMAL and \
                            len(group.live_followers()) < self.config.r - 1:
                        self._provision_replacement(group, event.time)
            return
        if event.kind != FAIL:
            return
        if self.membership.pool_alive(pool):
            return  # the pool is degraded, not down; repair handles it
        if pool in self._dead_pools:
            # fail_pool emits one FAIL per node of an already-down pool;
            # only the first event does any work.
            return
        self._dead_pools.add(pool)
        self._pool_crashes[pool] = self._pool_crashes.get(pool, 0) + 1
        for key in sorted(self.groups):
            group = self.groups[key]
            if group.status == NORMAL and group.primary_pool == pool:
                self._begin_failover(group, event.time)
            else:
                store = group.follower(pool)
                if store is not None:
                    self._lose_follower(group, store, event.time)

    def _begin_failover(self, group: ReplicaGroup, time: float) -> None:
        group.status = FAILING_OVER
        self.stats.failovers_started += 1
        self.failover_log.append(
            (time, "primary-down",
             f"{group.key}: primary {group.primary_pool} down, "
             f"{len(group.live_followers())} follower(s) serving degraded reads")
        )
        promote_at = time + self.config.failover_detection_delay
        self.kernel.schedule_at(max(promote_at, self._now()),
                                lambda: self._promote(group))

    def _promote(self, group: ReplicaGroup) -> None:
        if group.status != FAILING_OVER:
            return
        now = self._now()
        successor = next(
            (store for store in group.live_followers()
             if self.membership.pool_alive(store.pool)),
            None,
        )
        if successor is None:
            group.status = UNSERVICEABLE
            self.failover_log.append(
                (now, "unserviceable",
                 f"{group.key}: no live follower to promote; "
                 f"{len(group.deferred_reads)} read(s) stranded")
            )
            return
        # Catch-up: every logged record the successor is missing must be
        # applied before it serves writes -- acknowledged writes survive
        # the primary by construction.  The records are *counted* now (the
        # catch-up duration is a detection-time estimate) but applied only
        # when the successor is seated, so degraded reads during the
        # window still observe the successor's genuinely stale state.
        missing = len([record for record in group.log[successor.log_position:]
                       if record.seq not in successor.applied])
        done_at = now + self.config.catch_up_per_record * missing
        self.kernel.schedule_at(
            max(done_at, now),
            lambda: self._finish_promotion(group, successor),
        )

    def _finish_promotion(self, group: ReplicaGroup,
                          successor: FollowerStore) -> None:
        if group.status != FAILING_OVER:
            return
        now = self._now()
        if successor.retired or not self.membership.pool_alive(successor.pool):
            # The successor's own pool died during the catch-up window.
            # Re-run the promotion choice over the remaining live followers
            # (or go unserviceable) instead of seating a primary on a dead
            # pool that no future membership event would ever dislodge.
            self._promote(group)
            return
        # Apply the catch-up at seat time (normal lag applies that landed
        # during the window are skipped by the idempotent applied-set).
        # If a successor dies mid-window the next candidate catches up and
        # is charged afresh -- both copies consumed real bandwidth.
        caught_up = 0
        for record in group.log[successor.log_position:]:
            if successor.apply(record):
                caught_up += 1
                self.replication_cost += self.config.replication_unit_cost
        successor.log_position = len(group.log)
        self.stats.catch_up_records += caught_up
        old_pool = group.primary_pool
        successor.retired = True
        shard = self.router.failover_shard(group.key, successor.pool,
                                           successor.value)
        group.primary_pool = successor.pool
        group.primary_distance = successor.distance
        group.epoch = shard.epoch
        group.status = NORMAL
        self.stats.promotions += 1
        self._hook_primary(group, shard)
        # Replicate the promotion snapshot so the surviving followers learn
        # the new epoch.
        self._log_snapshot(group, shard.epoch, successor.value)
        self.failover_log.append(
            (now, "promote",
             f"{group.key}: {successor.pool} promoted (epoch {shard.epoch}, "
             f"caught up {caught_up} record(s)); was {old_pool}")
        )
        # Un-freeze: flush the writes and reads queued during the failover.
        deferred = group.deferred_reads
        group.deferred_reads = []
        tracer = self._trace
        for handle, reader, at, session in deferred:
            self._pending.discard(handle)
            self._pending_invocations.pop(handle, None)
            if tracer is not None:
                started = self._freeze_started.pop(handle, None)
                if started is not None:
                    tracer.child_span(handle, "freeze-wait", "failover",
                                      started, now,
                                      args={"promoted": successor.pool})
            self._dispatch_primary_read(group, handle, reader, at, session)
        self.router.flush_key(group.key)
        # Restore r-way redundancy: the dead primary's slot is re-provisioned
        # on the next ring pool.
        self._provision_replacement(group, now)

    def _lose_follower(self, group: ReplicaGroup, store: FollowerStore,
                       time: float) -> None:
        store.retired = True
        self.stats.followers_lost += 1
        self.failover_log.append(
            (time, "follower-lost", f"{group.key}: follower {store.pool} down")
        )
        self._provision_replacement(group, time)

    def _provision_replacement(self, group: ReplicaGroup, time: float) -> None:
        """Schedule replacement followers on unused, live ring pools until
        the full ``r - 1`` redundancy is covered (live + already pending).

        This is the replica layer's "repair": it restores the *replica*,
        where the repair scheduler restores individual server slots.
        """
        if group.status == UNSERVICEABLE:
            return
        deficit = (self.config.r - 1 - len(group.live_followers())
                   - len(group.pending_provisions))
        if deficit <= 0:
            return
        used = set(group.pools()) | group.pending_provisions
        targets = [pool for pool in self._live_preference(group.key)
                   if pool not in used][:deficit]
        # Fewer targets than the deficit means there are not enough live
        # pools right now; a pool recovery re-triggers this pass.
        ready_at = max(time + self.config.provision_delay, self._now())
        for target in targets:
            group.pending_provisions.add(target)
            self.kernel.schedule_at(
                ready_at,
                lambda target=target: self._provision(group, target),
            )

    def _provision(self, group: ReplicaGroup, pool: str) -> None:
        group.pending_provisions.discard(pool)
        if group.status == UNSERVICEABLE:
            return
        if len(group.live_followers()) >= self.config.r - 1:
            return
        if not self.membership.pool_alive(pool) or pool in group.pools():
            # The pool chosen at schedule time died (or gained another of
            # the group's replicas) during the provisioning delay: re-run
            # the selection over the remaining live ring pools instead of
            # leaving the group under-replicated for good.
            self._provision_replacement(group, self._now())
            return
        now = self._now()
        store = FollowerStore(
            key=group.key, pool=pool,
            distance=self._distance(group.key, pool),
            version=group.latest_version, value=group.latest_value,
            created_at=now,
        )
        # Seeding copies the object once; the copy subsumes every record
        # logged so far (the seed *is* their net effect), so the whole log
        # counts as applied and only future commits replicate to the store.
        store.applied.update(record.seq for record in group.log)
        store.log_position = len(group.log)
        group.followers.append(store)
        self.replication_cost += self.config.replication_unit_cost
        self.stats.followers_provisioned += 1
        self.failover_log.append(
            (now, "follower-provisioned",
             f"{group.key}: new follower on {pool} at version "
             f"{store.version}")
        )

    # -- replica-aware rebalancing -------------------------------------------------------

    def _live_preference(self, key: str) -> List[str]:
        """The ring's preference walk for ``key``, dead pools skipped.

        The ring deliberately keeps failed pools (node failures do not
        change placement), but a *fully dead* pool cannot host anything:
        planning a primary or follower onto one would seat a replica that
        no future membership event ever revives.  Liveness filtering
        happens here, at planning time, so the plan converges back to the
        raw ring walk if the pool ever recovers.
        """
        ring = self.membership.ring
        return [pool for pool in ring.nodes_for(key, len(ring))
                if self.membership.pool_alive(pool)]

    def desired_placement(self) -> Dict[str, List[str]]:
        """The replica sets the current ring prescribes for tracked keys
        (first ``r`` *live* pools of each key's preference walk)."""
        return {key: self._live_preference(key)[:self.config.r]
                for key in sorted(self.groups)}

    def current_placement(self) -> Dict[str, List[str]]:
        return {key: self.groups[key].pools() for key in sorted(self.groups)}

    def apply_follower_changes(self, changes, time: float) -> None:
        """Execute the follower part of a replica-aware rebalance plan.

        Changes for groups that are mid-failover are skipped wholesale,
        mirroring the router's frozen-move skip: the plan was computed
        against a primary move that did not happen, and dropping a frozen
        group's only caught-up follower would strand the promotion.  A
        later rebalance realigns the group once it is serving again.
        """
        for change in changes:
            group = self.groups.get(change.key)
            if group is None or self.frozen(change.key):
                continue
            if change.action == DROP_FOLLOWER:
                store = group.follower(change.pool)
                if store is not None:
                    store.retired = True
            else:  # add
                ready_at = max(time + self.config.provision_delay, self._now())
                self.kernel.schedule_at(
                    ready_at,
                    lambda group=group, pool=change.pool:
                        self._provision(group, pool),
                )


__all__ = [
    "FAILING_OVER",
    "NORMAL",
    "UNSERVICEABLE",
    "FollowerStore",
    "LeastLoadedPolicy",
    "NearestPolicy",
    "PrimaryOnlyPolicy",
    "QuorumReadPolicy",
    "ReadRoutingPolicy",
    "ReplicaCoordinator",
    "ReplicaGroup",
    "ReplicaRecord",
    "ReplicaStats",
    "ReplicaView",
    "ReplicationConfig",
    "RoundRobinPolicy",
    "Version",
    "make_read_policy",
]
