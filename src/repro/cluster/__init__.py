"""The sharded cluster layer: placement, routing and background repair.

The core package simulates *one* LDS object per
:class:`~repro.core.system.LDSSystem`; this package adds the cluster
machinery a real deployment of the paper's two-layer algorithm needs to
serve millions of objects:

* :mod:`repro.cluster.ring` -- consistent hashing with virtual nodes
  (:class:`HashRing`), mapping object keys onto named server pools;
* :mod:`repro.cluster.placement` -- placement maps and deterministic
  :class:`RebalancePlan` generation from membership changes;
* :mod:`repro.cluster.membership` -- :class:`ClusterNode` / pool modelling
  with join / leave / fail / recover events;
* :mod:`repro.cluster.router` -- :class:`ObjectRouter`, the keyed
  ``write/read`` front-end that fans out to per-shard LDS instances with
  per-shard operation batching;
* :mod:`repro.cluster.repair` -- :class:`RepairScheduler`, rate-limited
  background L2 repairs driven by failure events;
* :mod:`repro.cluster.replicas` -- :class:`ReplicaCoordinator`, the
  replica-group layer: r-way placement via ``HashRing.nodes_for``,
  follower stores fed by kernel-scheduled replication lag, pluggable
  read-routing policies, and deterministic failover on pool loss;
* :mod:`repro.cluster.deployment` -- :class:`ShardedCluster`, the facade
  wiring all of the above together.
"""

from repro.cluster.ring import HashRing, RingBalance, derive_seed, stable_hash
from repro.cluster.placement import (
    FollowerChange,
    RebalancePlan,
    ShardMove,
    diff_placements,
    diff_replica_placements,
    placement_of,
    replica_placement_of,
)
from repro.cluster.membership import (
    ClusterNode,
    Membership,
    MembershipEvent,
)
from repro.cluster.router import ObjectRouter, RouterStats, Shard
from repro.cluster.repair import RepairScheduler, RepairStats, RepairTask
from repro.cluster.replicas import (
    FollowerStore,
    LeastLoadedPolicy,
    NearestPolicy,
    PrimaryOnlyPolicy,
    QuorumReadPolicy,
    ReadRoutingPolicy,
    ReplicaCoordinator,
    ReplicaGroup,
    ReplicationConfig,
    RoundRobinPolicy,
    make_read_policy,
)
from repro.cluster.deployment import ShardedCluster

__all__ = [
    "HashRing",
    "RingBalance",
    "derive_seed",
    "stable_hash",
    "FollowerChange",
    "RebalancePlan",
    "ShardMove",
    "diff_placements",
    "diff_replica_placements",
    "placement_of",
    "replica_placement_of",
    "ClusterNode",
    "Membership",
    "MembershipEvent",
    "ObjectRouter",
    "RouterStats",
    "Shard",
    "RepairScheduler",
    "RepairStats",
    "RepairTask",
    "FollowerStore",
    "LeastLoadedPolicy",
    "NearestPolicy",
    "PrimaryOnlyPolicy",
    "QuorumReadPolicy",
    "ReadRoutingPolicy",
    "ReplicaCoordinator",
    "ReplicaGroup",
    "ReplicationConfig",
    "RoundRobinPolicy",
    "make_read_policy",
    "ShardedCluster",
]
