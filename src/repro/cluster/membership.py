"""Cluster nodes, pools and the membership model.

A *pool* is a named deployment slot able to host many object shards; each
shard placed on a pool gets its own two-layer LDS instance whose simulated
server processes run "on" the pool's :class:`ClusterNode` members -- one
node per L1 server slot and one per L2 server slot of the configured
deployment.  The membership model tracks which nodes exist and whether
they are alive, and emits :class:`MembershipEvent` records on every
``join`` / ``leave`` / ``fail`` / ``recover`` transition:

* a pool enters the consistent-hash ring when its first node joins and
  leaves the ring when its last node leaves -- both transitions change
  shard placement and therefore trigger deterministic rebalancing plans
  (computed by the router over its tracked keys);
* a node *failure* does not change placement: the pool keeps serving with
  degraded redundancy and the :class:`~repro.cluster.repair.RepairScheduler`
  restores the failed server slot in the background.

Listeners (the router and the repair scheduler) subscribe with
:meth:`Membership.subscribe` and receive every event synchronously.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional

from repro.cluster.placement import placement_of
from repro.cluster.ring import HashRing

#: Node lifecycle states.
ALIVE = "alive"
FAILED = "failed"
LEFT = "left"

#: Node roles: which server slot of a shard deployment the node hosts.
L1_ROLE = "l1"
L2_ROLE = "l2"

#: Event kinds.
JOIN = "join"
LEAVE = "leave"
FAIL = "fail"
RECOVER = "recover"


@dataclass(frozen=True)
class ClusterNode:
    """One server slot of a pool (hosts the same-index server of every shard)."""

    pool: str
    role: str
    index: int
    status: str = ALIVE

    def __post_init__(self) -> None:
        if self.role not in (L1_ROLE, L2_ROLE):
            raise ValueError(f"node role must be '{L1_ROLE}' or '{L2_ROLE}'")
        if self.index < 0:
            raise ValueError("node index must be non-negative")

    @property
    def node_id(self) -> str:
        return f"{self.pool}/{self.role}-{self.index}"


@dataclass(frozen=True)
class MembershipEvent:
    """One membership transition, delivered synchronously to subscribers."""

    kind: str
    node: ClusterNode
    time: float
    #: True when the transition added or removed a pool from the hash ring
    #: (i.e. shard placement changed and a rebalance is due).
    ring_changed: bool = False


class Membership:
    """The registry of pools and nodes backing a sharded cluster."""

    def __init__(self, vnodes: int = 128) -> None:
        self.ring = HashRing(vnodes=vnodes)
        self._nodes: Dict[str, ClusterNode] = {}
        self._listeners: List[Callable[[MembershipEvent], None]] = []
        self.events: List[MembershipEvent] = []
        self._pool_weights: Dict[str, float] = {}

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def for_pools(cls, pool_names: Iterable[str], n1: int, n2: int,
                  vnodes: int = 128) -> "Membership":
        """Build a membership with one full node set (n1 + n2 slots) per pool."""
        membership = cls(vnodes=vnodes)
        for pool in pool_names:
            membership.join_pool(pool, n1=n1, n2=n2)
        return membership

    def join_pool(self, pool: str, n1: int, n2: int, weight: float = 1.0,
                  time: float = 0.0) -> List[MembershipEvent]:
        """Join every server slot of a new pool at once."""
        events = []
        self._pool_weights[pool] = weight
        for index in range(n1):
            events.append(self.join(ClusterNode(pool=pool, role=L1_ROLE, index=index),
                                    time=time))
        for index in range(n2):
            events.append(self.join(ClusterNode(pool=pool, role=L2_ROLE, index=index),
                                    time=time))
        return events

    def leave_pool(self, pool: str, time: float = 0.0) -> List[MembershipEvent]:
        """Remove every remaining node of a pool (the last leave drops the ring entry)."""
        return [self.leave(node.node_id, time=time)
                for node in self.pool_nodes(pool)]

    # -- transitions --------------------------------------------------------------

    def join(self, node: ClusterNode, time: float = 0.0) -> MembershipEvent:
        """Add a node; the pool enters the ring with its first node."""
        if node.node_id in self._nodes and self._nodes[node.node_id].status != LEFT:
            raise ValueError(f"node {node.node_id!r} is already a member")
        ring_changed = node.pool not in self.ring
        self._nodes[node.node_id] = replace(node, status=ALIVE)
        if ring_changed:
            self.ring.add_node(node.pool, weight=self._pool_weights.get(node.pool, 1.0))
        return self._emit(JOIN, self._nodes[node.node_id], time, ring_changed)

    def leave(self, node_id: str, time: float = 0.0) -> MembershipEvent:
        """Administratively remove a node; the pool leaves the ring with its last node."""
        node = self._require(node_id)
        if node.status == LEFT:
            raise ValueError(f"node {node_id!r} already left")
        self._nodes[node_id] = replace(node, status=LEFT)
        pool_empty = not self.pool_nodes(node.pool)
        if pool_empty:
            self.ring.remove_node(node.pool)
        return self._emit(LEAVE, self._nodes[node_id], time, pool_empty)

    def fail(self, node_id: str, time: float = 0.0) -> MembershipEvent:
        """Mark a node crashed; placement is unchanged (repair handles it)."""
        node = self._require(node_id)
        if node.status != ALIVE:
            raise ValueError(f"only alive nodes can fail (node {node_id!r} is "
                             f"{node.status})")
        self._nodes[node_id] = replace(node, status=FAILED)
        return self._emit(FAIL, self._nodes[node_id], time, False)

    def fail_pool(self, pool: str, time: float = 0.0) -> List[MembershipEvent]:
        """Crash every alive node of a pool *atomically*.

        All nodes flip to FAILED before the first event is delivered, so
        every listener observes the pool as already down
        (:meth:`pool_alive` is False) -- a correlated pool loss, not a
        sequence of independent crashes.  Delivering the failures one by
        one instead would let listeners react to a half-dead pool (e.g.
        the repair scheduler declaring shard-less nodes instantly whole
        while their neighbours are still alive).
        """
        victims = self.pool_nodes(pool, status=ALIVE)
        for node in victims:
            self._nodes[node.node_id] = replace(node, status=FAILED)
        return [self._emit(FAIL, self._nodes[node.node_id], time, False)
                for node in victims]

    def recover(self, node_id: str, time: float = 0.0) -> MembershipEvent:
        """Mark a failed node healthy again (called by the repair scheduler)."""
        node = self._require(node_id)
        if node.status != FAILED:
            raise ValueError(f"only failed nodes can recover (node {node_id!r} is "
                             f"{node.status})")
        self._nodes[node_id] = replace(node, status=ALIVE)
        return self._emit(RECOVER, self._nodes[node_id], time, False)

    def _emit(self, kind: str, node: ClusterNode, time: float,
              ring_changed: bool) -> MembershipEvent:
        event = MembershipEvent(kind=kind, node=node, time=time,
                                ring_changed=ring_changed)
        self.events.append(event)
        for listener in list(self._listeners):
            listener(event)
        return event

    # -- queries --------------------------------------------------------------------

    def _require(self, node_id: str) -> ClusterNode:
        node = self._nodes.get(node_id)
        if node is None:
            raise KeyError(f"unknown node {node_id!r}")
        return node

    def node(self, node_id: str) -> ClusterNode:
        """Look up a node by id."""
        return self._require(node_id)

    def pool_nodes(self, pool: str, status: Optional[str] = None) -> List[ClusterNode]:
        """Nodes of a pool that have not left, optionally filtered by status."""
        nodes = [n for n in self._nodes.values()
                 if n.pool == pool and n.status != LEFT]
        if status is not None:
            nodes = [n for n in nodes if n.status == status]
        return sorted(nodes, key=lambda n: (n.role, n.index))

    def pool_alive(self, pool: str) -> bool:
        """True while the pool has at least one alive node.

        A pool with *zero* alive nodes is **down**: it can serve nothing
        and in-pool repair is impossible.  The replica layer treats the
        transition to down as the primary-failure signal driving failover
        (a merely degraded pool keeps serving and is repaired in place).
        """
        return any(n.status == ALIVE for n in self.pool_nodes(pool))

    def failed_nodes(self, pool: Optional[str] = None) -> List[ClusterNode]:
        """Every currently failed node (optionally restricted to one pool).

        Ordered by ``(pool, role, index)`` -- the same canonical order as
        :meth:`pool_nodes` -- rather than by registry insertion order, so
        downstream consumers (the repair scheduler walks this to build
        its dispatch queue) never inherit an ordering that depends on the
        history of join/leave calls.
        """
        return sorted((n for n in self._nodes.values()
                       if n.status == FAILED and (pool is None or n.pool == pool)),
                      key=lambda n: (n.pool, n.role, n.index))

    @property
    def pools(self) -> List[str]:
        """Pools currently in the ring (i.e. eligible to own shards)."""
        return self.ring.nodes

    def pool_for(self, key: str) -> str:
        """The pool that owns ``key`` under the current ring."""
        return self.ring.node_for(key)

    def placement(self, keys: Iterable[str]) -> Dict[str, str]:
        """The placement the current ring prescribes for ``keys``."""
        return placement_of(self.ring, keys)

    # -- observation -------------------------------------------------------------------

    def subscribe(self, listener: Callable[[MembershipEvent], None]) -> None:
        """Register a callback receiving every future membership event."""
        self._listeners.append(listener)


__all__ = [
    "ALIVE", "FAILED", "LEFT",
    "L1_ROLE", "L2_ROLE",
    "JOIN", "LEAVE", "FAIL", "RECOVER",
    "ClusterNode", "MembershipEvent", "Membership",
]
