"""Runtime sanitizer for the global simulation kernel.

The static pass in :mod:`repro.lint` catches hazard *patterns*; this
module catches hazard *executions*.  :meth:`GlobalScheduler.enable_sanitizer
<repro.sim.kernel.GlobalScheduler.enable_sanitizer>` attaches a
:class:`KernelSanitizer` to the pump, which then checks four invariants
that every determinism and noninterference guarantee in this repo
ultimately rests on:

``clock-regression``
    Per-source local clocks and the global clock are monotonically
    non-decreasing.  A callback that rewinds a simulator's clock (or a
    kernel bug that executes an event before *now*) corrupts every
    subsequent timestamp.

``past-schedule``
    No foreground event is scheduled into its source's local past.  The
    underlying :class:`~repro.net.simulator.Simulator` raises a bare
    ``ValueError`` for this; the sanitizer's schedule guard sees the
    attempt first and reports it with source context, and keeps a
    record even in non-strict mode.  Sanctioned *clamps* -- the kernel's
    probe re-arm clamp and the router's shard clamp, which contain this
    bug class by design -- are recorded as :attr:`KernelSanitizer.clamps`
    diagnostics rather than violations, so a run can be audited for how
    often containment actually fired (the generalisation of the probe
    re-arm clamp fix).

``probe-mutation``
    Telemetry probes are pure observation.  Around every probe the
    sanitizer snapshots the foreground surface (global clock,
    fingerprint, event counts, and each non-telemetry source's local
    clock, queue depth and head time) and verifies the probe left all
    of it untouched -- the runtime twin of the static ``SD01`` rule and
    of the telemetry-on/off byte-identity suites.

``pending-leak``
    Registered pending-invocation maps (see :meth:`watch_map`) must be
    empty once the simulation drains.  An entry left behind means an
    operation path forgot its cleanup -- the bug class where a stranded
    quorum kept its callback map entry forever.

In strict mode (the default) the first violation raises
:class:`SanitizerError`; in recording mode violations accumulate on
:attr:`KernelSanitizer.violations` for post-run assertions.  Like the
pump profiler, the sanitizer never feeds the fingerprint, the clock or
the stats, so a sanitized run is byte-identical to an unsanitized one;
the per-event cost when off is a single ``is None`` check.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Dict, List, Optional, Sized, Tuple

#: Violation kinds (also the vocabulary of :class:`SanitizerViolation`).
CLOCK_REGRESSION = "clock-regression"
PAST_SCHEDULE = "past-schedule"
PROBE_MUTATION = "probe-mutation"
PENDING_LEAK = "pending-leak"


@dataclass(frozen=True)
class SanitizerViolation:
    """One detected invariant breach."""

    kind: str
    #: Source name (or watch name for ``pending-leak``).
    source: str
    #: Global virtual time at detection.
    global_time: float
    detail: str

    def format(self) -> str:
        return (f"[{self.kind}] source={self.source} "
                f"t={self.global_time!r}: {self.detail}")


@dataclass(frozen=True)
class ClampEvent:
    """A sanctioned past-schedule containment that actually fired."""

    #: ``"probe"`` (kernel probe re-arm) or ``"shard"`` (router clamp).
    kind: str
    source: str
    #: Requested and effective times, both on the global timeline.
    requested: float
    effective: float
    global_time: float


class SanitizerError(RuntimeError):
    """Raised in strict mode on the first violation."""

    def __init__(self, violation: SanitizerViolation) -> None:
        super().__init__(violation.format())
        self.violation = violation


class KernelSanitizer:
    """Checks kernel invariants at runtime; see the module docstring."""

    def __init__(self, kernel, strict: bool = True) -> None:
        self._kernel = kernel
        self.strict = strict
        self.violations: List[SanitizerViolation] = []
        #: Sanctioned clamps observed (diagnostics, never violations).
        self.clamps: List[ClampEvent] = []
        self.events_checked = 0
        self.probes_checked = 0
        #: Per-source high-water mark of the local clock.
        self._local_marks: Dict[str, float] = {}
        self._watches: List[Tuple[str, Sized]] = []

    @property
    def ok(self) -> bool:
        return not self.violations

    def _report(self, kind: str, source: str, detail: str) -> None:
        violation = SanitizerViolation(
            kind=kind, source=source,
            global_time=self._kernel.now, detail=detail)
        self.violations.append(violation)
        if self.strict:
            raise SanitizerError(violation)

    # -- source attachment -------------------------------------------------------

    def attach_source(self, source) -> None:
        """Start guarding a kernel source (idempotent per name)."""
        from repro.sim.kernel import TELEMETRY_SOURCE

        if source.name == TELEMETRY_SOURCE:
            # Probe scheduling goes through the kernel's re-arm clamp,
            # which already forbids the local past; guarding it again
            # would only tax the observation path.
            return
        self._local_marks[source.name] = source.simulator.now
        source.simulator.set_schedule_guard(
            lambda time, s=source: self._on_schedule(s, time))

    def detach_source(self, source) -> None:
        source.simulator.set_schedule_guard(None)
        self._local_marks.pop(source.name, None)

    def _on_schedule(self, source, local_time: float) -> None:
        if local_time < source.simulator.now:
            self._report(
                PAST_SCHEDULE, source.name,
                f"schedule_at(local={local_time!r}) is before the source's "
                f"local clock {source.simulator.now!r} "
                f"(global {source.to_global(local_time)!r} < "
                f"{source.global_now!r})")

    # -- per-event monotonicity --------------------------------------------------

    def before_event(self, source, global_time: float) -> None:
        self.events_checked += 1
        if global_time < self._kernel.now:
            self._report(
                CLOCK_REGRESSION, source.name,
                f"event at global {global_time!r} would rewind the global "
                f"clock from {self._kernel.now!r}")

    def after_event(self, source) -> None:
        local_now = source.simulator.now
        mark = self._local_marks.get(source.name)
        if mark is not None and local_now < mark:
            self._report(
                CLOCK_REGRESSION, source.name,
                f"local clock moved backwards: {local_now!r} < high-water "
                f"mark {mark!r} (a callback rewound the clock)")
        else:
            self._local_marks[source.name] = local_now

    # -- probe write barrier -----------------------------------------------------

    def _foreground_snapshot(self):
        from repro.sim.kernel import TELEMETRY_SOURCE

        kernel = self._kernel
        per_source = []
        for source in kernel.sources():
            if source.name == TELEMETRY_SOURCE:
                continue
            sim = source.simulator
            # peek first: it pops cancelled head events, so the pending
            # count that follows is stable across an inert probe.
            head = sim.peek_time()
            per_source.append((source.name, sim.now, sim.events_processed,
                               sim.pending_events, head))
        return (kernel.now, kernel.fingerprint, kernel.stats.events_total,
                tuple(per_source))

    def before_probe(self):
        self.probes_checked += 1
        return self._foreground_snapshot()

    def after_probe(self, before) -> None:
        after = self._foreground_snapshot()
        if after == before:
            return
        self._report(PROBE_MUTATION, self._describe_probe_diff(before, after),
                     "probe mutated foreground state: "
                     + self._probe_diff_detail(before, after))

    @staticmethod
    def _describe_probe_diff(before, after) -> str:
        from repro.sim.kernel import TELEMETRY_SOURCE

        before_sources = {entry[0]: entry for entry in before[3]}
        for entry in after[3]:
            if before_sources.get(entry[0]) != entry:
                return entry[0]
        return TELEMETRY_SOURCE

    @staticmethod
    def _probe_diff_detail(before, after) -> str:
        labels = ("global clock", "fingerprint", "events_total")
        for label, was, now in zip(labels, before[:3], after[:3]):
            if was != now:
                return f"{label} changed {was!r} -> {now!r}"
        before_sources = {entry[0]: entry for entry in before[3]}
        after_sources = {entry[0]: entry for entry in after[3]}
        for name, entry in after_sources.items():
            was = before_sources.get(name)
            if was != entry:
                if was is None:
                    return f"source {name!r} appeared during the probe"
                fields = ("now", "events_processed", "pending_events", "head")
                for field_name, old, new in zip(fields, was[1:], entry[1:]):
                    if old != new:
                        return (f"source {name!r} {field_name} changed "
                                f"{old!r} -> {new!r}")
        missing = set(before_sources) - set(after_sources)
        if missing:
            return f"source {sorted(missing)[0]!r} vanished during the probe"
        return "foreground snapshot changed"

    # -- sanctioned clamp diagnostics --------------------------------------------

    def note_clamp(self, kind: str, source: str,
                   requested: float, effective: float) -> None:
        """Record a sanctioned past-schedule containment firing."""
        self.clamps.append(ClampEvent(
            kind=kind, source=source, requested=requested,
            effective=effective, global_time=self._kernel.now))

    # -- end-of-run leak detection -----------------------------------------------

    def watch_map(self, name: str, mapping: Sized) -> None:
        """Register a pending-invocation map that must drain to empty.

        The sanitizer holds the mapping by reference and checks
        ``len() == 0`` from :meth:`check_leaks` (which the kernel's
        ``run_until_idle`` invokes once every source is drained).
        """
        self._watches.append((name, mapping))

    def check_leaks(self) -> List[SanitizerViolation]:
        """Report every watched map that still holds entries."""
        found: List[SanitizerViolation] = []
        for name, mapping in self._watches:
            count = len(mapping)
            if not count:
                continue
            sample = list(islice(iter(mapping), 4))
            before = len(self.violations)
            self._report(
                PENDING_LEAK, name,
                f"{count} entr{'y' if count == 1 else 'ies'} left pending "
                f"at idle (e.g. {sample!r}): an operation path skipped its "
                f"cleanup")
            found.extend(self.violations[before:])
        return found


__all__ = [
    "KernelSanitizer", "SanitizerError", "SanitizerViolation", "ClampEvent",
    "CLOCK_REGRESSION", "PAST_SCHEDULE", "PROBE_MUTATION", "PENDING_LEAK",
]
