"""The global-clock simulation kernel.

Each :class:`~repro.core.system.LDSSystem` owns a private
:class:`~repro.net.simulator.Simulator`, so a sharded cluster is a federation
of independent event queues.  Running them one after another (the legacy
``run_until_idle`` loop) destroys every cross-shard timing phenomenon:
background repair slots never compete with foreground load, migrations never
overlap writes, and correlated failures collapse into sequential ones.

The :class:`GlobalScheduler` fixes that by multiplexing any number of
per-shard simulators -- plus its own kernel event queue for scenario actions
and workload arrivals -- onto **one monotonic global clock**:

* every registered simulator becomes a :class:`SimulatorSource` with a fixed
  ``offset`` mapping its local clock onto the global one (``global = offset +
  local``); a shard created at global time *g* simply gets ``offset = g``;
* each :meth:`step` picks the source whose next pending event has the
  smallest global time and executes exactly that one event, so events from
  different shards interleave exactly as their timestamps dictate;
* ties are broken by source registration order, and each simulator's own
  queue is FIFO at equal times, so the merged order is a pure function of
  the event timestamps -- deterministic under a fixed seed.

The kernel also maintains a rolling CRC *fingerprint* of the executed
``(source, time)`` sequence, giving determinism tests an O(1)-memory
signature of the entire global event order, and (optionally) a full trace.

Two observability hooks ride on the pump (see :mod:`repro.obs`), both
designed to leave that fingerprint untouched:

* :meth:`GlobalScheduler.schedule_probe` places observation-only events
  on a dedicated ``telemetry`` source that executes at its scheduled
  instant but bypasses the global clock, the stats, the fingerprint and
  the trace -- so a sampled run is byte-identical to an unsampled one.
  The cluster sampler, the live session auditor
  (:mod:`repro.obs.live_audit`) and the availability monitor
  (:mod:`repro.obs.availability`) are all probe families on this
  source;
* :meth:`GlobalScheduler.enable_profiling` attributes every executed
  event to its callback's qualified name (count, simulated-time and
  wall-time), feeding the flamegraph work; off by default, and the
  per-event cost when off is a single ``is None`` check;
* :meth:`GlobalScheduler.enable_sanitizer` turns on runtime invariant
  checking (clock monotonicity, no scheduling into a source's local
  past, probe purity, pending-map leaks -- see
  :mod:`repro.sim.sanitizer`) with the same off-cost and the same
  byte-identity guarantee.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.net.simulator import EventHandle, Simulator

#: Name of the kernel's own event queue (scenario actions, arrivals).
KERNEL_SOURCE = "kernel"

#: Name of the observation-only probe queue (never fingerprinted).
TELEMETRY_SOURCE = "telemetry"


class SimulatorSource:
    """One per-shard simulator adapted onto the global clock."""

    def __init__(self, name: str, simulator: Simulator, offset: float = 0.0) -> None:
        self.name = name
        self.simulator = simulator
        self.offset = offset
        self.events_executed = 0
        #: Registration order; the kernel breaks global-time ties by it.
        self.order = 0

    def next_time(self) -> Optional[float]:
        """Global time of the source's next pending event (None when idle)."""
        local = self.simulator.peek_time()
        return None if local is None else self.offset + local

    def step(self) -> bool:
        """Run exactly one event of the underlying simulator."""
        ran = self.simulator.step()
        if ran:
            self.events_executed += 1
        return ran

    def to_global(self, local_time: float) -> float:
        return self.offset + local_time

    def to_local(self, global_time: float) -> float:
        return global_time - self.offset

    @property
    def global_now(self) -> float:
        """The source's local clock expressed on the global timeline."""
        return self.offset + self.simulator.now


@dataclass
class KernelStats:
    """Interleaving statistics of the merged execution."""

    events_total: int = 0
    #: Events executed per source name (retains unregistered sources).
    events_by_source: Dict[str, int] = field(default_factory=dict)
    #: Number of consecutive event pairs drawn from *different* sources --
    #: the direct measure of cross-shard interleaving (0 means the merged
    #: execution degenerated into per-shard blocks).
    context_switches: int = 0
    _last_source: Optional[str] = None

    def record(self, source_name: str) -> None:
        self.events_total += 1
        self.events_by_source[source_name] = (
            self.events_by_source.get(source_name, 0) + 1
        )
        if self._last_source is not None and self._last_source != source_name:
            self.context_switches += 1
        self._last_source = source_name

    @property
    def switch_rate(self) -> float:
        """Fraction of event transitions that crossed source boundaries."""
        if self.events_total <= 1:
            return 0.0
        return self.context_switches / (self.events_total - 1)

    def busiest_sources(self, limit: int = 5) -> List[Tuple[str, int]]:
        ranked = sorted(self.events_by_source.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:limit]


class GlobalScheduler:
    """Merges many simulators into one deterministic global event pump."""

    def __init__(self, record_trace: bool = False) -> None:
        self._sources: Dict[str, SimulatorSource] = {}
        self._retired_offsets: Dict[str, float] = {}
        self._now = 0.0
        #: Lazy min-heap over source head times: (global_time, registration
        #: order, source name, entry version).  An entry is valid only while
        #: its version matches ``_heap_versions[name]`` and its time matches
        #: the source's current head; anything else is discarded (and
        #: refreshed) on pop, so stale entries are tolerated instead of
        #: removed eagerly.  Sources push fresh entries through their
        #: simulator's head listener whenever scheduling moves a head
        #: earlier, which keeps the heap sound without rescanning every
        #: source per event: each step costs O(log S) instead of O(S).
        self._heap: List[Tuple[float, int, str, int]] = []
        self._heap_versions: Dict[str, int] = {}
        self._registrations = 0
        self.stats = KernelStats()
        self.record_trace = record_trace
        #: Full (global_time, source_name) trace when ``record_trace`` is on.
        self.trace: List[Tuple[float, str]] = []
        self._fingerprint = 0
        #: Lazily created on the first :meth:`schedule_probe`.
        self._telemetry_source: Optional[SimulatorSource] = None
        #: Pump profile (:class:`repro.obs.profile.PumpProfile`) or None.
        self._profile = None
        #: Runtime sanitizer (:class:`repro.sim.sanitizer.KernelSanitizer`)
        #: or None; like the profile, checked with a single ``is None``
        #: per event when off.
        self._sanitizer = None
        # The kernel's own queue carries scenario actions and workload
        # arrivals; registering it first makes kernel events win every tie
        # against shard events at the same global time, so an arrival at t
        # is injected before the shards advance past t.
        self._kernel_sim = Simulator()
        self.register_simulator(self._kernel_sim, name=KERNEL_SOURCE, offset=0.0)

    # -- source registry --------------------------------------------------------

    @property
    def now(self) -> float:
        """The current global virtual time (monotonically non-decreasing)."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self.stats.events_total

    def register_simulator(self, simulator: Simulator, name: str,
                           offset: Optional[float] = None) -> SimulatorSource:
        """Adopt a simulator as an event source on the global clock.

        When ``offset`` is omitted the simulator's *current* local time is
        aligned with the *current* global time, which is the right thing
        both for fresh simulators (local 0 == now) and for simulators
        attached after they already ran on their own.
        """
        if name in self._sources:
            raise ValueError(f"duplicate event source {name!r}")
        if offset is None:
            offset = self._now - simulator.now
        source = SimulatorSource(name=name, simulator=simulator, offset=offset)
        source.order = self._registrations
        self._registrations += 1
        self._sources[name] = source
        self._retired_offsets.pop(name, None)
        simulator.set_head_listener(lambda: self._push_head(name))
        self._push_head(name)
        if self._sanitizer is not None:
            self._sanitizer.attach_source(source)
        return source

    def unregister(self, name: str) -> None:
        """Drop a source (e.g. a drained pre-migration shard).

        The offset stays queryable through :meth:`offset_of` for
        inspection; the authoritative history-to-global mapping lives with
        the owner of the source (the router keeps its own per-epoch offset
        map, which also covers epochs that never were kernel sources).
        """
        source = self._sources.pop(name)
        source.simulator.set_head_listener(None)
        if self._sanitizer is not None:
            self._sanitizer.detach_source(source)
        self._heap_versions.pop(name, None)
        self._retired_offsets[name] = source.offset

    def source(self, name: str) -> SimulatorSource:
        return self._sources[name]

    def sources(self) -> List[SimulatorSource]:
        return list(self._sources.values())

    def offset_of(self, name: str) -> float:
        """Offset of a live *or retired* source."""
        live = self._sources.get(name)
        if live is not None:
            return live.offset
        return self._retired_offsets[name]

    # -- kernel events -----------------------------------------------------------

    def schedule_at(self, time: float, callback) -> EventHandle:
        """Schedule a kernel event (scenario action, arrival) at a global time."""
        if time < self._now:
            raise ValueError("cannot schedule a kernel event in the global past")
        return self._kernel_sim.schedule_at(time, callback)

    def schedule(self, delay: float, callback) -> EventHandle:
        """Schedule a kernel event ``delay`` global time units from now."""
        if delay < 0:
            raise ValueError("cannot schedule a kernel event in the global past")
        return self.schedule_at(self._now + delay, callback)

    # -- telemetry probes ----------------------------------------------------------

    def schedule_probe(self, time: float, callback) -> EventHandle:
        """Schedule an observation-only probe at a global time.

        Probes execute on the merged pump -- so a sampler sees cluster
        state exactly as of its scheduled instant -- but are invisible to
        the determinism surface: they never advance the global clock, and
        they are excluded from :attr:`stats`, the fingerprint and the
        recorded trace.  Not advancing the clock matters beyond cosmetics:
        a lagging source's clamped head executes *at* the global clock, so
        a probe that moved the clock would change real event times.

        Probe callbacks must be pure observation (read state, write
        telemetry sinks); scheduling foreground work from one would break
        the telemetry-on/off byte-identity the test suite enforces.
        """
        if time < self._now:
            raise ValueError("cannot schedule a probe in the global past")
        if self._telemetry_source is None:
            self._telemetry_source = self.register_simulator(
                Simulator(), name=TELEMETRY_SOURCE, offset=self._now
            )
        source = self._telemetry_source
        # The telemetry source's local clock may legitimately be ahead of
        # the global clock: final drain ticks run beyond the last
        # foreground event without advancing ``now``.  A probe re-arming
        # from global time (e.g. two probe families with different
        # intervals) must not land in the source's local past.
        local = max(source.to_local(time), source.simulator.now)
        if self._sanitizer is not None and local > source.to_local(time):
            self._sanitizer.note_clamp(
                "probe", TELEMETRY_SOURCE,
                requested=time, effective=source.to_global(local))
        return source.simulator.schedule_at(local, callback)

    def pending_work(self) -> bool:
        """True while any non-telemetry source has a pending event.

        This is what a self-re-arming probe checks before scheduling its
        next tick; re-arming unconditionally would keep an otherwise
        drained simulation pumping forever.
        """
        return any(
            source.next_time() is not None
            for name, source in self._sources.items()
            if name != TELEMETRY_SOURCE
        )

    # -- pump profiling ------------------------------------------------------------

    def enable_profiling(self):
        """Turn on per-event-type pump attribution; returns the profile.

        Idempotent.  The profile never feeds the fingerprint or the clock,
        so profiled runs stay byte-identical to unprofiled ones.
        """
        if self._profile is None:
            from repro.obs.profile import PumpProfile

            self._profile = PumpProfile()
        return self._profile

    @property
    def profile(self):
        """The active :class:`PumpProfile`, or None when profiling is off."""
        return self._profile

    # -- runtime sanitizer ---------------------------------------------------------

    def enable_sanitizer(self, strict: bool = True):
        """Turn on runtime invariant checking; returns the sanitizer.

        Idempotent (``strict`` only applies on first call).  The
        sanitizer guards clock monotonicity, scheduling into a source's
        local past, probe purity and end-of-run pending-map leaks (see
        :mod:`repro.sim.sanitizer`).  It never feeds the fingerprint,
        the clock or the stats, so a sanitized run stays byte-identical
        to an unsanitized one.
        """
        if self._sanitizer is None:
            from repro.sim.sanitizer import KernelSanitizer

            self._sanitizer = KernelSanitizer(self, strict=strict)
            for source in self._sources.values():
                self._sanitizer.attach_source(source)
        return self._sanitizer

    @property
    def sanitizer(self):
        """The active :class:`KernelSanitizer`, or None when off."""
        return self._sanitizer

    # -- the event pump -------------------------------------------------------------

    def _push_head(self, name: str) -> None:
        """(Re)index a source's current head time in the heap."""
        source = self._sources.get(name)
        if source is None:
            return
        time = source.next_time()
        if time is None:
            return
        version = self._heap_versions.get(name, 0) + 1
        self._heap_versions[name] = version
        heapq.heappush(self._heap, (time, source.order, name, version))

    def _pop_valid(self) -> Optional[Tuple[float, int, str, int]]:
        """Pop the earliest heap entry that still describes a real head."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            time, _order, name, version = entry
            source = self._sources.get(name)
            if source is None or version != self._heap_versions.get(name):
                continue
            actual = source.next_time()
            if actual is None:
                continue
            if actual != time:
                # The head moved without a listener notification (an event
                # at the front was cancelled): refresh and keep looking.
                self._push_head(name)
                continue
            return entry
        return None

    def peek(self) -> Optional[Tuple[float, str]]:
        """Global time and source of the next event, or None when all idle.

        A source whose head event maps before the global clock (possible
        when a simulator was attached mid-flight, or when a lagging shard
        schedules "now" locally) is clamped to *now* -- the global clock
        never moves backwards.  Ties -- including everything clamped to
        *now* -- go to the earliest-registered source, exactly as the
        pre-heap linear scan resolved them.
        """
        best = self._pop_valid()
        if best is None:
            return None
        if best[0] > self._now:
            # All other valid entries are at or after this raw time, so the
            # heap's (time, registration order) minimum is the winner.
            heapq.heappush(self._heap, best)
            return best[0], best[2]
        # One or more heads are clamped to the current global time; among
        # everything effectively at *now* the first-registered source wins,
        # regardless of how far behind its raw head time is.
        clamped = [best]
        while True:
            entry = self._pop_valid()
            if entry is None:
                break
            if entry[0] <= self._now:
                clamped.append(entry)
            else:
                heapq.heappush(self._heap, entry)
                break
        winner = min(clamped, key=lambda entry: entry[1])
        for entry in clamped:
            heapq.heappush(self._heap, entry)
        return self._now, winner[2]

    def step(self) -> bool:
        """Execute the globally earliest pending event; False when idle."""
        head = self.peek()
        if head is None:
            return False
        self._execute(head)
        return True

    def _execute(self, head: Tuple[float, str]) -> None:
        time, name = head
        source = self._sources[name]
        profile = self._profile
        sanitizer = self._sanitizer
        if profile is not None:
            label = profile.label_for(source)
            wall_started = perf_counter()  # simlint: disable=ND02 -- wall-clock profiling only; never feeds sim state
        if name == TELEMETRY_SOURCE:
            # Observation-only probe: run it, keep its head indexed, and
            # leave the clock / stats / fingerprint / trace exactly as a
            # telemetry-free run would have them.  The sanitizer's write
            # barrier verifies that "exactly" at runtime.
            if sanitizer is not None:
                probe_snapshot = sanitizer.before_probe()
            source.step()
            self._push_head(name)
            if sanitizer is not None:
                sanitizer.after_probe(probe_snapshot)
            if profile is not None:
                profile.record(name, label, 0.0,
                               perf_counter() - wall_started)  # simlint: disable=ND02 -- wall-clock profiling only; never feeds sim state
            return
        if sanitizer is not None:
            sanitizer.before_event(source, time)
        sim_delta = time - self._now
        self._now = time
        source.step()
        if sanitizer is not None:
            sanitizer.after_event(source)
        # The executed source's head moved; its old heap entry is stale
        # (version bump) and the new head gets indexed.  Heads of *other*
        # sources the event scheduled onto were re-indexed synchronously by
        # their simulators' head listeners.
        self._push_head(name)
        self.stats.record(name)
        self._fingerprint = zlib.crc32(
            f"{name}@{time!r}".encode(), self._fingerprint
        )
        if self.record_trace:
            self.trace.append((time, name))
        if profile is not None:
            profile.record(name, label, sim_delta,
                           perf_counter() - wall_started)  # simlint: disable=ND02 -- wall-clock profiling only; never feeds sim state

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Pump merged events, bounded by global time and/or event count.

        The clock never rewinds: an ``until`` already in the past leaves it
        untouched (matching :meth:`Simulator.run`).
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                return
            head = self.peek()
            if head is None:
                break
            if until is not None and head[0] > until:
                break
            self._execute(head)
            executed += 1
        if until is not None and until > self._now:
            self._now = until

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Pump until every source is drained; guards against runaways.

        With the sanitizer enabled, draining to idle also runs its
        pending-map leak check -- the one invariant that is only
        meaningful once no event could still perform the cleanup.
        """
        executed = 0
        while self.step():
            executed += 1
            if executed > max_events:
                raise RuntimeError(
                    "global simulation exceeded the maximum event budget"
                )
        if self._sanitizer is not None:
            self._sanitizer.check_leaks()

    @property
    def fingerprint(self) -> int:
        """CRC32 over the executed (source, time) sequence.

        Two runs with the same seed must produce the same fingerprint; this
        is the determinism regression signal.
        """
        return self._fingerprint


__all__ = ["GlobalScheduler", "KernelStats", "SimulatorSource",
           "KERNEL_SOURCE", "TELEMETRY_SOURCE"]
