"""The global-clock simulation subsystem.

The cluster layer federates many per-shard discrete-event simulators; this
package merges them onto **one monotonic global clock** so cross-shard
timing phenomena -- repair slots competing with foreground load, migrations
overlapping writes, correlated failures, latency-regime shifts -- are
actually simulated instead of serialised away:

* :mod:`repro.sim.kernel` -- :class:`GlobalScheduler`, the unified event
  pump multiplexing per-shard simulators (plus its own kernel queue for
  scenario actions and workload arrivals) with deterministic merged
  ordering under a fixed seed;
* :mod:`repro.sim.scenario` -- declarative timed scripts
  (:class:`Scenario` / :class:`ScenarioEngine`) of crash/recover, pool
  join/leave, latency-regime shifts and workload phases, with four shipped
  scenarios;
* :mod:`repro.sim.harness` -- :class:`ClusterSimulation`, the facade
  wiring a seeded :class:`~repro.cluster.deployment.ShardedCluster` to the
  kernel and exposing workload arrival scheduling, scenario application
  and the merged global timeline;
* :mod:`repro.sim.sanitizer` -- :class:`KernelSanitizer`, opt-in runtime
  invariant checking on the pump (clock monotonicity, local-past
  scheduling, probe purity, pending-map leaks) with zero fingerprint
  impact.
"""

from repro.sim.kernel import (
    GlobalScheduler,
    KernelStats,
    SimulatorSource,
    KERNEL_SOURCE,
    TELEMETRY_SOURCE,
)
from repro.sim.scenario import (
    Scenario,
    ScenarioAction,
    ScenarioEngine,
    correlated_pool_failure,
    degraded_reads_during_catch_up,
    flash_crowd,
    forwarded_writes_during_failover,
    migration_under_load,
    quorum_reads_under_lag,
    repair_under_load,
    replica_failover_under_load,
)
from repro.sim.harness import ClusterSimulation
from repro.sim.sanitizer import (
    KernelSanitizer,
    SanitizerError,
    SanitizerViolation,
)

__all__ = [
    "GlobalScheduler",
    "KernelStats",
    "SimulatorSource",
    "KernelSanitizer",
    "SanitizerError",
    "SanitizerViolation",
    "KERNEL_SOURCE",
    "TELEMETRY_SOURCE",
    "Scenario",
    "ScenarioAction",
    "ScenarioEngine",
    "ClusterSimulation",
    "repair_under_load",
    "migration_under_load",
    "correlated_pool_failure",
    "flash_crowd",
    "replica_failover_under_load",
    "degraded_reads_during_catch_up",
    "quorum_reads_under_lag",
    "forwarded_writes_during_failover",
]
