"""The global-clock cluster harness.

:class:`ClusterSimulation` is the one-stop entry point for cross-shard
timing experiments: it builds a :class:`~repro.cluster.deployment.ShardedCluster`
whose every stochastic component derives from one root seed, attaches a
:class:`~repro.sim.kernel.GlobalScheduler`, wraps every per-shard latency
model in a shared :class:`~repro.net.latency.LatencyRegime` (so scenarios
can shift the whole cluster between latency regimes), and exposes:

* the keyed driving API (``invoke_write`` / ``invoke_read`` /
  ``run_until_idle`` / ``history`` / ``check_atomicity`` / ...), so
  :class:`~repro.workloads.runner.KeyedWorkloadRunner` drives it exactly
  like a router -- except arrivals, repairs and migrations now interleave
  on one global clock;
* :meth:`add_workload` -- schedule a keyed workload's operations as timed
  *arrival events* on the kernel (each operation is injected into its
  shard at its nominal global time, creating the shard then if needed);
* :meth:`apply` -- run a declarative :class:`~repro.sim.scenario.Scenario`;
* :meth:`timeline` -- the merged global timeline of foreground operations,
  background repairs, migrations and scenario actions, which is what the
  examples print and the interleaving tests assert on.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from typing import Union

from repro.cluster.deployment import ShardedCluster, seeded_latency_factory
from repro.cluster.repair import GAVE_UP
from repro.cluster.replicas import ReadRoutingPolicy, ReplicationConfig
from repro.consistency.history import History
from repro.consistency.linearizability import AtomicityViolation
from repro.consistency.sessions import ClusterAuditReport, check_sessions
from repro.core.config import LDSConfig
from repro.net.latency import LatencyRegime
from repro.sim.kernel import GlobalScheduler, KernelStats
from repro.sim.scenario import Scenario, ScenarioEngine
from repro.workloads.generator import Workload


class ClusterSimulation:
    """A sharded cluster driven end to end by one global simulation kernel."""

    def __init__(self, config: LDSConfig, pool_names: List[str], *,
                 seed: int = 0, record_trace: bool = False,
                 vnodes: int = 128,
                 writers_per_shard: int = 1, readers_per_shard: int = 1,
                 repair_min_interval: float = 5.0,
                 repair_max_concurrent: int = 1,
                 repair_detection_delay: float = 1.0,
                 repair_slot_jitter: float = 0.0,
                 replication: Optional[ReplicationConfig] = None,
                 read_policy: Union[str, ReadRoutingPolicy] = "primary",
                 telemetry=None, live_audit: bool = False,
                 latency: bool = False,
                 sanitize: bool = False) -> None:
        self.seed = seed
        self.kernel = GlobalScheduler(record_trace=record_trace)
        self.latency_regime = LatencyRegime()
        if latency:
            # Tail-latency observability: per-op-class quantile sketches,
            # phase decomposition and critical-path attribution over the
            # span stream (see repro.obs.latency).  Enabled here, before
            # the cluster is built, because the router captures its span
            # sink at construction.
            from repro.obs.telemetry import Telemetry
            if telemetry is None:
                telemetry = Telemetry(latency=True)
            else:
                telemetry.enable_latency()
        if live_audit:
            # Online correctness observability: run the streaming session
            # auditor and the sampling availability monitor during the
            # simulation (probe-driven, so fingerprints stay identical;
            # see repro.obs.live_audit / repro.obs.availability).
            from repro.obs.availability import DEFAULT_AVAILABILITY_INTERVAL
            from repro.obs.telemetry import Telemetry
            if telemetry is None:
                telemetry = Telemetry(
                    live_audit=True,
                    availability_interval=DEFAULT_AVAILABILITY_INTERVAL)
            else:
                telemetry.live_audit = True
                if telemetry.availability_interval is None:
                    telemetry.availability_interval = \
                        DEFAULT_AVAILABILITY_INTERVAL
        #: Optional :class:`repro.obs.Telemetry` bundle.  Purely
        #: observational: a run with telemetry attached produces the same
        #: kernel fingerprint and histories as the same seed without it.
        self.telemetry = telemetry
        self.cluster = ShardedCluster(
            config, pool_names,
            vnodes=vnodes,
            writers_per_shard=writers_per_shard,
            readers_per_shard=readers_per_shard,
            latency_factory=seeded_latency_factory(seed,
                                                   regime=self.latency_regime),
            repair_min_interval=repair_min_interval,
            repair_max_concurrent=repair_max_concurrent,
            repair_detection_delay=repair_detection_delay,
            repair_slot_jitter=repair_slot_jitter,
            seed=seed,
            replication=replication,
            read_policy=read_policy,
            telemetry=telemetry,
        )
        self.cluster.attach_kernel(self.kernel)
        if self.cluster.replicas is not None:
            # Follower-read latency scales with the shared regime, so a
            # latency-shift action slows replica serves like protocol
            # traffic.
            self.cluster.replicas.latency_regime = self.latency_regime
        if telemetry is not None:
            telemetry.attach(self)
        if sanitize:
            # Runtime invariant checking on the pump (clock monotonicity,
            # local-past scheduling, probe purity, pending-map leaks).
            # Purely observational: a sanitized run produces the same
            # kernel fingerprint as the same seed without it.
            sanitizer = self.kernel.enable_sanitizer()
            if self.cluster.replicas is not None:
                for name, mapping in self.cluster.replicas.sanitizer_watches():
                    sanitizer.watch_map(name, mapping)
        self.engine = ScenarioEngine(self)

    # -- conveniences over the wired parts ---------------------------------------

    @property
    def config(self) -> LDSConfig:
        return self.cluster.config

    @property
    def router(self):
        return self.cluster.router

    @property
    def membership(self):
        return self.cluster.membership

    @property
    def repair(self):
        return self.cluster.repair

    @property
    def replicas(self):
        """The replica-group coordinator (None when replication is off)."""
        return self.cluster.replicas

    def read_distribution(self):
        """Per-replica read counts / routing hit rates of the run so far."""
        from repro.workloads.metrics import ReadDistribution
        return ReadDistribution.from_router_stats(self.cluster.router.stats)

    @property
    def now(self) -> float:
        return self.kernel.now

    @property
    def interleaving(self) -> KernelStats:
        return self.kernel.stats

    def set_latency_scale(self, scale: float) -> None:
        """Shift the whole cluster's latency regime (takes effect on the
        next message of every shard)."""
        self.latency_regime.set(scale)

    def ensure_shards(self, keys) -> None:
        """Pre-warm shards at the current global time.

        Shards are otherwise created lazily at their first arrival, so a
        failure scripted early in a scenario would only touch the few
        shards that happen to exist by then.
        """
        self.cluster.router.ensure_shards(keys)

    # -- workload arrivals ----------------------------------------------------------

    @property
    def arrivals(self) -> int:
        """Count of operations injected through kernel arrival events."""
        return self.cluster.router.stats.arrivals

    def add_workload(self, workload: Workload, start: float = 0.0,
                     on_handle=None) -> int:
        """Schedule a keyed workload's operations as kernel arrival events
        (see :meth:`ObjectRouter.add_workload`, the single implementation)."""
        return self.cluster.router.add_workload(workload, start=start,
                                                on_handle=on_handle)

    def check_workload_clients(self, workload: Workload) -> None:
        """Reject a workload addressing more per-shard clients than exist
        (e.g. the flash-crowd scenario's second client population on a
        default one-client simulation) -- see the router's check."""
        self.cluster.router.check_workload_clients(workload)

    # -- the keyed driving API (KeyedDrivableSystem) ----------------------------------

    def invoke_write(self, key: str, value: bytes, writer=0,
                     at: Optional[float] = None,
                     session: Optional[str] = None,
                     via: Optional[str] = None) -> str:
        return self.cluster.invoke_write(key, value, writer=writer, at=at,
                                         session=session, via=via)

    def invoke_read(self, key: str, reader=0,
                    at: Optional[float] = None,
                    session: Optional[str] = None) -> str:
        return self.cluster.invoke_read(key, reader=reader, at=at,
                                        session=session)

    def flush_key(self, key: str) -> int:
        return self.cluster.flush_key(key)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        if self.telemetry is not None:
            # Work may have been added since the sampler wound down.
            self.telemetry.ensure_sampler_armed()
        self.cluster.router.flush()
        self.kernel.run(until=until, max_events=max_events)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        if self.telemetry is not None:
            self.telemetry.ensure_sampler_armed()
        self.cluster.run_until_idle(max_events=max_events)

    def run_report(self) -> str:
        """The telemetry run report (requires a telemetry bundle)."""
        if self.telemetry is None:
            raise ValueError("this simulation was built without telemetry")
        return self.telemetry.report(self)

    def history(self, global_clock: bool = True) -> History:
        return self.cluster.history(global_clock=global_clock)

    def check_atomicity(self) -> Optional[AtomicityViolation]:
        return self.cluster.check_atomicity()

    def audit(self) -> ClusterAuditReport:
        """The post-run correctness verdict of the whole simulation.

        Combines the per-epoch atomicity check (the paper's per-object
        guarantee) with the cross-shard session audit over the merged
        global-clock history (monotonic reads / monotonic writes /
        read-your-writes / writes-follow-reads per logical client session).
        Every shipped scenario is expected to audit clean; see
        :mod:`repro.consistency.injection` for proving the auditor's
        detection power.

        When the simulation ran with ``live_audit=True`` the session
        verdict is the streaming auditor's final state (finalized here,
        no batch re-check of the whole history -- the two are
        verdict-equivalent by construction and by
        ``tests/consistency/test_streaming.py``), and the report also
        carries the availability monitor's sampling assessment.
        """
        telemetry = self.telemetry
        auditor = getattr(telemetry, "auditor", None)
        availability = getattr(telemetry, "availability", None)
        if auditor is not None:
            sessions = auditor.report()
        else:
            sessions = check_sessions(self.history(global_clock=True))
        return ClusterAuditReport(
            atomicity=self.check_atomicity(),
            sessions=sessions,
            availability=(availability.assessment()
                          if availability is not None else None),
        )

    def operation_cost(self, handle: str) -> float:
        return self.cluster.operation_cost(handle)

    @property
    def communication_cost(self) -> float:
        return self.cluster.communication_cost

    # -- scenarios -----------------------------------------------------------------------

    def apply(self, scenario: Scenario, run: bool = True) -> ScenarioEngine:
        """Schedule a scenario's actions; optionally pump to quiescence."""
        self.engine.schedule(scenario)
        if run:
            self.run_until_idle()
        return self.engine

    # -- the merged global timeline --------------------------------------------------------

    def timeline(self) -> List[Tuple[float, str, str]]:
        """Every simulated happening as ``(global_time, category, detail)``.

        Categories: ``invoke`` / ``respond`` (foreground operations, with
        the shard key in the detail), ``repair-start`` / ``repair-done``,
        ``migrate``, the replica-layer events (``primary-down`` /
        ``promote`` / ``follower-lost`` / ``follower-provisioned`` /
        ``read-repair``) and the scenario action kinds.  Sorted by time;
        this is
        the artefact proving repairs and migrations interleave with
        foreground operations across shards on one clock.
        """
        entries: List[Tuple[float, str, str]] = []
        for op in self.history(global_clock=True):
            label = f"{op.kind} {op.op_id}"
            entries.append((op.invoked_at, "invoke", label))
            if op.responded_at is not None:
                entries.append((op.responded_at, "respond", label))
        for task in self.repair.tasks:
            # A task that gave up without ever executing (e.g. its shard
            # migrated away before the slot came due) never started; its
            # assigned slot time would be a phantom on the timeline.
            never_ran = task.status == GAVE_UP and task.attempts == 0
            if task.scheduled_at is not None and not never_ran:
                entries.append((task.scheduled_at, "repair-start",
                                f"{task.key} l2-{task.l2_index}"))
            if task.completed_at is not None:
                entries.append((task.completed_at, "repair-done",
                                f"{task.key} l2-{task.l2_index}"))
        for time, key, source, target in self.cluster.router.migration_log:
            entries.append((time, "migrate", f"{key}: {source} -> {target}"))
        if self.cluster.replicas is not None:
            # primary-down / promote / follower-lost / follower-provisioned
            # / read-repair.
            entries.extend(self.cluster.replicas.failover_log)
        for time, kind, detail in self.engine.log:
            entries.append((time, kind, detail))
        entries.sort(key=lambda entry: entry[0])
        return entries

    def describe(self) -> str:
        stats = self.kernel.stats
        return (
            f"ClusterSimulation(seed={self.seed}, now={self.kernel.now:.1f}, "
            f"sources={len(self.kernel.sources())}, "
            f"events={stats.events_total}, "
            f"switch_rate={stats.switch_rate:.2f}, "
            f"{self.cluster.describe()})"
        )


__all__ = ["ClusterSimulation"]
