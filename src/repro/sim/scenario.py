"""Declarative scenarios: timed scripts driving a cluster on the global clock.

A :class:`Scenario` is a named list of :class:`ScenarioAction` records --
crash/recover a node, join/leave a pool, shift the latency regime, start a
workload phase -- each pinned to a global virtual time.  The
:class:`ScenarioEngine` schedules every action as a kernel event on a
:class:`~repro.sim.harness.ClusterSimulation`, so faults, migrations and
load changes land *between* foreground protocol events exactly where the
timeline puts them, instead of between whole run-to-idle passes.

Eight scenarios ship with the engine, covering the cross-shard phenomena
the legacy per-shard loop could never exhibit:

* :func:`repair_under_load` -- a back-end node dies mid-workload and the
  rate-limited background repairs compete with foreground Zipf traffic;
* :func:`migration_under_load` -- a new pool joins mid-workload and shard
  migrations overlap live writes;
* :func:`correlated_pool_failure` -- one pool loses an edge (L1) node and a
  back-end (L2) node almost simultaneously;
* :func:`flash_crowd` -- key popularity snaps to a heavier Zipf skew while
  the latency regime degrades, modelling a viral-object traffic spike;
* :func:`replica_failover_under_load` -- a whole pool dies mid-workload
  and its replica groups promote followers (needs ``r >= 2``);
* :func:`degraded_reads_during_catch_up` -- a read burst lands inside the
  failover window and is served degraded by follower stores;
* :func:`quorum_reads_under_lag` -- a read burst under heavy replication
  lag and a saturating network, resolved by quorum merges that observe
  (and read-repair) stale stores (needs the ``quorum`` read policy);
* :func:`forwarded_writes_during_failover` -- writes keep arriving at
  follower pools through a pool kill and are forwarded to the (frozen,
  then promoted) primary (needs ``write_ingress="nearest"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace
from typing import List, Optional, Tuple

from repro.cluster.membership import FAILED
from repro.cluster.ring import derive_seed
from repro.workloads.generator import Workload, WorkloadGenerator

#: Action kinds.
FAIL_NODE = "fail-node"
RECOVER_NODE = "recover-node"
JOIN_POOL = "join-pool"
LEAVE_POOL = "leave-pool"
#: Crash every alive node of a pool at once (correlated pool loss); with
#: replica groups this is the action that triggers primary failover.
KILL_POOL = "kill-pool"
LATENCY_SHIFT = "latency-shift"
WORKLOAD_PHASE = "workload-phase"

_KINDS = (FAIL_NODE, RECOVER_NODE, JOIN_POOL, LEAVE_POOL, KILL_POOL,
          LATENCY_SHIFT, WORKLOAD_PHASE)


@dataclass(frozen=True)
class ScenarioAction:
    """One timed action of a scenario script."""

    at: float
    kind: str
    #: Node id (fail/recover) or pool name (join/leave); unused otherwise.
    target: str = ""
    #: New latency multiplier for LATENCY_SHIFT.
    scale: float = 1.0
    #: Ring weight for JOIN_POOL.
    weight: float = 1.0
    #: The workload whose arrivals start at ``at`` for WORKLOAD_PHASE
    #: (operation times are relative to the phase start).
    workload: Optional[Workload] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown scenario action kind {self.kind!r}")
        if self.at < 0:
            raise ValueError("scenario actions cannot be scheduled in the past")
        if self.kind == WORKLOAD_PHASE and self.workload is None:
            raise ValueError("a workload phase needs a workload")
        if self.kind in (FAIL_NODE, RECOVER_NODE, JOIN_POOL, LEAVE_POOL,
                         KILL_POOL) and not self.target:
            raise ValueError(f"action {self.kind!r} needs a target")


@dataclass
class Scenario:
    """A named, ordered script of timed actions."""

    name: str
    description: str = ""
    actions: List[ScenarioAction] = field(default_factory=list)

    def add(self, action: ScenarioAction) -> "Scenario":
        self.actions.append(action)
        return self

    def sorted_actions(self) -> List[ScenarioAction]:
        """Actions by time; equal times keep script order (stable sort)."""
        return sorted(self.actions, key=lambda action: action.at)

    @property
    def duration(self) -> float:
        return max((action.at for action in self.actions), default=0.0)


class ScenarioEngine:
    """Schedules a scenario's actions as kernel events on a simulation."""

    def __init__(self, simulation) -> None:
        self.simulation = simulation
        #: (global_time, kind, detail) for every applied action.
        self.log: List[Tuple[float, str, str]] = []

    def schedule(self, scenario: Scenario) -> None:
        """Register every action with the global kernel (does not run it).

        Workload phases are validated against the simulation's per-shard
        client counts *now*, so an undersized simulation fails here with a
        named error instead of deep inside a future arrival event.
        """
        kernel = self.simulation.kernel
        for action in scenario.sorted_actions():
            if action.kind == WORKLOAD_PHASE:
                self.simulation.check_workload_clients(action.workload)
            at = max(action.at, kernel.now)
            kernel.schedule_at(at, lambda action=action: self._apply(action))

    def _apply(self, action: ScenarioAction) -> None:
        simulation = self.simulation
        cluster = simulation.cluster
        now = simulation.kernel.now
        detail = action.label or action.target
        if action.kind == FAIL_NODE:
            cluster.fail_node(action.target, time=now)
        elif action.kind == RECOVER_NODE:
            # The repair scheduler usually beats scripted recovery; only
            # flip nodes that are actually still down.
            node = cluster.node(action.target)
            if node.status == FAILED:
                cluster.membership.recover(action.target, time=now)
            else:
                detail = f"{detail} (already {node.status})"
        elif action.kind == JOIN_POOL:
            plan = cluster.add_pool(action.target, time=now, weight=action.weight)
            detail = f"{detail} ({len(plan.moves)} shards migrated)"
        elif action.kind == LEAVE_POOL:
            plan = cluster.remove_pool(action.target, time=now)
            detail = f"{detail} ({len(plan.moves)} shards migrated)"
        elif action.kind == KILL_POOL:
            events = cluster.fail_pool(action.target, time=now)
            detail = f"{detail} ({len(events)} nodes down)"
        elif action.kind == LATENCY_SHIFT:
            simulation.set_latency_scale(action.scale)
            detail = f"{detail or 'scale'} -> {action.scale:g}x"
        elif action.kind == WORKLOAD_PHASE:
            simulation.add_workload(action.workload, start=now)
            detail = (f"{detail or action.workload.description} "
                      f"({len(action.workload)} ops)")
        self.log.append((now, action.kind, detail))
        telemetry = getattr(simulation, "telemetry", None)
        if telemetry is not None and telemetry.trace is not None:
            telemetry.trace.instant(f"{action.kind}: {detail}", now)


# -- shipped scenarios ------------------------------------------------------------


def repair_under_load(keys, victim_node: str, *, seed: int = 0,
                      operations: int = 160, write_fraction: float = 0.4,
                      duration: float = 600.0, s: float = 1.2,
                      fail_at: float = 120.0,
                      client_spacing: float = 60.0) -> Scenario:
    """Background repair slots competing with foreground Zipf load."""
    generator = WorkloadGenerator(seed=derive_seed(seed, "repair-under-load"),
                                  client_spacing=client_spacing)
    load = generator.zipf_keyed(keys, operations, write_fraction, duration, s=s)
    return Scenario(
        name="repair-under-load",
        description=(f"zipf(s={s}) foreground load; {victim_node} fails at "
                     f"t={fail_at:g} and is repaired in the background"),
        actions=[
            ScenarioAction(at=0.0, kind=WORKLOAD_PHASE, workload=load,
                           label="zipf foreground load"),
            ScenarioAction(at=fail_at, kind=FAIL_NODE, target=victim_node,
                           label=f"crash {victim_node}"),
        ],
    )


def migration_under_load(keys, new_pool: str, *, seed: int = 0,
                         operations: int = 160, write_fraction: float = 0.4,
                         duration: float = 600.0, join_at: float = 200.0,
                         weight: float = 1.0,
                         client_spacing: float = 60.0) -> Scenario:
    """A pool joins mid-workload; shard migrations overlap live writes."""
    generator = WorkloadGenerator(seed=derive_seed(seed, "migration-under-load"),
                                  client_spacing=client_spacing)
    load = generator.keyed_random(keys, operations, write_fraction, duration)
    return Scenario(
        name="migration-under-load",
        description=(f"uniform keyed load; pool {new_pool!r} joins at "
                     f"t={join_at:g} and shards migrate onto it"),
        actions=[
            ScenarioAction(at=0.0, kind=WORKLOAD_PHASE, workload=load,
                           label="uniform foreground load"),
            ScenarioAction(at=join_at, kind=JOIN_POOL, target=new_pool,
                           weight=weight, label=f"join {new_pool}"),
        ],
    )


def correlated_pool_failure(keys, pool: str, *, seed: int = 0,
                            operations: int = 160, write_fraction: float = 0.4,
                            duration: float = 600.0, fail_at: float = 150.0,
                            stagger: float = 5.0,
                            client_spacing: float = 60.0) -> Scenario:
    """One pool loses an edge node and a back-end node within ``stagger``.

    Both failures stay inside the algorithm's tolerance (f1, f2 >= 1): the
    L1 crash is absorbed natively while the L2 crash triggers background
    regeneration for every shard on the pool.
    """
    generator = WorkloadGenerator(seed=derive_seed(seed, "correlated-failure"),
                                  client_spacing=client_spacing)
    load = generator.zipf_keyed(keys, operations, write_fraction, duration, s=1.0)
    return Scenario(
        name="correlated-pool-failure",
        description=(f"pool {pool!r} loses l2-0 at t={fail_at:g} and l1-0 "
                     f"{stagger:g} time units later"),
        actions=[
            ScenarioAction(at=0.0, kind=WORKLOAD_PHASE, workload=load,
                           label="zipf foreground load"),
            ScenarioAction(at=fail_at, kind=FAIL_NODE, target=f"{pool}/l2-0",
                           label=f"crash {pool}/l2-0"),
            ScenarioAction(at=fail_at + stagger, kind=FAIL_NODE,
                           target=f"{pool}/l1-0", label=f"crash {pool}/l1-0"),
        ],
    )


def flash_crowd(keys, *, seed: int = 0, operations: int = 120,
                crowd_operations: int = 160, write_fraction: float = 0.3,
                duration: float = 400.0, shift_at: float = 250.0,
                s_before: float = 0.8, s_after: float = 1.6,
                latency_scale: float = 1.5,
                client_spacing: float = 60.0) -> Scenario:
    """Key popularity snaps to a heavy Zipf skew and latency degrades.

    The crowd is a *second* client population (per-shard client index 1),
    because on the global clock its operations overlap the tail of the calm
    phase and a single client may only have one operation outstanding --
    run this scenario on a simulation with ``writers_per_shard`` and
    ``readers_per_shard`` of at least 2.  The crowd's spacing is stretched
    by ``latency_scale`` so the workload stays well-formed in the degraded
    latency regime it itself creates.
    """
    generator = WorkloadGenerator(seed=derive_seed(seed, "flash-crowd"),
                                  client_spacing=client_spacing)
    calm = generator.zipf_keyed(keys, operations, write_fraction, shift_at,
                                s=s_before)
    crowd_generator = WorkloadGenerator(
        seed=derive_seed(seed, "flash-crowd", "crowd"),
        client_spacing=client_spacing * latency_scale,
    )
    crowd_raw = crowd_generator.zipf_keyed(
        keys, crowd_operations, write_fraction, duration - shift_at, s=s_after,
    )
    crowd = Workload(description=crowd_raw.description + " (crowd clients)")
    for operation in crowd_raw.operations:
        # The crowd is a distinct client population: shift it onto the
        # second per-shard client slot and give it its own explicit session
        # identity so the session auditor tracks calm and crowd clients as
        # separate logical sessions.
        crowd.add(dc_replace(operation, client_index=operation.client_index + 1,
                             session=f"crowd-{operation.client_index + 1}"))
    return Scenario(
        name="flash-crowd",
        description=(f"zipf skew shifts s={s_before:g} -> s={s_after:g} at "
                     f"t={shift_at:g} with a {latency_scale:g}x latency "
                     f"regime shift"),
        actions=[
            ScenarioAction(at=0.0, kind=WORKLOAD_PHASE, workload=calm,
                           label=f"calm zipf(s={s_before:g}) load"),
            ScenarioAction(at=shift_at, kind=LATENCY_SHIFT,
                           scale=latency_scale, label="network saturates"),
            ScenarioAction(at=shift_at, kind=WORKLOAD_PHASE, workload=crowd,
                           label=f"flash crowd zipf(s={s_after:g})"),
        ],
    )


def replica_failover_under_load(keys, victim_pool: str, *, seed: int = 0,
                                operations: int = 200,
                                write_fraction: float = 0.35,
                                duration: float = 800.0,
                                kill_at: float = 300.0,
                                client_spacing: float = 60.0) -> Scenario:
    """A whole pool dies mid-workload; its replica groups fail over.

    Run on an ``r >= 2`` simulation: groups whose primary lived on the
    victim freeze primary traffic, serve degraded follower reads, promote
    a caught-up follower, and flush the frozen operations into the new
    epoch -- all while the rest of the cluster keeps serving.  Groups that
    only had a *follower* there re-provision it elsewhere.  The run must
    audit clean (atomicity at every primary epoch plus all four session
    guarantees), because catch-up preserves every acknowledged write.
    """
    generator = WorkloadGenerator(seed=derive_seed(seed, "replica-failover"),
                                  client_spacing=client_spacing)
    load = generator.zipf_keyed(keys, operations, write_fraction, duration,
                                s=1.1)
    return Scenario(
        name="replica-failover-under-load",
        description=(f"zipf foreground load; pool {victim_pool!r} dies at "
                     f"t={kill_at:g}; its primaries fail over to followers"),
        actions=[
            ScenarioAction(at=0.0, kind=WORKLOAD_PHASE, workload=load,
                           label="zipf foreground load"),
            ScenarioAction(at=kill_at, kind=KILL_POOL, target=victim_pool,
                           label=f"kill {victim_pool}"),
        ],
    )


def degraded_reads_during_catch_up(keys, victim_pool: str, *, seed: int = 0,
                                   operations: int = 120,
                                   read_operations: int = 120,
                                   write_fraction: float = 0.5,
                                   duration: float = 700.0,
                                   kill_at: float = 300.0,
                                   burst_duration: float = 150.0,
                                   client_spacing: float = 60.0) -> Scenario:
    """A read burst lands exactly in the failover window.

    Phase one builds replicated state with a write-heavy load; the victim
    pool then dies and a *read-heavy* burst arrives while its groups are
    still detecting, catching up and promoting.  Follower stores keep
    serving throughout (the degraded-reads window); only reads pinned to
    the primary -- by policy or by their session floor -- defer until
    promotion.  Compare ``RouterStats.failover_deferrals`` against
    ``follower_reads`` to see the window in numbers.

    Like the flash-crowd scenario, the burst is a *second* client
    population (per-shard client index 1) with its own ``burst-*``
    sessions, because its operations overlap the build-up tail and a
    single client may only have one operation outstanding -- run this on
    a simulation with ``writers_per_shard`` and ``readers_per_shard`` of
    at least 2.
    """
    generator = WorkloadGenerator(seed=derive_seed(seed, "degraded-reads"),
                                  client_spacing=client_spacing)
    build = generator.zipf_keyed(keys, operations, write_fraction, kill_at,
                                 s=1.0)
    burst_generator = WorkloadGenerator(
        seed=derive_seed(seed, "degraded-reads", "burst"),
        client_spacing=client_spacing,
    )
    burst_raw = burst_generator.zipf_keyed(keys, read_operations, 0.1,
                                           burst_duration, s=1.2)
    burst = Workload(description=burst_raw.description + " (burst clients)")
    for operation in burst_raw.operations:
        burst.add(dc_replace(operation, client_index=operation.client_index + 1,
                             session=f"burst-{operation.client_index + 1}"))
    return Scenario(
        name="degraded-reads-during-catch-up",
        description=(f"write-heavy build-up; pool {victim_pool!r} dies at "
                     f"t={kill_at:g} under a read burst served degraded by "
                     f"followers"),
        actions=[
            ScenarioAction(at=0.0, kind=WORKLOAD_PHASE, workload=build,
                           label="write-heavy build-up"),
            ScenarioAction(at=kill_at, kind=KILL_POOL, target=victim_pool,
                           label=f"kill {victim_pool}"),
            ScenarioAction(at=kill_at, kind=WORKLOAD_PHASE, workload=burst,
                           label="read burst during catch-up"),
        ],
    )


def quorum_reads_under_lag(keys, *, seed: int = 0, operations: int = 140,
                           burst_operations: int = 140,
                           write_fraction: float = 0.5,
                           duration: float = 800.0,
                           burst_at: float = 350.0,
                           latency_scale: float = 1.4,
                           client_spacing: float = 60.0) -> Scenario:
    """A read burst lands while followers lag far behind the primaries.

    Phase one is a write-heavy build-up, so by ``burst_at`` every group
    has a replication log its followers have not caught up on (run with a
    ``replication_lag`` comparable to the scenario duration).  The
    network then saturates and a read-heavy burst arrives: under the
    ``quorum`` read policy each read queries ``read_quorum`` stores and
    merges -- follower-only quorum windows observe genuinely stale
    stores, which is exactly where **read repair** (or, with
    ``read_repair=False``, a session-guard fallback to the primary) has
    to step in.  Compare ``RouterStats.read_repairs`` and
    ``session_fallbacks`` across the two settings to see repair working.

    Like the flash-crowd scenario, the burst is a *second* client
    population (per-shard client index 1) with its own ``burst-*``
    sessions -- run on a simulation with ``writers_per_shard`` and
    ``readers_per_shard`` of at least 2.  The burst keeps a small write
    fraction so its sessions carry read-your-writes floors of their own.
    """
    generator = WorkloadGenerator(seed=derive_seed(seed, "quorum-under-lag"),
                                  client_spacing=client_spacing)
    build = generator.zipf_keyed(keys, operations, write_fraction, burst_at,
                                 s=1.1)
    burst_generator = WorkloadGenerator(
        seed=derive_seed(seed, "quorum-under-lag", "burst"),
        client_spacing=client_spacing * latency_scale,
    )
    burst_raw = burst_generator.zipf_keyed(keys, burst_operations, 0.2,
                                           duration - burst_at, s=1.2)
    burst = Workload(description=burst_raw.description + " (burst clients)")
    for operation in burst_raw.operations:
        burst.add(dc_replace(operation, client_index=operation.client_index + 1,
                             session=f"burst-{operation.client_index + 1}"))
    return Scenario(
        name="quorum-reads-under-lag",
        description=(f"write-heavy build-up; at t={burst_at:g} the network "
                     f"degrades {latency_scale:g}x and a read burst is "
                     f"resolved by quorum merges over lagging stores"),
        actions=[
            ScenarioAction(at=0.0, kind=WORKLOAD_PHASE, workload=build,
                           label="write-heavy build-up"),
            ScenarioAction(at=burst_at, kind=LATENCY_SHIFT,
                           scale=latency_scale, label="network saturates"),
            ScenarioAction(at=burst_at, kind=WORKLOAD_PHASE, workload=burst,
                           label="read burst over lagging stores"),
        ],
    )


def forwarded_writes_during_failover(keys, victim_pool: str, *,
                                     seed: int = 0, operations: int = 180,
                                     write_fraction: float = 0.5,
                                     duration: float = 800.0,
                                     kill_at: float = 300.0,
                                     client_spacing: float = 60.0) -> Scenario:
    """Writes keep arriving at follower pools through a pool kill.

    Run on an ``r >= 2`` simulation with ``write_ingress="nearest"``:
    every write arrives at the client's nearest replica pool and is
    forwarded to the primary when that pool is a follower.  When the
    victim pool dies mid-workload its groups freeze and promote -- and
    the writes that keep arriving *during the freeze* are forwarded into
    the frozen primary slot, ride the pending queue into the promoted
    epoch and complete there, so no client ever needs to learn who the
    new primary is.  ``RouterStats.forwarded_writes`` counts the hops;
    the run must audit clean because forwarding preserves per-session
    write order (one operation in flight per client).
    """
    generator = WorkloadGenerator(seed=derive_seed(seed, "forwarded-writes"),
                                  client_spacing=client_spacing)
    load = generator.zipf_keyed(keys, operations, write_fraction, duration,
                                s=1.1)
    return Scenario(
        name="forwarded-writes-during-failover",
        description=(f"nearest-ingress writes forwarded to primaries; pool "
                     f"{victim_pool!r} dies at t={kill_at:g} and forwarded "
                     f"writes ride the freeze into the promoted epochs"),
        actions=[
            ScenarioAction(at=0.0, kind=WORKLOAD_PHASE, workload=load,
                           label="nearest-ingress zipf load"),
            ScenarioAction(at=kill_at, kind=KILL_POOL, target=victim_pool,
                           label=f"kill {victim_pool}"),
        ],
    )


__all__ = [
    "FAIL_NODE", "RECOVER_NODE", "JOIN_POOL", "LEAVE_POOL", "KILL_POOL",
    "LATENCY_SHIFT", "WORKLOAD_PHASE",
    "Scenario", "ScenarioAction", "ScenarioEngine",
    "repair_under_load", "migration_under_load",
    "correlated_pool_failure", "flash_crowd",
    "replica_failover_under_load", "degraded_reads_during_catch_up",
    "quorum_reads_under_lag", "forwarded_writes_during_failover",
]
