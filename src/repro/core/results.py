"""Results returned by completed client operations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.tags import Tag


@dataclass(frozen=True)
class OperationResult:
    """The outcome of one completed read or write operation.

    Attributes:
        op_id: the unique operation identifier.
        client_id: the invoking client's process id.
        kind: ``"read"`` or ``"write"``.
        tag: the tag associated with the operation (``tag(pi)`` in the paper).
        value: the value written (for writes) or returned (for reads).
        invoked_at: virtual time of the invocation step.
        responded_at: virtual time of the response step.
    """

    op_id: str
    client_id: str
    kind: str
    tag: Tag
    value: Optional[bytes]
    invoked_at: float
    responded_at: float

    @property
    def duration(self) -> float:
        """Operation latency in virtual time units."""
        return self.responded_at - self.invoked_at


__all__ = ["OperationResult"]
