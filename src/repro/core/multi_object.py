"""Multi-object deployments (Section V-A.1 of the paper).

The paper's multi-object analysis runs ``N`` *independent* instances of
the LDS algorithm -- one per object -- over the same two-layer server
deployment, and asks when the temporary (L1) storage is dominated by the
permanent (L2) storage.  Because the instances are fully independent, the
aggregate storage cost of the multi-object system is exactly the sum of
the per-instance costs at every point in time.

:class:`MultiObjectSystem` therefore drives one :class:`~repro.core.system.LDSSystem`
per object along a *shared virtual timeline* (the same workload schedule
and latency bounds in every instance) and aggregates the per-instance
storage event logs into system-wide L1/L2 time series.  This reproduces
the quantity plotted in Figure 6.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import LDSConfig
from repro.core.system import LDSSystem
from repro.net.latency import BoundedLatencyModel, LatencyModel


@dataclass(frozen=True)
class MultiObjectStorageSample:
    """Aggregate storage costs of the whole multi-object system at one time."""

    time: float
    l1_cost: float
    l2_cost: float

    @property
    def total(self) -> float:
        return self.l1_cost + self.l2_cost


class MultiObjectSystem:
    """``N`` independent LDS instances driven over a shared timeline."""

    def __init__(self, config: LDSConfig, num_objects: int,
                 latency_factory: Optional[Callable[[int], LatencyModel]] = None,
                 writers_per_object: int = 1, readers_per_object: int = 1,
                 seed: Optional[int] = None) -> None:
        if num_objects < 1:
            raise ValueError("a multi-object system needs at least one object")
        self.config = config
        self.num_objects = num_objects
        self._rng = random.Random(seed)
        if latency_factory is None:
            latency_factory = lambda index: BoundedLatencyModel(seed=index)
        self.systems: List[LDSSystem] = [
            LDSSystem(
                config,
                num_writers=writers_per_object,
                num_readers=readers_per_object,
                latency_model=latency_factory(index),
                object_id=f"object-{index}",
            )
            for index in range(num_objects)
        ]

    # -- workload scheduling -------------------------------------------------------

    def schedule_write(self, object_index: int, value: bytes, at: float,
                       writer: int = 0) -> str:
        """Schedule a write on one object's instance at a virtual time."""
        return self.systems[object_index].invoke_write(value, writer=writer, at=at)

    def schedule_read(self, object_index: int, at: float, reader: int = 0) -> str:
        """Schedule a read on one object's instance at a virtual time."""
        return self.systems[object_index].invoke_read(reader=reader, at=at)

    def schedule_uniform_write_load(self, writes_per_unit_time: float, duration: float,
                                    value_factory: Optional[Callable[[int], bytes]] = None,
                                    start: float = 0.0) -> List[str]:
        """Spread ``writes_per_unit_time * duration`` writes over random objects.

        Each write lands on a uniformly random object at a uniformly random
        time in ``[start, start + duration)``; at most one write is ever
        outstanding per object (well-formed clients), so writes assigned to
        a busy object are simply queued at a later time by re-drawing.
        """
        if value_factory is None:
            value_factory = lambda index: bytes([index % 251 + 1]) * 4
        total_writes = int(round(writes_per_unit_time * duration))
        op_ids: List[str] = []
        next_free: Dict[int, float] = {}
        for index in range(total_writes):
            object_index = self._rng.randrange(self.num_objects)
            at = start + self._rng.uniform(0.0, duration)
            # Keep the per-object client well-formed by pushing the write
            # after the previous one on the same object had time to finish.
            at = max(at, next_free.get(object_index, 0.0))
            op_ids.append(self.schedule_write(object_index, value_factory(index), at))
            next_free[object_index] = at + self._estimated_write_duration()
        return op_ids

    def _estimated_write_duration(self) -> float:
        """A safe upper bound on a write duration used only for scheduling."""
        return 16.0

    # -- execution ----------------------------------------------------------------------

    def run_all(self, until: Optional[float] = None) -> None:
        """Run every instance (each has its own simulator but a shared timeline)."""
        for system in self.systems:
            if until is None:
                system.run_until_idle()
            else:
                system.run(until=until)

    # -- aggregation -----------------------------------------------------------------------

    def storage_timeseries(self, sample_times: Sequence[float]) -> List[MultiObjectStorageSample]:
        """Aggregate L1/L2 storage cost across all instances at the given times."""
        samples: List[MultiObjectStorageSample] = []
        per_system_events = [system.storage.events for system in self.systems]
        l2_total = sum(system.storage.l2_cost for system in self.systems)
        for time in sorted(sample_times):
            l1_total = 0.0
            for events in per_system_events:
                live: Dict[tuple, float] = {}
                for event in events:
                    if event.time > time:
                        break
                    key = (event.server, event.tag)
                    if event.kind == "add":
                        live[key] = event.size
                    else:
                        live.pop(key, None)
                l1_total += sum(live.values())
            samples.append(
                MultiObjectStorageSample(time=time, l1_cost=l1_total, l2_cost=l2_total)
            )
        return samples

    def peak_l1_cost(self) -> float:
        """Worst-case aggregate temporary storage observed across the run.

        Computed from the merged event logs of all instances (the true
        system-wide maximum, not the sum of per-instance maxima).
        """
        events = []
        for system_index, system in enumerate(self.systems):
            for event in system.storage.events:
                events.append((event.time, system_index, event))
        events.sort(key=lambda item: item[0])
        live: Dict[tuple, float] = {}
        peak = 0.0
        for time, system_index, event in events:
            key = (system_index, event.server, event.tag)
            if event.kind == "add":
                live[key] = event.size
            else:
                live.pop(key, None)
            peak = max(peak, sum(live.values()))
        return peak

    def total_l2_cost(self) -> float:
        """Aggregate permanent storage cost (constant: N * n2 * alpha / B)."""
        return sum(system.storage.l2_cost for system in self.systems)

    def all_operations_complete(self) -> bool:
        """True when every scheduled operation has completed in every instance."""
        return all(system.recorder.incomplete_count == 0 for system in self.systems)


__all__ = ["MultiObjectSystem", "MultiObjectStorageSample"]
