"""The layer-1 (edge) server automaton (Figure 2 of the paper).

L1 servers are where nearly all of the atomicity machinery lives.  Each
server maintains:

* ``L`` -- the temporary storage list of (tag, value) pairs; garbage
  collection replaces values of old tags by ``⊥`` (``None`` here) so that
  only the tags remain as metadata;
* ``tc`` -- the committed tag, the highest tag the server has finished
  writing (or is writing) to L2;
* ``Γ`` -- the set of registered (outstanding) readers, with the tag each
  requested;
* ``commitCounter`` / ``writeCounter`` / ``readCounter`` and the key-value
  set ``K`` used by the internal operations.

The server reacts to client messages (Figure 1), COMMIT-TAG broadcasts,
and the responses of the internal ``write-to-L2`` and
``regenerate-from-L2`` operations exactly as in Figure 2 of the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.codes.base import RepairError
from repro.codes.layered import LayeredCode
from repro.core import messages as msg
from repro.core.config import LDSConfig
from repro.core.costs import StorageCostTracker
from repro.core.tags import Tag
from repro.net.broadcast import BroadcastEnvelope, BroadcastPrimitive
from repro.net.latency import L1
from repro.net.messages import Message
from repro.net.process import Process


class _RegistedReader:
    """Bookkeeping for one entry of the outstanding-reader set Γ."""

    __slots__ = ("reader_id", "requested_tag", "op_id")

    def __init__(self, reader_id: str, requested_tag: Tag, op_id: Optional[str]) -> None:
        self.reader_id = reader_id
        self.requested_tag = requested_tag
        self.op_id = op_id


class L1Server(Process):
    """One edge-layer server running the LDS protocol of Figure 2."""

    def __init__(self, pid: str, index: int, config: LDSConfig, code: LayeredCode,
                 storage_tracker: Optional[StorageCostTracker] = None) -> None:
        super().__init__(pid, link_class=L1)
        self.index = index
        self.config = config
        self.code = code
        self.storage_tracker = storage_tracker

        initial_tag = Tag.initial()
        #: The list L: tag -> value bytes, or None for ⊥ (garbage-collected).
        self.list_storage: Dict[Tag, Optional[bytes]] = {initial_tag: None}
        #: Committed tag tc.
        self.committed_tag: Tag = initial_tag
        #: Γ: outstanding readers, keyed by reader process id.
        self.registered_readers: Dict[str, _RegistedReader] = {}
        #: commitCounter[t].
        self.commit_counter: Dict[Tag, int] = {}
        #: writeCounter[t] for in-flight write-to-L2 operations.
        self.write_counter: Dict[Tag, int] = {}
        #: readCounter[r] and K[r] for in-flight regenerate-from-L2 operations.
        self.read_counter: Dict[str, int] = {}
        self.helper_store: Dict[str, List[Tuple[int, Tag, bytes]]] = {}
        #: Current regeneration sequence number per reader (ignores stale replies).
        self._regen_ids: Dict[str, int] = {}
        #: Writer operation id associated with each tag (for cost attribution).
        self._tag_op_ids: Dict[Tag, str] = {}
        #: Tags already acknowledged to their writer (avoids duplicate ACKs).
        self._acked_tags: set[Tag] = set()
        #: Tags for which this server already launched write-to-L2.
        self._write_to_l2_started: set[Tag] = set()

        self.broadcaster = BroadcastPrimitive(
            owner=self,
            group=config.l1_pids,
            relay_set=config.broadcast_relay_pids,
        )
        self._element_fraction = float(code.costs.element_fraction)

    # ------------------------------------------------------------------------
    # helpers on the list L
    # ------------------------------------------------------------------------

    def max_list_tag(self) -> Tag:
        """max{t : (t, *) ∈ L}."""
        return max(self.list_storage)

    def value_for(self, tag: Tag) -> Optional[bytes]:
        """The value stored under ``tag`` or None when absent / garbage collected."""
        return self.list_storage.get(tag)

    def _store_value(self, tag: Tag, value: bytes) -> None:
        self.list_storage[tag] = value
        if self.storage_tracker is not None:
            self.storage_tracker.value_added(self.now, self.pid, tag, 1.0)

    def _drop_value(self, tag: Tag) -> None:
        """Replace (tag, value) by (tag, ⊥), keeping the tag as metadata."""
        if self.list_storage.get(tag) is not None:
            self.list_storage[tag] = None
            if self.storage_tracker is not None:
                self.storage_tracker.value_removed(self.now, self.pid, tag)

    def _garbage_collect_older_than(self, tag: Tag) -> None:
        """Drop every value whose tag is strictly smaller than ``tag``."""
        for stored_tag in list(self.list_storage):
            if stored_tag < tag:
                self._drop_value(stored_tag)

    def _l1_storage_cost(self) -> float:
        """Normalised temporary storage currently held by this server."""
        return float(sum(1 for value in self.list_storage.values() if value is not None))

    # ------------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------------

    def on_message(self, sender: str, message: Message) -> None:
        if isinstance(message, BroadcastEnvelope):
            inner = self.broadcaster.handle(message)
            if isinstance(inner, msg.CommitTag):
                self._broadcast_resp(inner)
            return
        if isinstance(message, msg.QueryTag):
            self._get_tag_resp(sender, message)
        elif isinstance(message, msg.PutData):
            self._put_data_resp(sender, message)
        elif isinstance(message, msg.QueryCommittedTag):
            self._get_committed_tag_resp(sender, message)
        elif isinstance(message, msg.QueryData):
            self._get_data_resp(sender, message)
        elif isinstance(message, msg.PutTag):
            self._put_tag_resp(sender, message)
        elif isinstance(message, msg.AckCodeElem):
            self._write_to_l2_complete(message)
        elif isinstance(message, msg.SendHelperElem):
            self._regenerate_from_l2_complete(sender, message)
        # Unknown messages are ignored.

    # ------------------------------------------------------------------------
    # write path (Figure 2, lines 3-27)
    # ------------------------------------------------------------------------

    def _get_tag_resp(self, writer: str, message: msg.QueryTag) -> None:
        """get-tag-resp: return the maximum tag present in the list."""
        self.send(writer, msg.QueryTagResponse(tag=self.max_list_tag(), op_id=message.op_id))

    def _put_data_resp(self, writer: str, message: msg.PutData) -> None:
        """put-data-resp: broadcast COMMIT-TAG, then store or ack immediately."""
        incoming_tag = message.tag
        self._tag_op_ids.setdefault(incoming_tag, message.op_id)
        self.broadcaster.broadcast(msg.CommitTag(tag=incoming_tag, op_id=message.op_id))
        if incoming_tag > self.committed_tag:
            self._store_value(incoming_tag, message.value)
        else:
            # The tag is already committed here (the commit broadcast beat the
            # put-data message).  Record it in L as (t, ⊥) metadata before
            # acking: a quorum peer answering a later get-tag query from its
            # list must see this tag, otherwise two writes can pick the same
            # tag and atomicity breaks.
            self.list_storage.setdefault(incoming_tag, None)
            self.send(writer, msg.PutDataAck(tag=incoming_tag, op_id=message.op_id))

    def _broadcast_resp(self, message: msg.CommitTag) -> None:
        """broadcast-resp: count the commit announcement and run the extra steps."""
        tag = message.tag
        if message.op_id is not None:
            self._tag_op_ids.setdefault(tag, message.op_id)
        self.commit_counter[tag] = self.commit_counter.get(tag, 0) + 1
        if (
            tag in self.list_storage
            and self.commit_counter[tag] >= self.config.l1_quorum
            and tag not in self._acked_tags
        ):
            self._acked_tags.add(tag)
            if tag.writer_id:
                self.send(
                    tag.writer_id,
                    msg.PutDataAck(tag=tag, op_id=self._tag_op_ids.get(tag)),
                )
        if tag > self.committed_tag:
            self._commit_tag(tag)

    def _commit_tag(self, tag: Tag) -> None:
        """Advance tc to ``tag``: serve readers, garbage collect, offload to L2.

        These are the "additional steps" of the broadcast-resp phase
        (Section III-B); they also run when a put-tag request commits a tag
        whose value is present in the list.
        """
        self.committed_tag = tag
        # Keep the committed tag in L as metadata even when its value never
        # reached this server (commit broadcast ahead of put-data), so
        # get-tag queries never under-report the maximum tag.
        self.list_storage.setdefault(tag, None)
        value = self.value_for(tag)
        if value is not None:
            self._serve_registered_readers(tag, value)
        self._garbage_collect_older_than(tag)
        if value is not None:
            self._write_to_l2(tag, value)

    def _serve_registered_readers(self, tag: Tag, value: bytes) -> None:
        """Send (tag, value) to every registered reader with requested tag <= tag."""
        for reader_id in list(self.registered_readers):
            entry = self.registered_readers[reader_id]
            if tag >= entry.requested_tag:
                self.send(
                    reader_id,
                    msg.QueryDataResponse(
                        tag=tag, value=value, is_value=True,
                        data_size=1.0, op_id=entry.op_id,
                    ),
                )
                del self.registered_readers[reader_id]

    # -- internal write-to-L2 (Figure 2, lines 20-27) ------------------------------

    def _write_to_l2(self, tag: Tag, value: bytes) -> None:
        """Encode the value with C2 and push coded elements to every L2 server."""
        if tag in self._write_to_l2_started:
            return
        self._write_to_l2_started.add(tag)
        self.write_counter[tag] = 0
        op_id = self._tag_op_ids.get(tag)
        coded_elements = self.code.encode_for_backend(value)
        for l2_index, element in coded_elements.items():
            self.send(
                self.config.l2_pid(l2_index),
                msg.WriteCodeElem(
                    tag=tag,
                    coded_element=element.data,
                    data_size=self._element_fraction,
                    op_id=op_id,
                ),
            )

    def _write_to_l2_complete(self, message: msg.AckCodeElem) -> None:
        """Count WRITE-CODE-ELEM acks; garbage collect the value once done."""
        tag = message.tag
        if tag not in self.write_counter:
            return
        self.write_counter[tag] += 1
        if self.write_counter[tag] == self.config.l2_quorum:
            self._drop_value(tag)

    # ------------------------------------------------------------------------
    # read path (Figure 2, lines 28-66)
    # ------------------------------------------------------------------------

    def _get_committed_tag_resp(self, reader: str, message: msg.QueryCommittedTag) -> None:
        """get-committed-tag-resp: return tc."""
        self.send(
            reader,
            msg.QueryCommittedTagResponse(tag=self.committed_tag, op_id=message.op_id),
        )

    def _get_data_resp(self, reader: str, message: msg.QueryData) -> None:
        """get-data-resp: serve from the list if possible, else regenerate."""
        requested_tag = message.requested_tag
        requested_value = self.value_for(requested_tag)
        if requested_value is not None:
            self.send(
                reader,
                msg.QueryDataResponse(
                    tag=requested_tag, value=requested_value, is_value=True,
                    data_size=1.0, op_id=message.op_id,
                ),
            )
            return
        committed_value = self.value_for(self.committed_tag)
        if self.committed_tag > requested_tag and committed_value is not None:
            self.send(
                reader,
                msg.QueryDataResponse(
                    tag=self.committed_tag, value=committed_value, is_value=True,
                    data_size=1.0, op_id=message.op_id,
                ),
            )
            return
        self.registered_readers[reader] = _RegistedReader(
            reader_id=reader, requested_tag=requested_tag, op_id=message.op_id
        )
        self._regenerate_from_l2(reader, message.op_id)

    # -- internal regenerate-from-L2 (Figure 2, lines 39-51) --------------------------

    def _regenerate_from_l2(self, reader: str, op_id: Optional[str]) -> None:
        """Ask every L2 server for helper data targeting this server's symbol."""
        self._regen_ids[reader] = self._regen_ids.get(reader, 0) + 1
        regen_id = self._regen_ids[reader]
        self.read_counter[reader] = 0
        self.helper_store[reader] = []
        for l2_index in range(self.config.n2):
            request = msg.QueryCodeElem(
                reader_id=reader, l1_index=self.index, op_id=op_id,
            )
            request.payload["regen_id"] = regen_id
            self.send(self.config.l2_pid(l2_index), request)

    def _regenerate_from_l2_complete(self, sender: str, message: msg.SendHelperElem) -> None:
        """Collect helper data; once n2 - f2 responses arrived, try to regenerate."""
        reader = message.reader_id
        if message.payload.get("regen_id") != self._regen_ids.get(reader):
            return  # stale response from an earlier regeneration
        l2_index = self.config.l2_pids.index(sender)
        self.read_counter[reader] = self.read_counter.get(reader, 0) + 1
        self.helper_store.setdefault(reader, []).append(
            (l2_index, message.tag, message.helper_data)
        )
        if self.read_counter[reader] != self.config.l2_quorum:
            return
        helpers = self.helper_store.pop(reader, [])
        self.read_counter.pop(reader, None)
        # Invalidate the regeneration id so responses that arrive after the
        # quorum (there can be up to f2 more) are ignored instead of being
        # accumulated into a stale helper set.
        self._regen_ids[reader] = self._regen_ids.get(reader, 0) + 1
        regenerated = self._try_regenerate(helpers)
        entry = self.registered_readers.get(reader)
        if entry is None:
            # The reader has already been served (e.g. via broadcast-resp) or
            # has unregistered through put-tag; nothing more to send.
            return
        if regenerated is not None and regenerated[0] >= entry.requested_tag:
            tag, coded = regenerated
            self.send(
                reader,
                msg.QueryDataResponse(
                    tag=tag, coded_element=coded, is_value=False,
                    data_size=self._element_fraction, op_id=entry.op_id,
                ),
            )
        else:
            self.send(
                reader,
                msg.QueryDataResponse(is_null=True, data_size=0.0, op_id=entry.op_id),
            )

    def _try_regenerate(
        self, helpers: List[Tuple[int, Tag, bytes]]
    ) -> Optional[Tuple[Tag, bytes]]:
        """Regenerate the highest tag for which at least d helpers responded."""
        by_tag: Dict[Tag, Dict[int, bytes]] = {}
        for l2_index, tag, helper_data in helpers:
            by_tag.setdefault(tag, {})[l2_index] = helper_data
        for tag in sorted(by_tag, reverse=True):
            candidates = by_tag[tag]
            if len(candidates) < self.config.d:
                continue
            chosen = dict(list(candidates.items())[: self.config.d])
            try:
                element = self.code.regenerate_l1_element(self.index, chosen)
            except RepairError:
                continue
            return tag, element.data
        return None

    # -- put-tag (Figure 2, lines 52-66) ------------------------------------------------

    def _put_tag_resp(self, reader: str, message: msg.PutTag) -> None:
        """put-tag-resp: unregister the reader, commit the tag, ack."""
        incoming_tag = message.tag
        self.registered_readers.pop(reader, None)
        if incoming_tag > self.committed_tag:
            value = self.value_for(incoming_tag)
            if value is not None:
                # Same steps as committing via broadcast-resp (serve readers,
                # garbage collect, offload to L2) but without acking a writer.
                self._commit_tag(incoming_tag)
            else:
                self.committed_tag = incoming_tag
                self.list_storage.setdefault(incoming_tag, None)
                fallback = self._highest_value_below(incoming_tag)
                if fallback is not None:
                    self._serve_registered_readers(fallback[0], fallback[1])
                self._garbage_collect_older_than(incoming_tag)
        self.send(reader, msg.PutTagAck(op_id=message.op_id))

    def _highest_value_below(self, tag: Tag) -> Optional[Tuple[Tag, bytes]]:
        """max{t : t < tag ∧ (t, v) ∈ L with an actual value}, with its value."""
        best: Optional[Tuple[Tag, bytes]] = None
        for stored_tag, value in self.list_storage.items():
            if value is None or not stored_tag < tag:
                continue
            if best is None or stored_tag > best[0]:
                best = (stored_tag, value)
        return best


__all__ = ["L1Server"]
