"""The writer automaton (Figure 1, left, of the paper).

A write is two phases:

1. **get-tag** -- query every L1 server for the maximum tag in its list,
   wait for ``f1 + k`` responses, and pick the maximum ``t``; the new tag
   is ``tw = (t.z + 1, writer_id)``.
2. **put-data** -- send ``(tw, value)`` to every L1 server and wait for
   ``f1 + k`` acknowledgements.

The writer is *well-formed*: it issues one operation at a time.  Crashing
the writer process mid-operation simply leaves the operation incomplete,
which the protocol tolerates.
"""

from __future__ import annotations

from typing import Callable, Optional, Set

from repro.core import messages as msg
from repro.core.config import LDSConfig
from repro.core.results import OperationResult
from repro.core.tags import Tag
from repro.net.latency import CLIENT
from repro.net.messages import Message
from repro.net.process import Process

CompletionCallback = Callable[[OperationResult], None]


class Writer(Process):
    """A client that performs write operations against the L1 layer."""

    def __init__(self, pid: str, config: LDSConfig) -> None:
        super().__init__(pid, link_class=CLIENT)
        self.config = config
        self._operation_counter = 0
        # State of the in-flight operation (None when idle).
        self._phase: Optional[str] = None
        self._op_id: Optional[str] = None
        self._value: Optional[bytes] = None
        self._callback: Optional[CompletionCallback] = None
        self._invoked_at = 0.0
        self._responders: Set[str] = set()
        self._max_tag = Tag.initial()
        self._write_tag: Optional[Tag] = None

    # -- public API ---------------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while an operation is in flight."""
        return self._phase is not None

    def write(self, value: bytes, callback: Optional[CompletionCallback] = None,
              op_id: Optional[str] = None) -> str:
        """Invoke a write operation; returns the operation id.

        Raises :class:`RuntimeError` if the previous operation has not
        completed (clients are well-formed).
        """
        if self.busy:
            raise RuntimeError(f"writer {self.pid} already has an operation in flight")
        if self.crashed:
            raise RuntimeError(f"writer {self.pid} has crashed")
        self._operation_counter += 1
        self._op_id = op_id or f"{self.pid}:write-{self._operation_counter}"
        self._value = bytes(value)
        self._callback = callback
        self._invoked_at = self.now
        self._responders = set()
        self._max_tag = Tag.initial()
        self._write_tag = None
        self._phase = "get-tag"
        for server in self.config.l1_pids:
            self.send(server, msg.QueryTag(op_id=self._op_id))
        return self._op_id

    # -- message handling -------------------------------------------------------------

    def on_message(self, sender: str, message: Message) -> None:
        if message.op_id != self._op_id or self._phase is None:
            return
        if self._phase == "get-tag" and isinstance(message, msg.QueryTagResponse):
            self._handle_tag_response(sender, message)
        elif self._phase == "put-data" and isinstance(message, msg.PutDataAck):
            self._handle_put_data_ack(sender, message)

    def _handle_tag_response(self, sender: str, message: msg.QueryTagResponse) -> None:
        if sender in self._responders:
            return
        self._responders.add(sender)
        if message.tag > self._max_tag:
            self._max_tag = message.tag
        if len(self._responders) < self.config.l1_quorum:
            return
        # Move to the put-data phase with the new, strictly larger tag.
        self._write_tag = self._max_tag.next_tag(self.pid)
        self._phase = "put-data"
        self._responders = set()
        for server in self.config.l1_pids:
            self.send(
                server,
                msg.PutData(
                    tag=self._write_tag, value=self._value or b"",
                    data_size=1.0, op_id=self._op_id,
                ),
            )

    def _handle_put_data_ack(self, sender: str, message: msg.PutDataAck) -> None:
        if message.tag != self._write_tag or sender in self._responders:
            return
        self._responders.add(sender)
        if len(self._responders) < self.config.l1_quorum:
            return
        result = OperationResult(
            op_id=self._op_id or "",
            client_id=self.pid,
            kind="write",
            tag=self._write_tag or Tag.initial(),
            value=self._value,
            invoked_at=self._invoked_at,
            responded_at=self.now,
        )
        callback = self._callback
        self._phase = None
        self._op_id = None
        self._callback = None
        if callback is not None:
            callback(result)


__all__ = ["Writer", "CompletionCallback"]
