"""The reader automaton (Figure 1, right, of the paper).

A read is three phases:

1. **get-committed-tag** -- collect committed tags ``tc`` from ``f1 + k``
   L1 servers; the requested tag ``treq`` is their maximum.
2. **get-data** -- send ``treq`` to every L1 server and wait until
   responses from ``f1 + k`` *distinct* servers have arrived such that at
   least one of them is a (tag, value) pair, or at least ``k`` of them are
   (tag, coded-element) pairs for a common tag.  In the latter case the
   value is decoded with code ``C1``.  The pair with the highest tag wins.
3. **put-tag** -- write back the chosen tag (not the value!) and wait for
   ``f1 + k`` acknowledgements before returning the value.

Note that servers may respond more than once in phase 2 (a ``(⊥, ⊥)``
after a failed regeneration, then later a real (tag, value) pair pushed
when a concurrent write commits); the reader keys its quorum count on
distinct server identities and keeps every data response it has seen.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from repro.codes.base import DecodingError
from repro.codes.layered import LayeredCode
from repro.core import messages as msg
from repro.core.config import LDSConfig
from repro.core.results import OperationResult
from repro.core.tags import Tag
from repro.net.latency import CLIENT
from repro.net.messages import Message
from repro.net.process import Process

CompletionCallback = Callable[[OperationResult], None]


class Reader(Process):
    """A client that performs read operations against the L1 layer."""

    def __init__(self, pid: str, config: LDSConfig, code: LayeredCode) -> None:
        super().__init__(pid, link_class=CLIENT)
        self.config = config
        self.code = code
        self._operation_counter = 0
        self._l1_index = {pid: i for i, pid in enumerate(config.l1_pids)}
        # In-flight operation state.
        self._phase: Optional[str] = None
        self._op_id: Optional[str] = None
        self._callback: Optional[CompletionCallback] = None
        self._invoked_at = 0.0
        self._responders: Set[str] = set()
        self._requested_tag = Tag.initial()
        self._value_candidates: Dict[Tag, bytes] = {}
        self._coded_candidates: Dict[Tag, Dict[int, bytes]] = {}
        self._chosen_tag: Optional[Tag] = None
        self._chosen_value: Optional[bytes] = None

    # -- public API -----------------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while an operation is in flight."""
        return self._phase is not None

    def read(self, callback: Optional[CompletionCallback] = None,
             op_id: Optional[str] = None) -> str:
        """Invoke a read operation; returns the operation id."""
        if self.busy:
            raise RuntimeError(f"reader {self.pid} already has an operation in flight")
        if self.crashed:
            raise RuntimeError(f"reader {self.pid} has crashed")
        self._operation_counter += 1
        self._op_id = op_id or f"{self.pid}:read-{self._operation_counter}"
        self._callback = callback
        self._invoked_at = self.now
        self._responders = set()
        self._requested_tag = Tag.initial()
        self._value_candidates = {}
        self._coded_candidates = {}
        self._chosen_tag = None
        self._chosen_value = None
        self._phase = "get-committed-tag"
        for server in self.config.l1_pids:
            self.send(server, msg.QueryCommittedTag(op_id=self._op_id))
        return self._op_id

    # -- message handling ---------------------------------------------------------------

    def on_message(self, sender: str, message: Message) -> None:
        if message.op_id != self._op_id or self._phase is None:
            return
        if self._phase == "get-committed-tag" and isinstance(
            message, msg.QueryCommittedTagResponse
        ):
            self._handle_committed_tag(sender, message)
        elif self._phase == "get-data" and isinstance(message, msg.QueryDataResponse):
            self._handle_data_response(sender, message)
        elif self._phase == "put-tag" and isinstance(message, msg.PutTagAck):
            self._handle_put_tag_ack(sender, message)

    # -- phase 1: get-committed-tag ---------------------------------------------------------

    def _handle_committed_tag(self, sender: str,
                              message: msg.QueryCommittedTagResponse) -> None:
        if sender in self._responders:
            return
        self._responders.add(sender)
        if message.tag > self._requested_tag:
            self._requested_tag = message.tag
        if len(self._responders) < self.config.l1_quorum:
            return
        self._phase = "get-data"
        self._responders = set()
        for server in self.config.l1_pids:
            self.send(
                server,
                msg.QueryData(requested_tag=self._requested_tag, op_id=self._op_id),
            )

    # -- phase 2: get-data ---------------------------------------------------------------------

    def _handle_data_response(self, sender: str, message: msg.QueryDataResponse) -> None:
        self._responders.add(sender)
        if not message.is_null and message.tag is not None:
            if message.is_value and message.value is not None:
                self._value_candidates[message.tag] = message.value
            elif message.coded_element is not None:
                server_index = self._l1_index.get(sender)
                if server_index is not None:
                    self._coded_candidates.setdefault(message.tag, {})[server_index] = (
                        message.coded_element
                    )
        self._try_finish_get_data()

    def _decodable_tags(self) -> Dict[Tag, Dict[int, bytes]]:
        """Coded-element groups that already contain at least k distinct servers."""
        return {
            tag: elements
            for tag, elements in self._coded_candidates.items()
            if len(elements) >= self.config.k
        }

    def _try_finish_get_data(self) -> None:
        if len(self._responders) < self.config.l1_quorum:
            return
        decodable = self._decodable_tags()
        if not self._value_candidates and not decodable:
            return
        best_value_tag = max(self._value_candidates) if self._value_candidates else None
        best_coded_tag = max(decodable) if decodable else None
        # Pick the highest tag among all candidates, preferring the directly
        # received value when both carry the same tag.
        if best_coded_tag is not None and (
            best_value_tag is None or best_coded_tag > best_value_tag
        ):
            try:
                value = self.code.decode_from_l1(decodable[best_coded_tag])
            except DecodingError:
                # Defensive: should not happen with consistent coded elements.
                if best_value_tag is None:
                    return
                best_coded_tag = None
                value = self._value_candidates[best_value_tag]
                chosen_tag = best_value_tag
            else:
                chosen_tag = best_coded_tag
        else:
            chosen_tag = best_value_tag
            value = self._value_candidates[best_value_tag]
        self._chosen_tag = chosen_tag
        self._chosen_value = value
        self._phase = "put-tag"
        self._responders = set()
        for server in self.config.l1_pids:
            self.send(server, msg.PutTag(tag=chosen_tag, op_id=self._op_id))

    # -- phase 3: put-tag --------------------------------------------------------------------------

    def _handle_put_tag_ack(self, sender: str, message: msg.PutTagAck) -> None:
        if sender in self._responders:
            return
        self._responders.add(sender)
        if len(self._responders) < self.config.l1_quorum:
            return
        result = OperationResult(
            op_id=self._op_id or "",
            client_id=self.pid,
            kind="read",
            tag=self._chosen_tag or Tag.initial(),
            value=self._chosen_value,
            invoked_at=self._invoked_at,
            responded_at=self.now,
        )
        callback = self._callback
        self._phase = None
        self._op_id = None
        self._callback = None
        if callback is not None:
            callback(result)


__all__ = ["Reader", "CompletionCallback"]
