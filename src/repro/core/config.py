"""LDS system configuration.

The deployment is described by the layer sizes and failure budgets
``(n1, f1, n2, f2)``.  Following Section II of the paper, the regenerating
code parameters are derived as ``k = n1 - 2 f1`` and ``d = n2 - 2 f2``,
so that the L1 quorum size is ``f1 + k`` and the L2 quorum size is
``f2 + d = n2 - f2``.  The constraints are:

* ``f1 < n1 / 2`` (equivalently ``k >= 1``),
* ``f2 < n2 / 3`` (which implies ``d > f2``),
* ``k <= d`` (required by the regenerating-code framework), and
* ``n1 + n2 <= 255`` (so the codes fit in GF(2^8)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codes.layered import LayeredCode


@dataclass(frozen=True)
class LDSConfig:
    """Static parameters of one LDS deployment."""

    n1: int
    n2: int
    f1: int
    f2: int
    #: Regenerating-code operating point: "mbr" (the paper's choice) or "msr".
    operating_point: str = "mbr"
    #: Initial object value v0.
    initial_value: bytes = b"\x00"

    def __post_init__(self) -> None:
        if self.n1 < 1 or self.n2 < 1:
            raise ValueError("both layers need at least one server")
        if self.f1 < 0 or self.f2 < 0:
            raise ValueError("failure budgets must be non-negative")
        if not self.f1 < self.n1 / 2:
            raise ValueError(f"LDS requires f1 < n1/2 (got f1={self.f1}, n1={self.n1})")
        if not self.f2 < self.n2 / 3:
            raise ValueError(f"LDS requires f2 < n2/3 (got f2={self.f2}, n2={self.n2})")
        if self.k > self.d:
            raise ValueError(
                "the regenerating code requires k <= d, i.e. "
                f"n1 - 2*f1 <= n2 - 2*f2 (got k={self.k}, d={self.d})"
            )
        if self.n1 + self.n2 > 255:
            raise ValueError("GF(2^8) codes require n1 + n2 <= 255")
        if self.operating_point.lower() not in ("mbr", "msr"):
            raise ValueError("operating_point must be 'mbr' or 'msr'")

    # -- derived parameters ------------------------------------------------------

    @property
    def k(self) -> int:
        """Reconstruction parameter: n1 = 2 f1 + k."""
        return self.n1 - 2 * self.f1

    @property
    def d(self) -> int:
        """Repair degree: n2 = 2 f2 + d."""
        return self.n2 - 2 * self.f2

    @property
    def l1_quorum(self) -> int:
        """Quorum size for client <-> L1 interactions (f1 + k)."""
        return self.f1 + self.k

    @property
    def l2_quorum(self) -> int:
        """Quorum size for L1 <-> L2 interactions (f2 + d = n2 - f2)."""
        return self.n2 - self.f2

    # -- process naming -----------------------------------------------------------

    def l1_pid(self, index: int) -> str:
        """Process id of the ``index``-th L1 server (0-based)."""
        if not 0 <= index < self.n1:
            raise ValueError(f"L1 index {index} out of range")
        return f"l1-{index}"

    def l2_pid(self, index: int) -> str:
        """Process id of the ``index``-th L2 server (0-based)."""
        if not 0 <= index < self.n2:
            raise ValueError(f"L2 index {index} out of range")
        return f"l2-{index}"

    @property
    def l1_pids(self) -> list[str]:
        return [self.l1_pid(i) for i in range(self.n1)]

    @property
    def l2_pids(self) -> list[str]:
        return [self.l2_pid(i) for i in range(self.n2)]

    @property
    def broadcast_relay_pids(self) -> list[str]:
        """The fixed set of f1 + 1 L1 servers used by the broadcast primitive."""
        return [self.l1_pid(i) for i in range(self.f1 + 1)]

    # -- code construction ------------------------------------------------------------

    def build_code(self) -> LayeredCode:
        """Construct the layered regenerating code for this configuration."""
        return LayeredCode(
            n1=self.n1, n2=self.n2, k=self.k, d=self.d,
            operating_point=self.operating_point,
        )

    # -- convenience constructors -------------------------------------------------------

    @classmethod
    def symmetric(cls, n: int, f: int, **kwargs) -> "LDSConfig":
        """A symmetric system with n1 = n2 = n and f1 = f2 = f (so k = d).

        This is the configuration used by the multi-object analysis of
        Section V-A.1 and Figure 6.
        """
        return cls(n1=n, n2=n, f1=f, f2=f, **kwargs)

    @classmethod
    def max_fault_tolerance(cls, n1: int, n2: int, **kwargs) -> "LDSConfig":
        """Use the largest failure budgets the layer sizes allow, subject to k <= d."""
        f1 = (n1 - 1) // 2
        f2 = (n2 - 1) // 3
        # Shrink f2 if necessary so that d = n2 - 2*f2 is at least k = n1 - 2*f1.
        while n1 - 2 * f1 > n2 - 2 * f2 and f2 > 0:
            f2 -= 1
        return cls(n1=n1, n2=n2, f1=f1, f2=f2, **kwargs)

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"LDS(n1={self.n1}, f1={self.f1}, n2={self.n2}, f2={self.f2}, "
            f"k={self.k}, d={self.d}, point={self.operating_point})"
        )


__all__ = ["LDSConfig"]
