"""Version tags.

A tag is a pair ``(z, writer_id)`` where ``z`` is a natural number and
``writer_id`` identifies the writer (Section III).  Tags are totally
ordered lexicographically: ``t2 > t1`` iff ``t2.z > t1.z`` or
(``t2.z == t1.z`` and ``t2.writer_id > t1.writer_id``).  The distinguished
initial tag is ``(0, "")``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering


@total_ordering
@dataclass(frozen=True)
class Tag:
    """A version tag ``(z, writer_id)`` with the paper's total order."""

    z: int
    writer_id: str = ""

    def __post_init__(self) -> None:
        if self.z < 0:
            raise ValueError("tag counter must be non-negative")

    def __lt__(self, other: "Tag") -> bool:
        if not isinstance(other, Tag):
            return NotImplemented
        return (self.z, self.writer_id) < (other.z, other.writer_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tag):
            return NotImplemented
        return (self.z, self.writer_id) == (other.z, other.writer_id)

    def __hash__(self) -> int:
        return hash((self.z, self.writer_id))

    def next_tag(self, writer_id: str) -> "Tag":
        """The tag a writer creates after observing this one (``z + 1``)."""
        return Tag(self.z + 1, writer_id)

    @classmethod
    def initial(cls) -> "Tag":
        """The distinguished initial tag t0."""
        return cls(0, "")

    def __repr__(self) -> str:
        return f"Tag(z={self.z}, writer={self.writer_id!r})"


#: Singleton-ish initial tag used throughout the protocol.
INITIAL_TAG = Tag.initial()

__all__ = ["Tag", "INITIAL_TAG"]
