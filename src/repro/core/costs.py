"""Storage cost accounting.

The paper distinguishes *temporary* storage (the lists ``L`` kept by L1
servers) from *permanent* storage (the single coded element kept by every
L2 server), both normalised by the object size and ignoring metadata
(Section II-d).  :class:`StorageCostTracker` receives add/remove events
from the servers and maintains the current and worst-case totals, plus an
event log that the latency analysis uses to locate the point ``Te(pi)``
after which a write's value is gone from every L1 list (Lemma V.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.tags import Tag


@dataclass(frozen=True)
class StorageSample:
    """A point-in-time snapshot of normalised storage cost."""

    time: float
    l1_cost: float
    l2_cost: float

    @property
    def total(self) -> float:
        return self.l1_cost + self.l2_cost


@dataclass
class StorageEvent:
    """One change to an L1 temporary-storage list."""

    time: float
    server: str
    tag: Tag
    kind: str  # "add" or "remove"
    size: float


class StorageCostTracker:
    """Tracks normalised L1 (temporary) and L2 (permanent) storage cost."""

    def __init__(self, object_id: str = "object-0") -> None:
        self.object_id = object_id
        self._l1_current: Dict[Tuple[str, Tag], float] = {}
        self._l2_current: Dict[str, float] = {}
        self.l1_peak = 0.0
        self.l2_peak = 0.0
        self.events: List[StorageEvent] = []
        self.samples: List[StorageSample] = []

    # -- current totals ------------------------------------------------------

    @property
    def l1_cost(self) -> float:
        """Current temporary storage cost across all L1 servers."""
        return sum(self._l1_current.values())

    @property
    def l2_cost(self) -> float:
        """Current permanent storage cost across all L2 servers."""
        return sum(self._l2_current.values())

    @property
    def total_cost(self) -> float:
        return self.l1_cost + self.l2_cost

    # -- event sinks (called by the servers) -------------------------------------

    def value_added(self, time: float, server: str, tag: Tag, size: float) -> None:
        """An L1 server stored a value of normalised ``size`` under ``tag``."""
        self._l1_current[(server, tag)] = size
        self.l1_peak = max(self.l1_peak, self.l1_cost)
        self.events.append(StorageEvent(time, server, tag, "add", size))

    def value_removed(self, time: float, server: str, tag: Tag) -> None:
        """An L1 server garbage-collected the value stored under ``tag``."""
        size = self._l1_current.pop((server, tag), 0.0)
        if size:
            self.events.append(StorageEvent(time, server, tag, "remove", size))

    def l2_element_stored(self, server: str, size: float) -> None:
        """An L2 server now stores a coded element of normalised ``size``.

        L2 servers hold exactly one element at a time, so this overwrites
        the server's previous contribution.
        """
        self._l2_current[server] = size
        self.l2_peak = max(self.l2_peak, self.l2_cost)

    def sample(self, time: float) -> StorageSample:
        """Record and return a snapshot of the current costs."""
        snapshot = StorageSample(time=time, l1_cost=self.l1_cost, l2_cost=self.l2_cost)
        self.samples.append(snapshot)
        return snapshot

    # -- post-hoc analysis ----------------------------------------------------------

    def temporary_clear_time(self, tag: Tag) -> Optional[float]:
        """The earliest time after which no L1 list holds a value with tag <= ``tag``.

        This is the point ``Te(pi)`` of Lemma V.1 for a write with the given
        tag, computed from the event log.  Returns ``None`` if some such
        value is still stored at the end of the recorded execution.
        """
        live: Dict[Tuple[str, Tag], float] = {}
        last_removal = 0.0
        for event in self.events:
            if event.tag > tag:
                continue
            key = (event.server, event.tag)
            if event.kind == "add":
                live[key] = event.time
            else:
                live.pop(key, None)
                last_removal = max(last_removal, event.time)
        if live:
            return None
        return last_removal

    def peak_costs(self) -> Tuple[float, float]:
        """Worst-case (L1, L2) storage costs observed so far."""
        return self.l1_peak, self.l2_peak


__all__ = ["StorageCostTracker", "StorageSample", "StorageEvent"]
