"""Protocol messages of the LDS algorithm (Figures 1-3 of the paper).

Every message is a :class:`~repro.net.messages.Message` subclass with
typed fields.  ``data_size`` follows the paper's accounting: full values
count 1, coded elements count ``alpha / B``, repair-helper data counts
``beta / B``, and all metadata-only messages count 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.tags import Tag
from repro.net.messages import Message


# -- client <-> L1: write path (Figure 1, writer side) -------------------------

@dataclass
class QueryTag(Message):
    """get-tag phase: writer asks an L1 server for its maximum list tag."""


@dataclass
class QueryTagResponse(Message):
    """Response to :class:`QueryTag` carrying the maximum tag in the list."""

    tag: Tag = field(default_factory=Tag.initial)


@dataclass
class PutData(Message):
    """put-data phase: writer sends the new (tag, value) pair; data size 1."""

    tag: Tag = field(default_factory=Tag.initial)
    value: bytes = b""


@dataclass
class PutDataAck(Message):
    """Acknowledgement of a put-data (sent directly or from broadcast-resp)."""

    tag: Tag = field(default_factory=Tag.initial)


# -- L1 <-> L1: metadata broadcast (Figure 2) ------------------------------------

@dataclass
class CommitTag(Message):
    """COMMIT-TAG broadcast payload announcing reception of a (tag, value) pair."""

    tag: Tag = field(default_factory=Tag.initial)


# -- client <-> L1: read path (Figure 1, reader side) ------------------------------

@dataclass
class QueryCommittedTag(Message):
    """get-committed-tag phase: reader asks an L1 server for its committed tag."""


@dataclass
class QueryCommittedTagResponse(Message):
    """Response carrying the server's committed tag tc."""

    tag: Tag = field(default_factory=Tag.initial)


@dataclass
class QueryData(Message):
    """get-data phase: reader requests data for tags >= ``requested_tag``."""

    requested_tag: Tag = field(default_factory=Tag.initial)


@dataclass
class QueryDataResponse(Message):
    """An L1 server's response to a reader during the get-data phase.

    Exactly one of the following shapes:

    * a (tag, value) pair (``is_value`` True, ``value`` set, data size 1);
    * a (tag, coded-element) pair (``is_value`` False, ``coded_element``
      set, data size alpha / B);
    * a null response ``(⊥, ⊥)`` signalling failed regeneration
      (``is_null`` True, data size 0).
    """

    tag: Optional[Tag] = None
    value: Optional[bytes] = None
    coded_element: Optional[bytes] = None
    is_value: bool = False
    is_null: bool = False


@dataclass
class PutTag(Message):
    """put-tag phase: reader writes back the tag it is about to return."""

    tag: Tag = field(default_factory=Tag.initial)


@dataclass
class PutTagAck(Message):
    """Acknowledgement of a put-tag."""


# -- L1 <-> L2: internal operations (Figures 2 and 3) ----------------------------------

@dataclass
class WriteCodeElem(Message):
    """write-to-L2: an L1 server sends a (tag, coded element) to an L2 server."""

    tag: Tag = field(default_factory=Tag.initial)
    coded_element: bytes = b""


@dataclass
class AckCodeElem(Message):
    """L2 acknowledgement of a :class:`WriteCodeElem`."""

    tag: Tag = field(default_factory=Tag.initial)


@dataclass
class QueryCodeElem(Message):
    """regenerate-from-L2: an L1 server asks all L2 servers for helper data.

    ``reader_id`` identifies the outstanding read this regeneration serves
    and ``l1_index`` is the code-symbol index the helper data must target.
    """

    reader_id: str = ""
    l1_index: int = 0


@dataclass
class SendHelperElem(Message):
    """L2 response to :class:`QueryCodeElem` with beta symbols of helper data."""

    reader_id: str = ""
    tag: Tag = field(default_factory=Tag.initial)
    helper_data: bytes = b""


__all__ = [
    "QueryTag",
    "QueryTagResponse",
    "PutData",
    "PutDataAck",
    "CommitTag",
    "QueryCommittedTag",
    "QueryCommittedTagResponse",
    "QueryData",
    "QueryDataResponse",
    "PutTag",
    "PutTagAck",
    "WriteCodeElem",
    "AckCodeElem",
    "QueryCodeElem",
    "SendHelperElem",
]
