"""Repair of crashed back-end (L2) servers.

The paper's conclusion lists "repair of erasure-coded servers in L2" as
future work and observes that the modularity of the layered design should
make it simpler than the single-layer repair problem of RADON [18].  This
module provides that extension: a recovery coordinator that rebuilds the
(tag, coded element) pair of a crashed L2 server from the surviving L2
servers, using exactly the regenerating-code repair machinery that already
powers ``regenerate-from-L2`` -- the helper data for an L2 symbol is
computed from each survivor's stored element and the identity of the
crashed server only, and any ``d`` helpers with a common tag suffice.

Because concurrent ``write-to-L2`` operations may leave the surviving
servers holding different tags, the coordinator repairs the *highest tag
held by at least d survivors*.  By the protocol's L2-quorum rule
(``n2 - f2 = f2 + d`` acknowledgements before a value is considered
offloaded), any tag whose offload completed is held by at least ``d``
survivors even after ``f2`` additional crashes are excluded, so a
completed write is never lost by repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.codes.base import CodedElement, RepairError
from repro.core.system import LDSSystem
from repro.core.server_l2 import L2Server
from repro.core.tags import Tag


@dataclass(frozen=True)
class L2RepairReport:
    """Outcome of one back-end repair operation."""

    repaired_index: int
    restored_tag: Tag
    helpers_used: List[int]
    #: Normalised download volume (beta / B per helper, so d * beta / B total).
    download_fraction: float


class BackendRepairCoordinator:
    """Rebuilds crashed L2 servers of an :class:`~repro.core.system.LDSSystem`.

    The coordinator plays the role of the replacement server: it gathers
    helper data from surviving L2 servers, regenerates the lost coded
    element exactly (product-matrix codes are exact-repair), installs a
    fresh :class:`~repro.core.server_l2.L2Server` process under the same
    process id, and returns a report of what was moved.
    """

    def __init__(self, system: LDSSystem) -> None:
        self.system = system
        self.code = system.code
        self.config = system.config

    # -- queries -----------------------------------------------------------------

    def crashed_l2_indices(self) -> List[int]:
        """Indices of L2 servers that have crashed."""
        return [server.index for server in self.system.l2_servers if server.crashed]

    def survivor_elements(self) -> Dict[int, L2Server]:
        """Alive L2 servers keyed by index."""
        return {server.index: server for server in self.system.l2_servers
                if not server.crashed}

    # -- repair -------------------------------------------------------------------

    def _select_repair_tag(self, survivors: Dict[int, L2Server]) -> Tag:
        """The highest tag held by at least d survivors."""
        counts: Dict[Tag, int] = {}
        for server in survivors.values():
            counts[server.stored_tag] = counts.get(server.stored_tag, 0) + 1
        candidates = [tag for tag, count in counts.items() if count >= self.config.d]
        if not candidates:
            raise RepairError(
                "no tag is held by d surviving L2 servers; repair is not possible "
                "until in-flight write-to-L2 operations settle"
            )
        return max(candidates)

    def repair(self, failed_index: int) -> L2RepairReport:
        """Rebuild the coded element of L2 server ``failed_index``.

        Raises :class:`RepairError` when the server is not crashed, when too
        many servers are down, or when no tag is common to ``d`` survivors.
        """
        servers = self.system.l2_servers
        if not 0 <= failed_index < self.config.n2:
            raise RepairError(f"no such L2 server index {failed_index}")
        if not servers[failed_index].crashed:
            raise RepairError(f"L2 server {failed_index} has not crashed")
        survivors = self.survivor_elements()
        if len(survivors) < self.config.d:
            raise RepairError(
                f"repair needs d={self.config.d} surviving L2 servers, "
                f"only {len(survivors)} are alive"
            )
        repair_tag = self._select_repair_tag(survivors)
        helpers: Dict[int, bytes] = {}
        failed_symbol = self.code.l2_symbol_index(failed_index)
        for index, server in sorted(survivors.items()):
            if server.stored_tag != repair_tag:
                continue
            helpers[self.code.l2_symbol_index(index)] = self.code.code.helper_data(
                helper_index=self.code.l2_symbol_index(index),
                helper_element=server.stored_element.data,
                failed_index=failed_symbol,
            )
            if len(helpers) == self.config.d:
                break
        repaired = self.code.code.repair(failed_symbol, helpers)
        self._install_replacement(failed_index, repair_tag, repaired)
        download = float(self.code.costs.helper_fraction) * len(helpers)
        return L2RepairReport(
            repaired_index=failed_index,
            restored_tag=repair_tag,
            helpers_used=sorted(
                index - self.config.n1 for index in helpers
            ),
            download_fraction=download,
        )

    def repair_all(self) -> List[L2RepairReport]:
        """Repair every crashed L2 server (in index order)."""
        return [self.repair(index) for index in self.crashed_l2_indices()]

    # -- internals -------------------------------------------------------------------

    def _install_replacement(self, index: int, tag: Tag, element: CodedElement) -> None:
        """Replace the crashed process with a fresh one holding the repaired pair."""
        pid = self.config.l2_pid(index)
        replacement = L2Server(
            pid=pid, index=index, code=self.code, initial_tag=tag,
            initial_element=CodedElement(index=self.code.l2_symbol_index(index),
                                         data=element.data),
            storage_tracker=self.system.storage,
        )
        # Swap the process in the network registry and the system's server list.
        self.system.network.processes[pid] = replacement
        replacement.attach(self.system.network)
        self.system.l2_servers[index] = replacement


__all__ = ["BackendRepairCoordinator", "L2RepairReport"]
