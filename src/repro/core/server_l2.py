"""The layer-2 (back-end) server automaton (Figure 3 of the paper).

An L2 server's state is a single ``(tag, coded element)`` pair,
initialised to the coded element of the initial value ``v0`` under the
initial tag ``t0``.  It participates in two internal operations:

* ``write-to-L2`` -- on a ``WRITE-CODE-ELEM`` it keeps the incoming pair
  if the incoming tag is larger than the stored one, and acknowledges in
  every case;
* ``regenerate-from-L2`` -- on a ``QUERY-CODE-ELEM`` it computes, from its
  stored coded element alone, the ``beta`` helper symbols needed to repair
  the requesting L1 server's code symbol, and returns them together with
  the stored tag.  Crucially (Section II-c) the computation depends only
  on the identity of the requesting L1 server, never on which other L2
  servers end up helping.
"""

from __future__ import annotations

from typing import Optional

from repro.codes.base import CodedElement
from repro.codes.layered import LayeredCode
from repro.core import messages as msg
from repro.core.costs import StorageCostTracker
from repro.core.tags import Tag
from repro.net.latency import L2
from repro.net.messages import Message
from repro.net.process import Process


class L2Server(Process):
    """One back-end server holding a single (tag, coded element) pair."""

    def __init__(self, pid: str, index: int, code: LayeredCode,
                 initial_tag: Tag, initial_element: CodedElement,
                 storage_tracker: Optional[StorageCostTracker] = None) -> None:
        super().__init__(pid, link_class=L2)
        self.index = index
        self.code = code
        self.stored_tag = initial_tag
        self.stored_element = initial_element
        self.storage_tracker = storage_tracker
        self._element_fraction = float(code.costs.element_fraction)
        self._helper_fraction = float(code.costs.helper_fraction)
        if storage_tracker is not None:
            storage_tracker.l2_element_stored(self.pid, self._element_fraction)

    # -- message dispatch -------------------------------------------------------

    def on_message(self, sender: str, message: Message) -> None:
        if isinstance(message, msg.WriteCodeElem):
            self._write_to_l2_resp(sender, message)
        elif isinstance(message, msg.QueryCodeElem):
            self._regenerate_from_l2_resp(sender, message)
        # Unknown messages are ignored (crash-stop model, no byzantine behaviour).

    # -- handlers ----------------------------------------------------------------

    def _write_to_l2_resp(self, sender: str, message: msg.WriteCodeElem) -> None:
        """write-to-L2-resp: keep the pair with the larger tag, always ack."""
        if message.tag > self.stored_tag:
            self.stored_tag = message.tag
            self.stored_element = CodedElement(index=self.code.l2_symbol_index(self.index),
                                               data=message.coded_element)
            if self.storage_tracker is not None:
                self.storage_tracker.l2_element_stored(self.pid, self._element_fraction)
        self.send(sender, msg.AckCodeElem(tag=message.tag, op_id=message.op_id))

    def _regenerate_from_l2_resp(self, sender: str, message: msg.QueryCodeElem) -> None:
        """regenerate-from-L2-resp: compute and return helper data.

        The helper data targets the code symbol of the requesting L1 server
        (``message.l1_index``); it is computed from this server's stored
        element only.
        """
        helper = self.code.helper_data(
            l2_server=self.index,
            stored=self.stored_element,
            l1_server=message.l1_index,
        )
        response = msg.SendHelperElem(
            reader_id=message.reader_id,
            tag=self.stored_tag,
            helper_data=helper,
            data_size=self._helper_fraction,
            op_id=message.op_id,
        )
        response.payload["regen_id"] = message.payload.get("regen_id")
        self.send(sender, response)


__all__ = ["L2Server"]
