"""The LDS (Layered Data Storage) algorithm -- the paper's contribution.

The package is organised around the three protocol roles of Figures 1-3 of
the paper plus the system builder that wires them together:

* :mod:`repro.core.tags` -- version tags ``(z, writer_id)`` with the total
  order used throughout the protocol.
* :mod:`repro.core.config` -- the system configuration ``(n1, n2, f1, f2)``
  and the derived code parameters ``k = n1 - 2 f1`` and ``d = n2 - 2 f2``.
* :mod:`repro.core.messages` -- every protocol message of Figures 1-3.
* :mod:`repro.core.server_l1` / :mod:`repro.core.server_l2` -- the layer-1
  and layer-2 server automata, including the internal ``write-to-L2`` and
  ``regenerate-from-L2`` operations.
* :mod:`repro.core.writer` / :mod:`repro.core.reader` -- the client
  automata (two-phase writes, three-phase reads).
* :mod:`repro.core.system` -- :class:`~repro.core.system.LDSSystem`, the
  public facade: builds a simulated deployment, runs client operations,
  records histories, and tracks storage / communication costs.
* :mod:`repro.core.costs` -- storage accounting (temporary L1 storage vs
  permanent L2 storage).
* :mod:`repro.core.analysis` -- the closed-form cost and latency formulas
  of Section V (Lemmas V.2-V.5) used by the benchmarks to compare measured
  values against the paper.
* :mod:`repro.core.multi_object` -- the N-object system of Section V-A.1.
"""

from repro.core.tags import Tag
from repro.core.config import LDSConfig
from repro.core.system import LDSSystem, OperationResult
from repro.core.costs import StorageCostTracker, StorageSample
from repro.core.analysis import (
    LatencyBounds,
    mbr_read_cost,
    mbr_storage_cost_l2,
    mbr_write_cost,
    msr_read_cost,
    msr_storage_cost_l2,
    latency_bounds,
    multi_object_storage_bounds,
)
from repro.core.multi_object import MultiObjectSystem
from repro.core.repair import BackendRepairCoordinator, L2RepairReport

__all__ = [
    "BackendRepairCoordinator",
    "L2RepairReport",
    "Tag",
    "LDSConfig",
    "LDSSystem",
    "OperationResult",
    "StorageCostTracker",
    "StorageSample",
    "LatencyBounds",
    "mbr_write_cost",
    "mbr_read_cost",
    "mbr_storage_cost_l2",
    "msr_read_cost",
    "msr_storage_cost_l2",
    "latency_bounds",
    "multi_object_storage_bounds",
    "MultiObjectSystem",
]
