"""The LDS system facade.

:class:`LDSSystem` assembles a complete simulated deployment of the LDS
algorithm -- the discrete-event network, both server layers, the layered
regenerating code, writers and readers -- and exposes a small driving API:

* invoke operations (now or at a scheduled virtual time),
* run the simulation,
* inspect results, the operation history, communication costs and storage
  costs.

A single :class:`LDSSystem` implements **one** atomic object, exactly like
one instance of the LDS algorithm in the paper; multi-object deployments
are built by :class:`repro.core.multi_object.MultiObjectSystem`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from repro.codes.layered import LayeredCode
from repro.consistency.history import History, OperationRecorder, READ, WRITE
from repro.core.config import LDSConfig
from repro.core.costs import StorageCostTracker
from repro.core.reader import Reader
from repro.core.results import OperationResult
from repro.core.server_l1 import L1Server
from repro.core.server_l2 import L2Server
from repro.core.tags import Tag
from repro.core.writer import Writer
from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.net.simulator import Simulator


class LDSSystem:
    """A fully wired, simulated deployment of the LDS algorithm."""

    def __init__(self, config: LDSConfig, num_writers: int = 1, num_readers: int = 1,
                 latency_model: Optional[LatencyModel] = None,
                 object_id: str = "object-0",
                 encode_cache_size: int = 64) -> None:
        if num_writers < 0 or num_readers < 0:
            raise ValueError("client counts must be non-negative")
        self.config = config
        self.object_id = object_id
        self.simulator = Simulator()
        self.network = Network(simulator=self.simulator, latency_model=latency_model)
        self.code: LayeredCode = config.build_code()
        self._encode_cache: Dict[bytes, Dict[int, object]] = {}
        self._encode_cache_size = encode_cache_size
        self._wrap_encode_cache()
        self.storage = StorageCostTracker(object_id=object_id)
        self.recorder = OperationRecorder(initial_value=config.initial_value)
        self.results: Dict[str, OperationResult] = {}
        #: Callbacks invoked (synchronously, at the response event) for
        #: every completed operation.  The cluster's replica coordinator
        #: uses this to fan committed writes out to follower stores and to
        #: maintain per-session version floors.
        self.completion_hooks: List[Callable[[OperationResult], None]] = []

        # -- build the two server layers ------------------------------------------
        self.l1_servers: List[L1Server] = []
        for index in range(config.n1):
            server = L1Server(
                pid=config.l1_pid(index), index=index, config=config,
                code=self.code, storage_tracker=self.storage,
            )
            self.network.register(server)
            self.l1_servers.append(server)

        initial_elements = self.code.encode_for_backend(config.initial_value)
        self.l2_servers: List[L2Server] = []
        for index in range(config.n2):
            server = L2Server(
                pid=config.l2_pid(index), index=index, code=self.code,
                initial_tag=Tag.initial(), initial_element=initial_elements[index],
                storage_tracker=self.storage,
            )
            self.network.register(server)
            self.l2_servers.append(server)

        # -- build the clients -------------------------------------------------------
        self.writers: List[Writer] = []
        for index in range(num_writers):
            writer = Writer(pid=f"writer-{index}", config=config)
            self.network.register(writer)
            self.writers.append(writer)
        self.readers: List[Reader] = []
        for index in range(num_readers):
            reader = Reader(pid=f"reader-{index}", config=config, code=self.code)
            self.network.register(reader)
            self.readers.append(reader)

    # -- internal helpers -------------------------------------------------------------

    def _wrap_encode_cache(self) -> None:
        """Memoise backend encodes: every L1 server encodes the same value,
        so for simulation efficiency the (deterministic) encoding is shared.
        This is purely an engineering optimisation -- it does not change any
        message or state of the protocol."""
        if self._encode_cache_size <= 0:
            return
        original = self.code.encode_for_backend

        def cached(value: bytes):
            key = bytes(value)
            hit = self._encode_cache.get(key)
            if hit is not None:
                return hit
            encoded = original(key)
            if len(self._encode_cache) >= self._encode_cache_size:
                self._encode_cache.pop(next(iter(self._encode_cache)))
            self._encode_cache[key] = encoded
            return encoded

        self.code.encode_for_backend = cached  # type: ignore[method-assign]

    def _client(self, clients: List, selector: Union[int, str]):
        if isinstance(selector, int):
            return clients[selector]
        for client in clients:
            if client.pid == selector:
                return client
        raise KeyError(f"unknown client {selector!r}")

    def _record_completion(self, result: OperationResult) -> None:
        self.results[result.op_id] = result
        self.recorder.respond(
            result.op_id, time=result.responded_at,
            value=result.value if result.kind == READ else None,
            tag=result.tag,
        )
        for hook in list(self.completion_hooks):
            hook(result)

    # -- invoking operations ---------------------------------------------------------------

    def _allocate_op_id(self, client_pid: str, kind: str) -> str:
        """Allocate a unique operation id for a client at scheduling time."""
        sequences = getattr(self, "_op_sequences", None)
        if sequences is None:
            sequences = {}
            self._op_sequences = sequences
        key = (client_pid, kind)
        sequences[key] = sequences.get(key, 0) + 1
        return f"{client_pid}:{kind}-{sequences[key]}"

    def invoke_write(self, value: bytes, writer: Union[int, str] = 0,
                     at: Optional[float] = None) -> str:
        """Invoke (or schedule) a write; returns the operation id.

        When ``at`` is given, the invocation step happens at that virtual
        time; otherwise it happens at the current virtual time.
        """
        writer_process: Writer = self._client(self.writers, writer)
        op_id = self._allocate_op_id(writer_process.pid, "write")

        def start() -> None:
            started_op = writer_process.write(bytes(value), self._record_completion,
                                              op_id=op_id)
            self.recorder.invoke(
                started_op, client_id=writer_process.pid, kind=WRITE,
                object_id=self.object_id, value=bytes(value), time=self.simulator.now,
            )

        if at is None:
            start()
        else:
            self.simulator.schedule_at(at, start)
        return op_id

    def invoke_read(self, reader: Union[int, str] = 0,
                    at: Optional[float] = None) -> str:
        """Invoke (or schedule) a read; returns the operation id."""
        reader_process: Reader = self._client(self.readers, reader)
        op_id = self._allocate_op_id(reader_process.pid, "read")

        def start() -> None:
            started_op = reader_process.read(self._record_completion, op_id=op_id)
            self.recorder.invoke(
                started_op, client_id=reader_process.pid, kind=READ,
                object_id=self.object_id, value=None, time=self.simulator.now,
            )

        if at is None:
            start()
        else:
            self.simulator.schedule_at(at, start)
        return op_id

    # -- running ---------------------------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the simulation (optionally bounded by time or event count)."""
        self.network.run(until=until, max_events=max_events)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain."""
        self.network.run_until_idle(max_events=max_events)

    def run_until_complete(self, op_id: str, max_events: int = 10_000_000) -> OperationResult:
        """Run until the given operation completes; raises if it never does."""
        executed = 0
        while op_id not in self.results:
            if not self.simulator.step():
                raise RuntimeError(
                    f"operation {op_id} did not complete (no pending events remain)"
                )
            executed += 1
            if executed > max_events:
                raise RuntimeError(f"operation {op_id} did not complete within the event budget")
        return self.results[op_id]

    # -- synchronous convenience API ------------------------------------------------------------------

    def write(self, value: bytes, writer: Union[int, str] = 0) -> OperationResult:
        """Perform a write and run the simulation until it completes."""
        op_id = self.invoke_write(value, writer=writer)
        return self.run_until_complete(op_id)

    def read(self, reader: Union[int, str] = 0) -> OperationResult:
        """Perform a read and run the simulation until it completes."""
        op_id = self.invoke_read(reader=reader)
        return self.run_until_complete(op_id)

    # -- failures ----------------------------------------------------------------------------------------

    def crash_l1(self, index: int, at: Optional[float] = None) -> None:
        """Crash the ``index``-th L1 server (immediately or at a virtual time)."""
        pid = self.config.l1_pid(index)
        if at is None:
            self.network.crash(pid)
        else:
            self.simulator.schedule_at(at, lambda: self.network.crash(pid))

    def crash_l2(self, index: int, at: Optional[float] = None) -> None:
        """Crash the ``index``-th L2 server (immediately or at a virtual time)."""
        pid = self.config.l2_pid(index)
        if at is None:
            self.network.crash(pid)
        else:
            self.simulator.schedule_at(at, lambda: self.network.crash(pid))

    # -- inspection -----------------------------------------------------------------------------------------

    def history(self) -> History:
        """The operation history recorded so far."""
        return self.recorder.history()

    def operation_cost(self, op_id: str) -> float:
        """Normalised communication cost attributed to one operation.

        For writes this includes the internal write-to-L2 traffic (the
        servers stamp those messages with the originating write's id),
        matching the accounting of Lemma V.2.
        """
        return self.network.costs.operation_cost(op_id)

    @property
    def communication_cost(self) -> float:
        """Total normalised communication cost of the execution so far."""
        return self.network.costs.total

    def storage_sample(self):
        """Record and return a storage-cost snapshot at the current time."""
        return self.storage.sample(self.simulator.now)

    def alive_l1_count(self) -> int:
        return sum(1 for server in self.l1_servers if not server.crashed)

    def alive_l2_count(self) -> int:
        return sum(1 for server in self.l2_servers if not server.crashed)


__all__ = ["LDSSystem", "OperationResult"]
