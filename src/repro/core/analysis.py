"""Closed-form cost and latency formulas of Section V.

These functions encode the exact expressions of Lemmas V.2-V.5 and
Remarks 1-2 so that the benchmarks can print "paper" columns next to the
values measured on the simulator.  All communication and storage costs are
normalised by the object size (value size = 1 unit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def _check_kd(k: int, d: int) -> None:
    if not 1 <= k <= d:
        raise ValueError("require 1 <= k <= d")


# ---------------------------------------------------------------------------
# Lemma V.2 -- communication costs with the MBR code
# ---------------------------------------------------------------------------

def mbr_element_fraction(k: int, d: int) -> float:
    """alpha / B for the MBR code: 2d / (k (2d - k + 1))."""
    _check_kd(k, d)
    return 2.0 * d / (k * (2 * d - k + 1))


def mbr_helper_fraction(k: int, d: int) -> float:
    """beta / B for the MBR code: 2 / (k (2d - k + 1))."""
    _check_kd(k, d)
    return 2.0 / (k * (2 * d - k + 1))


def mbr_write_cost(n1: int, n2: int, k: int, d: int) -> float:
    """Write communication cost (Lemma V.2): n1 + n1 n2 2d / (k (2d - k + 1))."""
    return n1 + n1 * n2 * mbr_element_fraction(k, d)


def mbr_read_cost(n1: int, n2: int, k: int, d: int, delta: int = 0) -> float:
    """Read communication cost (Lemma V.2).

    ``n1 (1 + n2 / d) * 2d / (k (2d - k + 1)) + n1 * I(delta > 0)`` where
    ``delta`` is the concurrency parameter of Definition 2.
    """
    _check_kd(k, d)
    base = n1 * (1 + n2 / d) * 2.0 * d / (k * (2 * d - k + 1))
    return base + (n1 if delta > 0 else 0)


# ---------------------------------------------------------------------------
# Lemma V.3 / Remark 2 -- permanent storage cost
# ---------------------------------------------------------------------------

def mbr_storage_cost_l2(n2: int, k: int, d: int) -> float:
    """Permanent (L2) storage cost of one object with the MBR code: 2 d n2 / (k (2d - k + 1))."""
    return n2 * mbr_element_fraction(k, d)


def msr_element_fraction(k: int, d: int) -> float:
    """alpha / B for an MSR code: 1 / k."""
    _check_kd(k, d)
    return 1.0 / k


def msr_helper_fraction(k: int, d: int) -> float:
    """beta / B for an MSR code: 1 / (k (d - k + 1))."""
    _check_kd(k, d)
    return 1.0 / (k * (d - k + 1))


def msr_storage_cost_l2(n2: int, k: int, d: int) -> float:
    """Permanent storage cost with an MSR code: n2 / k (Remark 2)."""
    return n2 * msr_element_fraction(k, d)


def msr_read_cost(n1: int, n2: int, k: int, d: int, delta: int = 0) -> float:
    """Read cost if an MSR code were used instead (Remark 1).

    The regenerate-from-L2 traffic is ``n1 n2 beta/B`` and relaying the
    regenerated elements to the reader costs ``n1 alpha/B = n1 / k``, which
    is Omega(n1) even when ``delta = 0`` -- this is exactly why the paper
    picks the MBR operating point.
    """
    base = n1 * n2 * msr_helper_fraction(k, d) + n1 * msr_element_fraction(k, d)
    return base + (n1 if delta > 0 else 0)


def replication_storage_cost_l2(n2: int) -> float:
    """Permanent storage cost if L2 used replication: n2 (Figure 6 discussion)."""
    return float(n2)


# ---------------------------------------------------------------------------
# Lemma V.4 -- latency bounds under bounded link delays
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LatencyBounds:
    """Completion-time bounds of Lemma V.4."""

    write: float
    extended_write: float
    read: float


def latency_bounds(tau0: float, tau1: float, tau2: float) -> LatencyBounds:
    """Return the Lemma V.4 bounds for the given per-link delay bounds.

    * write           <= 4 tau1 + 2 tau0
    * extended write  <= max(3 tau1 + 2 tau0 + 2 tau2, 4 tau1 + 2 tau0)
    * read            <= max(6 tau1 + 2 tau2, 6 tau1 + 2 tau0 + tau2)

    The main-text statement of the read bound (5 tau1 + 2 tau0 + tau2 for
    the second argument) is slightly tighter than the appendix derivation;
    we use the appendix version, which is the one the proof supports.
    """
    if min(tau0, tau1, tau2) <= 0:
        raise ValueError("latency bounds require positive link delays")
    write = 4 * tau1 + 2 * tau0
    extended_write = max(3 * tau1 + 2 * tau0 + 2 * tau2, write)
    read = max(6 * tau1 + 2 * tau2, 6 * tau1 + 2 * tau0 + tau2)
    return LatencyBounds(write=write, extended_write=extended_write, read=read)


# ---------------------------------------------------------------------------
# Lemma V.5 -- multi-object storage bounds (Figure 6)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MultiObjectStorageBounds:
    """Worst-case L1 / L2 storage costs for an N-object symmetric system."""

    l1_bound: float
    l2_bound: float
    #: The threshold on theta below which L2 storage dominates (theta << N n2 k / (n1 mu)).
    theta_threshold: float

    @property
    def total(self) -> float:
        return self.l1_bound + self.l2_bound


def multi_object_storage_bounds(num_objects: int, n1: int, n2: int, k: int,
                                theta: float, mu: float) -> MultiObjectStorageBounds:
    """Lemma V.5 bounds for a symmetric system (n1 = n2, f1 = f2, so k = d).

    * L1 (temporary) storage <= ceil(5 + 2 mu) * theta * n1
    * L2 (permanent) storage  = 2 N n2 / (k + 1)
    """
    if num_objects < 0 or theta < 0:
        raise ValueError("num_objects and theta must be non-negative")
    if mu <= 0:
        raise ValueError("mu = tau2 / tau1 must be positive")
    l1_bound = math.ceil(5 + 2 * mu) * theta * n1
    l2_bound = 2.0 * num_objects * n2 / (k + 1)
    threshold = num_objects * n2 * k / (n1 * mu) if n1 > 0 else float("inf")
    return MultiObjectStorageBounds(
        l1_bound=float(l1_bound), l2_bound=l2_bound, theta_threshold=threshold
    )


__all__ = [
    "LatencyBounds",
    "MultiObjectStorageBounds",
    "latency_bounds",
    "mbr_element_fraction",
    "mbr_helper_fraction",
    "mbr_read_cost",
    "mbr_storage_cost_l2",
    "mbr_write_cost",
    "msr_element_fraction",
    "msr_helper_fraction",
    "msr_read_cost",
    "msr_storage_cost_l2",
    "multi_object_storage_bounds",
    "replication_storage_cost_l2",
]
