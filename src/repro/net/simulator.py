"""Discrete-event simulation core.

:class:`Simulator` keeps a virtual clock and a priority queue of pending
events.  All protocol activity -- message deliveries, client invocations,
crash injections -- is expressed as callbacks scheduled on this queue, so
executions are fully deterministic given the latency model's random seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass(order=True)
class _Event:
    """A scheduled callback; ordered by (time, sequence number)."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already ran."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Simulator:
    """A single-threaded discrete-event simulator with a virtual clock."""

    def __init__(self) -> None:
        self._queue: List[_Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        #: Invoked whenever a newly scheduled event becomes the queue head
        #: (see :meth:`set_head_listener`).
        self._head_listener: Optional[Callable[[], None]] = None
        #: Invoked with the absolute time of *every* scheduling attempt,
        #: before validation (see :meth:`set_schedule_guard`).
        self._schedule_guard: Optional[Callable[[float], None]] = None

    def set_head_listener(self, listener: Optional[Callable[[], None]]) -> None:
        """Register a callback fired when scheduling moves the head earlier.

        An external multiplexer (the global simulation kernel) tracks every
        simulator's next pending time in a heap; without a notification it
        would have to re-scan all sources after every event, because any
        event's callback may schedule onto *any* simulator.  The listener
        fires from :meth:`schedule_at` whenever the new event lands at the
        front of the queue, i.e. exactly when the externally visible head
        time can move earlier (cancellations can only move it later, which
        the multiplexer detects lazily).  Only one listener is supported --
        a simulator is ever owned by at most one kernel.
        """
        self._head_listener = listener

    def set_schedule_guard(self, guard: Optional[Callable[[float], None]]) -> None:
        """Register a callback invoked on every scheduling attempt.

        The guard receives the absolute virtual time *before* the
        past-check runs, so an external sanitizer (the kernel's runtime
        sanitizer in :mod:`repro.sim.sanitizer`) can attach source
        context and raise a structured error where this class would only
        raise a bare ``ValueError``.  Guards must not schedule events.
        Only one guard is supported -- a simulator is ever owned by at
        most one kernel.
        """
        self._schedule_guard = guard

    @property
    def now(self) -> float:
        """The current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("cannot schedule an event in the past")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if self._schedule_guard is not None:
            self._schedule_guard(time)
        if time < self._now:
            raise ValueError("cannot schedule an event in the past")
        event = _Event(time=time, sequence=next(self._counter), callback=callback)
        heapq.heappush(self._queue, event)
        if self._head_listener is not None and self._queue[0] is event:
            self._head_listener()
        return EventHandle(event)

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next pending event, or None when idle.

        Cancelled events at the head of the queue are discarded as a side
        effect, so the returned time is the one :meth:`step` would run at.
        This is what lets an external multiplexer (the global simulation
        kernel in :mod:`repro.sim.kernel`) merge many simulators onto one
        clock without executing anything.
        """
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def head_callback(self) -> Optional[Callable[[], None]]:
        """The callback :meth:`step` would run next, or None when idle.

        Cancelled events at the head are discarded as a side effect (as in
        :meth:`peek_time`).  Used by the global kernel's pump profiler to
        attribute the upcoming event to its callback's qualified name
        before executing it.
        """
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].callback if self._queue else None

    def step(self) -> bool:
        """Run the next pending event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue is drained, ``until`` is reached, or
        ``max_events`` events have been executed in this call."""
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                return
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and event.time > until:
                self._now = until
                return
            heapq.heappop(self._queue)
            self._now = event.time
            self._events_processed += 1
            event.callback()
            executed += 1
        if until is not None and until > self._now:
            self._now = until

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain; guards against runaway executions."""
        executed = 0
        while self.step():
            executed += 1
            if executed > max_events:
                raise RuntimeError("simulation exceeded the maximum event budget")


__all__ = ["Simulator", "EventHandle"]
