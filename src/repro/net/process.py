"""Process (I/O-automaton-style) base class.

Every participant in the simulation -- writers, readers, L1 servers, L2
servers -- is a :class:`Process`: it has a unique id, a link class used by
the latency model, a crash flag, and an ``on_message`` handler that the
network invokes when a message is delivered.  Following the paper's crash
failure model, a crashed process executes no further steps: deliveries to
it are dropped and its attempts to send are ignored.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.messages import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.network import Network


class Process:
    """Base class for all simulated processes."""

    def __init__(self, pid: str, link_class: str) -> None:
        self.pid = pid
        self.link_class = link_class
        self.crashed = False
        self.crash_time: Optional[float] = None
        self._network: Optional["Network"] = None

    # -- wiring ----------------------------------------------------------------

    def attach(self, network: "Network") -> None:
        """Called by :class:`~repro.net.network.Network` on registration."""
        self._network = network

    @property
    def network(self) -> "Network":
        if self._network is None:
            raise RuntimeError(f"process {self.pid} is not attached to a network")
        return self._network

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.network.simulator.now

    # -- actions -----------------------------------------------------------------

    def send(self, destination: str, message: Message) -> None:
        """Send a message over a reliable point-to-point channel.

        Crashed processes take no further steps, so sends by a crashed
        process are silently dropped.
        """
        if self.crashed:
            return
        self.network.send(self.pid, destination, message)

    def schedule(self, delay: float, callback) -> None:
        """Schedule a local step after ``delay`` (skipped if crashed by then)."""
        def guarded() -> None:
            if not self.crashed:
                callback()

        self.network.simulator.schedule(delay, guarded)

    def crash(self) -> None:
        """Crash the process: it executes no further steps."""
        if not self.crashed:
            self.crashed = True
            self.crash_time = self.now if self._network is not None else 0.0

    # -- handlers (overridden by protocol processes) -------------------------------

    def on_message(self, sender: str, message: Message) -> None:
        """Handle a delivered message.  Subclasses override this."""
        raise NotImplementedError

    def on_start(self) -> None:
        """Hook invoked once when the simulation starts; optional."""

    def __repr__(self) -> str:
        status = "crashed" if self.crashed else "alive"
        return f"{type(self).__name__}(pid={self.pid!r}, {status})"


__all__ = ["Process"]
