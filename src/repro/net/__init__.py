"""Asynchronous message-passing network substrate.

The paper's system model (Section II) is an asynchronous message-passing
network with reliable point-to-point channels, crash failures, and -- for
the Section V latency analysis -- bounded per-link delays.  This package
implements that model as a deterministic discrete-event simulation:

* :mod:`repro.net.simulator` -- the event loop (virtual clock + heap).
* :mod:`repro.net.messages` -- the message envelope with normalised size
  accounting (meta-data counts as zero, consistent with the paper).
* :mod:`repro.net.latency` -- per-link-class delay models (tau0 between L1
  servers, tau1 client<->L1, tau2 L1<->L2), fixed and randomised.
* :mod:`repro.net.process` -- the process (I/O-automaton-style) base class.
* :mod:`repro.net.network` -- reliable point-to-point channels, delivery,
  crash bookkeeping and communication-cost tracking.
* :mod:`repro.net.failures` -- crash-failure injection strategies.
* :mod:`repro.net.broadcast` -- the metadata broadcast primitive of [17]
  (relay through a fixed set of f1 + 1 servers).
"""

from repro.net.simulator import Simulator
from repro.net.messages import Message
from repro.net.latency import (
    BoundedLatencyModel,
    ExponentialLatencyModel,
    FixedLatencyModel,
    LatencyModel,
    LatencyRegime,
    ScaledLatencyModel,
    UniformLatencyModel,
)
from repro.net.process import Process
from repro.net.network import CommunicationCostTracker, Network
from repro.net.failures import CrashSchedule, FailureInjector
from repro.net.broadcast import BroadcastPrimitive

__all__ = [
    "Simulator",
    "Message",
    "LatencyModel",
    "LatencyRegime",
    "FixedLatencyModel",
    "BoundedLatencyModel",
    "ScaledLatencyModel",
    "UniformLatencyModel",
    "ExponentialLatencyModel",
    "Process",
    "Network",
    "CommunicationCostTracker",
    "CrashSchedule",
    "FailureInjector",
    "BroadcastPrimitive",
]
