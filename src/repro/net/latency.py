"""Per-link latency models.

The paper distinguishes three link classes (Section V-A):

* ``tau1`` -- client <-> L1 server links,
* ``tau2`` -- L1 <-> L2 server links (typically the slowest in edge
  computing deployments),
* ``tau0`` -- links between two L1 servers (used by the broadcast
  primitive).

Latency models map a (sender link-class, receiver link-class) pair to a
delay sample.  :class:`FixedLatencyModel` reproduces the bounded-latency
analysis exactly; the randomised models exercise genuine asynchrony while
(for the bounded variants) never exceeding the configured bounds.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Optional

#: Link-class labels used by the processes.
CLIENT = "client"
L1 = "l1"
L2 = "l2"


def link_type(sender_class: str, receiver_class: str) -> str:
    """Classify a link into one of the paper's three categories.

    Links that the paper does not use (e.g. client <-> L2) are mapped onto
    the closest category so that experimental variations still run.
    """
    classes = {sender_class, receiver_class}
    if classes == {L1}:
        return "tau0"
    if CLIENT in classes and L1 in classes:
        return "tau1"
    if L2 in classes:
        return "tau2"
    return "tau1"


class LatencyModel(ABC):
    """Maps a link to a message delay sample."""

    @abstractmethod
    def delay(self, sender_class: str, receiver_class: str) -> float:
        """Return the delay for one message on the given link."""

    def bound(self, sender_class: str, receiver_class: str) -> Optional[float]:
        """Return an upper bound on the delay for the link, if one exists."""
        return None


class FixedLatencyModel(LatencyModel):
    """Deterministic delays: exactly tau0 / tau1 / tau2 per link class."""

    def __init__(self, tau0: float = 1.0, tau1: float = 1.0, tau2: float = 10.0) -> None:
        if min(tau0, tau1, tau2) <= 0:
            raise ValueError("latencies must be positive")
        self.tau0 = tau0
        self.tau1 = tau1
        self.tau2 = tau2

    def _value(self, sender_class: str, receiver_class: str) -> float:
        kind = link_type(sender_class, receiver_class)
        return {"tau0": self.tau0, "tau1": self.tau1, "tau2": self.tau2}[kind]

    def delay(self, sender_class: str, receiver_class: str) -> float:
        return self._value(sender_class, receiver_class)

    def bound(self, sender_class: str, receiver_class: str) -> float:
        return self._value(sender_class, receiver_class)


class BoundedLatencyModel(FixedLatencyModel):
    """Random delays uniformly drawn from ``[minimum_fraction * tau, tau]``.

    This keeps the bounded-latency guarantees of Section V-A (delays never
    exceed the bound) while making message interleavings non-trivial.
    """

    def __init__(self, tau0: float = 1.0, tau1: float = 1.0, tau2: float = 10.0,
                 minimum_fraction: float = 0.1, seed: Optional[int] = None) -> None:
        super().__init__(tau0=tau0, tau1=tau1, tau2=tau2)
        if not 0 < minimum_fraction <= 1:
            raise ValueError("minimum_fraction must be in (0, 1]")
        self.minimum_fraction = minimum_fraction
        self._rng = random.Random(seed)

    def delay(self, sender_class: str, receiver_class: str) -> float:
        bound = self._value(sender_class, receiver_class)
        return self._rng.uniform(self.minimum_fraction * bound, bound)


class UniformLatencyModel(LatencyModel):
    """Uniform random delay in ``[low, high]`` regardless of link class."""

    def __init__(self, low: float, high: float, seed: Optional[int] = None) -> None:
        if not 0 < low <= high:
            raise ValueError("require 0 < low <= high")
        self.low = low
        self.high = high
        self._rng = random.Random(seed)

    def delay(self, sender_class: str, receiver_class: str) -> float:
        return self._rng.uniform(self.low, self.high)

    def bound(self, sender_class: str, receiver_class: str) -> float:
        return self.high


class LatencyRegime:
    """A mutable delay multiplier shared by many :class:`ScaledLatencyModel`.

    Scenario scripts shift a whole cluster between latency regimes (e.g. a
    flash crowd saturating the network) by changing one ``scale`` value;
    every model wrapping the regime picks the new factor up on the next
    message, with no per-shard rewiring.
    """

    def __init__(self, scale: float = 1.0) -> None:
        self.set(scale)

    def set(self, scale: float) -> None:
        if scale <= 0:
            raise ValueError("the latency scale must be positive")
        self.scale = float(scale)


class ScaledLatencyModel(LatencyModel):
    """Multiplies a base model's delays (and bounds) by a regime's scale."""

    def __init__(self, base: LatencyModel, regime: Optional[LatencyRegime] = None) -> None:
        self.base = base
        self.regime = regime if regime is not None else LatencyRegime()

    def delay(self, sender_class: str, receiver_class: str) -> float:
        return self.base.delay(sender_class, receiver_class) * self.regime.scale

    def bound(self, sender_class: str, receiver_class: str) -> Optional[float]:
        base_bound = self.base.bound(sender_class, receiver_class)
        return None if base_bound is None else base_bound * self.regime.scale


class ExponentialLatencyModel(LatencyModel):
    """Exponentially distributed delays (unbounded -- pure asynchrony).

    Mean delays follow the per-link-class tau values; there is no bound,
    which models the fully asynchronous setting of Sections III and IV.
    """

    def __init__(self, tau0: float = 1.0, tau1: float = 1.0, tau2: float = 10.0,
                 seed: Optional[int] = None) -> None:
        if min(tau0, tau1, tau2) <= 0:
            raise ValueError("latencies must be positive")
        self.tau0 = tau0
        self.tau1 = tau1
        self.tau2 = tau2
        self._rng = random.Random(seed)

    def delay(self, sender_class: str, receiver_class: str) -> float:
        kind = link_type(sender_class, receiver_class)
        mean = {"tau0": self.tau0, "tau1": self.tau1, "tau2": self.tau2}[kind]
        return self._rng.expovariate(1.0 / mean)


__all__ = [
    "CLIENT",
    "L1",
    "L2",
    "link_type",
    "LatencyModel",
    "LatencyRegime",
    "FixedLatencyModel",
    "BoundedLatencyModel",
    "ScaledLatencyModel",
    "UniformLatencyModel",
    "ExponentialLatencyModel",
]
