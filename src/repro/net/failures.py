"""Crash-failure injection.

The LDS algorithm tolerates ``f1 < n1 / 2`` crash failures among the L1
servers and ``f2 < n2 / 3`` among the L2 servers, plus any number of
client crashes.  The helpers here schedule crashes into a simulation so
that the liveness and atomicity properties can be exercised under the
worst allowed failure loads, at adversarially chosen or random times.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.net.network import Network


@dataclass
class CrashSchedule:
    """A static plan mapping process ids to crash times."""

    crash_times: Dict[str, float] = field(default_factory=dict)

    def add(self, pid: str, time: float) -> "CrashSchedule":
        """Add (or overwrite) a crash entry; returns self for chaining."""
        if time < 0:
            raise ValueError("crash time must be non-negative")
        self.crash_times[pid] = time
        return self

    def merge(self, other: "CrashSchedule") -> "CrashSchedule":
        """Return a new schedule combining both (other wins on conflicts)."""
        merged = dict(self.crash_times)
        merged.update(other.crash_times)
        return CrashSchedule(crash_times=merged)

    def apply(self, network: Network) -> None:
        """Schedule every crash onto the network's simulator."""
        for pid, time in self.crash_times.items():
            if pid not in network.processes:
                raise ValueError(f"cannot schedule crash of unknown process {pid!r}")
            network.simulator.schedule_at(time, lambda p=pid: network.crash(p))

    def __len__(self) -> int:
        return len(self.crash_times)


class FailureInjector:
    """Generates crash schedules respecting per-layer failure budgets."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = random.Random(seed)

    def random_schedule(self, candidates: Sequence[str], max_failures: int,
                        time_range: tuple[float, float],
                        failures: Optional[int] = None) -> CrashSchedule:
        """Crash up to ``max_failures`` random processes at random times.

        Args:
            candidates: pids eligible to crash.
            max_failures: the failure budget (e.g. f1 or f2).
            time_range: (earliest, latest) crash time.
            failures: exact number of crashes; defaults to ``max_failures``.
        """
        if failures is None:
            failures = max_failures
        if failures > max_failures:
            raise ValueError("cannot schedule more failures than the budget allows")
        if failures > len(candidates):
            raise ValueError("not enough candidate processes to crash")
        low, high = time_range
        if low < 0 or high < low:
            raise ValueError("invalid time range")
        chosen = self._rng.sample(list(candidates), failures)
        schedule = CrashSchedule()
        for pid in chosen:
            schedule.add(pid, self._rng.uniform(low, high))
        return schedule

    def targeted_schedule(self, victims: Iterable[str], time: float) -> CrashSchedule:
        """Crash an explicit list of processes at one instant."""
        schedule = CrashSchedule()
        for pid in victims:
            schedule.add(pid, time)
        return schedule

    def staggered_schedule(self, victims: Sequence[str], start: float,
                           interval: float) -> CrashSchedule:
        """Crash processes one after another, ``interval`` apart."""
        if interval < 0:
            raise ValueError("interval must be non-negative")
        schedule = CrashSchedule()
        for offset, pid in enumerate(victims):
            schedule.add(pid, start + offset * interval)
        return schedule


def max_l1_failures(n1: int) -> int:
    """The largest f1 satisfying f1 < n1 / 2."""
    return (n1 - 1) // 2


def max_l2_failures(n2: int) -> int:
    """The largest f2 satisfying f2 < n2 / 3."""
    return (n2 - 1) // 3


__all__ = [
    "CrashSchedule",
    "FailureInjector",
    "max_l1_failures",
    "max_l2_failures",
]
