"""Message envelope for the simulated network.

The paper measures communication cost as the total size of the *data*
carried by messages, normalised so that an object value has size 1; pure
meta-data (tags, counters, acknowledgements) contributes nothing
(Section II-d).  Every message therefore carries an explicit
``data_size`` -- the protocol layer sets it to 1 for full values, to
``alpha / B`` for coded elements, ``beta / B`` for repair-helper data, and
0 for metadata-only messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass
class Message:
    """Base class for all protocol messages.

    Attributes:
        kind: short human-readable message type (defaults to the class name).
        payload: free-form content; protocol subclasses usually add typed
            fields instead of using this dictionary.
        data_size: normalised data size carried by this message (value = 1).
        op_id: identifier of the client operation (or internal operation)
            this message belongs to; used for per-operation cost accounting.
    """

    kind: str = ""
    payload: Dict[str, Any] = field(default_factory=dict)
    data_size: float = 0.0
    op_id: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.kind:
            self.kind = type(self).__name__

    def describe(self) -> str:
        """One-line description used by traces and debugging output."""
        return f"{self.kind}(size={self.data_size:.4f}, op={self.op_id})"


__all__ = ["Message"]
