"""Reliable point-to-point channels with cost accounting.

The :class:`Network` connects registered processes through channels that
match the paper's model:

* **reliable** -- a message sent to a non-faulty destination is eventually
  delivered exactly once (no loss, no duplication, no corruption);
* **asynchronous** -- delivery delay is drawn from the configured
  :class:`~repro.net.latency.LatencyModel`; messages between the same pair
  of processes may be reordered;
* **crash-tolerant** -- the sender may crash after placing a message in
  the channel and delivery still happens, while deliveries *to* a crashed
  process are dropped.

The network also owns the :class:`CommunicationCostTracker`, which sums
the normalised ``data_size`` of every message sent, per operation and per
message kind, implementing the paper's communication-cost metric
(Section II-d).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.net.latency import FixedLatencyModel, LatencyModel
from repro.net.messages import Message
from repro.net.process import Process
from repro.net.simulator import Simulator


@dataclass
class CommunicationCostTracker:
    """Accumulates normalised communication cost (value size = 1 unit)."""

    total: float = 0.0
    messages_sent: int = 0
    by_operation: Dict[str, float] = field(default_factory=lambda: defaultdict(float))
    by_kind: Dict[str, float] = field(default_factory=lambda: defaultdict(float))
    messages_by_kind: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, message: Message) -> None:
        """Record one sent message."""
        self.total += message.data_size
        self.messages_sent += 1
        self.by_kind[message.kind] += message.data_size
        self.messages_by_kind[message.kind] += 1
        if message.op_id is not None:
            self.by_operation[message.op_id] += message.data_size

    def operation_cost(self, op_id: str) -> float:
        """Total normalised data sent on behalf of ``op_id``."""
        return self.by_operation.get(op_id, 0.0)

    def merge_operations(self, target_op: str, source_ops: List[str]) -> float:
        """Sum the costs of several operation ids (e.g. a write plus the
        internal write-to-L2 operations it triggered)."""
        return self.operation_cost(target_op) + sum(
            self.operation_cost(op) for op in source_ops
        )


class Network:
    """The message-passing fabric connecting all processes."""

    def __init__(self, simulator: Optional[Simulator] = None,
                 latency_model: Optional[LatencyModel] = None) -> None:
        self.simulator = simulator or Simulator()
        self.latency_model = latency_model or FixedLatencyModel()
        self.processes: Dict[str, Process] = {}
        self.costs = CommunicationCostTracker()
        self.dropped_to_crashed = 0
        self._delivery_hooks: List[Callable[[str, str, Message], None]] = []

    # -- membership -----------------------------------------------------------

    def register(self, process: Process) -> Process:
        """Register a process; its pid must be unique."""
        if process.pid in self.processes:
            raise ValueError(f"duplicate process id {process.pid!r}")
        self.processes[process.pid] = process
        process.attach(self)
        return process

    def register_all(self, processes) -> None:
        """Register an iterable of processes."""
        for process in processes:
            self.register(process)

    def process(self, pid: str) -> Process:
        """Look up a process by id."""
        return self.processes[pid]

    def crash(self, pid: str) -> None:
        """Crash the named process."""
        self.processes[pid].crash()

    def alive(self, pid: str) -> bool:
        """True when the process exists and has not crashed."""
        return pid in self.processes and not self.processes[pid].crashed

    # -- observation ------------------------------------------------------------

    def add_delivery_hook(self, hook: Callable[[str, str, Message], None]) -> None:
        """Register a callback invoked on every successful delivery."""
        self._delivery_hooks.append(hook)

    # -- channels ----------------------------------------------------------------

    def send(self, sender: str, destination: str, message: Message) -> None:
        """Place ``message`` on the channel from ``sender`` to ``destination``.

        Communication cost is charged at send time (the paper counts data
        transmitted, independent of whether the destination survives to
        consume it).
        """
        if sender not in self.processes:
            raise ValueError(f"unknown sender {sender!r}")
        if destination not in self.processes:
            raise ValueError(f"unknown destination {destination!r}")
        sender_process = self.processes[sender]
        if sender_process.crashed:
            return
        self.costs.record(message)
        delay = self.latency_model.delay(
            sender_process.link_class, self.processes[destination].link_class
        )
        self.simulator.schedule(delay, lambda: self._deliver(sender, destination, message))

    def _deliver(self, sender: str, destination: str, message: Message) -> None:
        process = self.processes.get(destination)
        if process is None or process.crashed:
            self.dropped_to_crashed += 1
            return
        for hook in self._delivery_hooks:
            hook(sender, destination, message)
        process.on_message(sender, message)

    # -- execution ------------------------------------------------------------------

    def start(self) -> None:
        """Invoke the ``on_start`` hook of every registered process."""
        for process in self.processes.values():
            if not process.crashed:
                process.on_start()

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the underlying simulator."""
        self.simulator.run(until=until, max_events=max_events)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no pending events remain."""
        self.simulator.run_until_idle(max_events=max_events)


__all__ = ["Network", "CommunicationCostTracker"]
