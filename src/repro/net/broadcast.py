"""The metadata broadcast primitive (Section III of the paper).

The LDS algorithm uses a broadcast primitive with the property that *if
any one (non-faulty) L1 server consumes a broadcast message, then every
non-faulty L1 server eventually consumes it*.  The implementation, taken
from [17], relays the message through a fixed set of ``f1 + 1`` L1
servers: the initiator sends the message to that set over point-to-point
channels, and each member of the set, on first reception, forwards it to
every L1 server before consuming it itself.  Because the relay set
contains at least one non-faulty server, the all-or-nothing delivery
property holds even if the initiator crashes mid-broadcast.

Only metadata (e.g. ``COMMIT-TAG`` announcements) travels over this
primitive, so broadcast messages have ``data_size`` 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Sequence, Set, Tuple

from repro.net.messages import Message
from repro.net.process import Process


@dataclass
class BroadcastEnvelope(Message):
    """Wrapper carrying a broadcast payload through the relay set.

    Attributes:
        broadcast_id: unique id of this broadcast instance (used for
            first-reception bookkeeping at the relays).
        inner: the wrapped protocol message to be consumed by every server.
        relaying: True when this copy is the initial transmission toward
            the relay set (relays must forward it on first reception);
            False for the fan-out copies sent by relays.
    """

    broadcast_id: Tuple[Any, ...] = field(default_factory=tuple)
    inner: Message | None = None
    relaying: bool = False


class BroadcastPrimitive:
    """Per-process helper implementing the relay broadcast.

    Each L1 server owns one instance.  ``broadcast`` initiates a broadcast;
    ``handle`` must be called for every received :class:`BroadcastEnvelope`
    and returns the inner message when it should be consumed locally
    (exactly once per broadcast id), or ``None`` otherwise.
    """

    def __init__(self, owner: Process, group: Sequence[str], relay_set: Sequence[str]) -> None:
        if not relay_set:
            raise ValueError("the relay set must not be empty")
        unknown = set(relay_set) - set(group)
        if unknown:
            raise ValueError(f"relay servers {unknown} are not part of the broadcast group")
        self.owner = owner
        self.group = list(group)
        self.relay_set = list(relay_set)
        self._relayed: Set[Tuple[Any, ...]] = set()
        self._consumed: Set[Tuple[Any, ...]] = set()
        self._sequence = 0

    def broadcast(self, inner: Message) -> Tuple[Any, ...]:
        """Initiate a broadcast of ``inner`` to the whole group.

        The initiator sends the envelope to the fixed relay set only; the
        relays take care of the fan-out.  Returns the broadcast id.
        """
        self._sequence += 1
        broadcast_id = (self.owner.pid, self._sequence)
        envelope = BroadcastEnvelope(
            broadcast_id=broadcast_id,
            inner=inner,
            relaying=True,
            data_size=0.0,
            op_id=inner.op_id,
        )
        for relay in self.relay_set:
            self.owner.send(relay, envelope)
        return broadcast_id

    def handle(self, envelope: BroadcastEnvelope) -> Message | None:
        """Process a received envelope; returns the inner message to consume.

        A relay that receives the initial transmission for the first time
        forwards the message to every member of the group (including
        itself via local consumption) before consuming it.  Every process
        consumes each broadcast exactly once.
        """
        if envelope.inner is None:
            raise ValueError("broadcast envelope is missing its inner message")
        broadcast_id = envelope.broadcast_id
        if envelope.relaying and self.owner.pid in self.relay_set:
            if broadcast_id not in self._relayed:
                self._relayed.add(broadcast_id)
                fan_out = BroadcastEnvelope(
                    broadcast_id=broadcast_id,
                    inner=envelope.inner,
                    relaying=False,
                    data_size=0.0,
                    op_id=envelope.inner.op_id,
                )
                for member in self.group:
                    if member != self.owner.pid:
                        self.owner.send(member, fan_out)
        if broadcast_id in self._consumed:
            return None
        self._consumed.add(broadcast_id)
        return envelope.inner


__all__ = ["BroadcastEnvelope", "BroadcastPrimitive"]
