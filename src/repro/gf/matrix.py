"""Dense matrices over GF(2^8).

:class:`GFMatrix` wraps a 2-D numpy ``uint8`` array and provides the linear
algebra the code constructions need: multiplication, transposition, rank,
Gaussian elimination, inversion, and solving linear systems.  The matrices
involved in the product-matrix codes are small (tens of rows/columns), so a
straightforward O(n^3) elimination is more than fast enough and keeps the
implementation easy to audit.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.gf.gf256 import GF256


class SingularMatrixError(ValueError):
    """Raised when an inverse or unique solution does not exist."""


class GFMatrix:
    """A dense matrix with entries in GF(2^8)."""

    def __init__(self, data) -> None:
        array = np.array(data, dtype=np.uint8)
        if array.ndim == 1:
            array = array.reshape(1, -1)
        if array.ndim != 2:
            raise ValueError("GFMatrix requires 2-D data")
        self._data = array

    # -- constructors ------------------------------------------------------

    @classmethod
    def zeros(cls, rows: int, cols: int) -> "GFMatrix":
        """Return the all-zero matrix of the given shape."""
        return cls(np.zeros((rows, cols), dtype=np.uint8))

    @classmethod
    def identity(cls, size: int) -> "GFMatrix":
        """Return the identity matrix of the given size."""
        return cls(np.eye(size, dtype=np.uint8))

    @classmethod
    def from_rows(cls, rows: Iterable[Sequence[int]]) -> "GFMatrix":
        """Build a matrix from an iterable of row sequences."""
        return cls(np.array([list(row) for row in rows], dtype=np.uint8))

    # -- accessors ---------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The underlying numpy array (not copied)."""
        return self._data

    @property
    def shape(self) -> tuple[int, int]:
        """The (rows, cols) shape."""
        return self._data.shape

    @property
    def rows(self) -> int:
        return self._data.shape[0]

    @property
    def cols(self) -> int:
        return self._data.shape[1]

    def copy(self) -> "GFMatrix":
        """Return a deep copy."""
        return GFMatrix(self._data.copy())

    def row(self, index: int) -> np.ndarray:
        """Return a copy of row ``index``."""
        return self._data[index].copy()

    def column(self, index: int) -> np.ndarray:
        """Return a copy of column ``index``."""
        return self._data[:, index].copy()

    def submatrix(self, row_indices: Sequence[int], col_indices=None) -> "GFMatrix":
        """Return the submatrix picking ``row_indices`` (and optionally columns)."""
        rows = self._data[list(row_indices), :]
        if col_indices is not None:
            rows = rows[:, list(col_indices)]
        return GFMatrix(rows.copy())

    def __getitem__(self, key):
        return self._data[key]

    def __setitem__(self, key, value):
        self._data[key] = value

    def __eq__(self, other) -> bool:
        if not isinstance(other, GFMatrix):
            return NotImplemented
        return self.shape == other.shape and bool(np.array_equal(self._data, other._data))

    def __repr__(self) -> str:
        return f"GFMatrix(shape={self.shape})"

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "GFMatrix") -> "GFMatrix":
        if self.shape != other.shape:
            raise ValueError("shape mismatch in GF matrix addition")
        return GFMatrix(np.bitwise_xor(self._data, other._data))

    __sub__ = __add__

    def __matmul__(self, other: "GFMatrix") -> "GFMatrix":
        return self.matmul(other)

    def matmul(self, other: "GFMatrix") -> "GFMatrix":
        """Return the matrix product ``self @ other``."""
        return GFMatrix(GF256.matmul(self._data, other._data))

    def matvec(self, vector) -> np.ndarray:
        """Multiply the matrix by a column vector, returning a 1-D array."""
        vec = GF256.as_array(vector)
        if vec.size != self.cols:
            raise ValueError("vector length does not match matrix columns")
        product = GF256.matmul(self._data, vec.reshape(-1, 1))
        return product.reshape(-1)

    def transpose(self) -> "GFMatrix":
        """Return the transpose."""
        return GFMatrix(self._data.T.copy())

    @property
    def T(self) -> "GFMatrix":
        return self.transpose()

    def scale(self, scalar: int) -> "GFMatrix":
        """Multiply every entry by ``scalar``."""
        rows = [GF256.scale_vec(scalar, self._data[i]) for i in range(self.rows)]
        return GFMatrix(np.vstack(rows)) if rows else GFMatrix.zeros(0, self.cols)

    def hstack(self, other: "GFMatrix") -> "GFMatrix":
        """Concatenate horizontally."""
        if self.rows != other.rows:
            raise ValueError("row mismatch in hstack")
        return GFMatrix(np.hstack([self._data, other._data]))

    def vstack(self, other: "GFMatrix") -> "GFMatrix":
        """Concatenate vertically."""
        if self.cols != other.cols:
            raise ValueError("column mismatch in vstack")
        return GFMatrix(np.vstack([self._data, other._data]))

    def is_symmetric(self) -> bool:
        """Return True when the matrix equals its transpose."""
        return self.rows == self.cols and bool(np.array_equal(self._data, self._data.T))

    # -- elimination -------------------------------------------------------

    def _eliminate(self, augment: np.ndarray | None = None):
        """Run Gauss-Jordan elimination.

        Returns ``(reduced, augmented, pivot_columns)``.  ``augmented`` is
        ``None`` when no augment matrix was supplied.
        """
        work = self._data.astype(np.uint8).copy()
        aug = None if augment is None else augment.astype(np.uint8).copy()
        rows, cols = work.shape
        pivot_cols: list[int] = []
        pivot_row = 0
        for col in range(cols):
            if pivot_row >= rows:
                break
            # Find a pivot in this column at or below pivot_row.
            pivot = None
            for r in range(pivot_row, rows):
                if work[r, col]:
                    pivot = r
                    break
            if pivot is None:
                continue
            if pivot != pivot_row:
                work[[pivot_row, pivot]] = work[[pivot, pivot_row]]
                if aug is not None:
                    aug[[pivot_row, pivot]] = aug[[pivot, pivot_row]]
            # Normalise the pivot row.
            inv = GF256.inv(int(work[pivot_row, col]))
            work[pivot_row] = GF256.scale_vec(inv, work[pivot_row])
            if aug is not None:
                aug[pivot_row] = GF256.scale_vec(inv, aug[pivot_row])
            # Eliminate the column from every other row.
            for r in range(rows):
                if r == pivot_row:
                    continue
                factor = int(work[r, col])
                if factor:
                    work[r] = np.bitwise_xor(
                        work[r], GF256.scale_vec(factor, work[pivot_row])
                    )
                    if aug is not None:
                        aug[r] = np.bitwise_xor(
                            aug[r], GF256.scale_vec(factor, aug[pivot_row])
                        )
            pivot_cols.append(col)
            pivot_row += 1
        return work, aug, pivot_cols

    def rank(self) -> int:
        """Return the rank of the matrix."""
        _, _, pivots = self._eliminate()
        return len(pivots)

    def is_invertible(self) -> bool:
        """Return True when the matrix is square and full rank."""
        return self.rows == self.cols and self.rank() == self.rows

    def inverse(self) -> "GFMatrix":
        """Return the inverse matrix.

        Raises :class:`SingularMatrixError` when the matrix is not square
        or not full rank.
        """
        if self.rows != self.cols:
            raise SingularMatrixError("only square matrices can be inverted")
        reduced, aug, pivots = self._eliminate(np.eye(self.rows, dtype=np.uint8))
        if len(pivots) != self.rows:
            raise SingularMatrixError("matrix is singular")
        del reduced
        return GFMatrix(aug)

    def solve(self, rhs) -> np.ndarray:
        """Solve ``self @ x = rhs`` for a uniquely determined ``x``.

        ``rhs`` may be a vector or a matrix; the result has matching shape.
        Raises :class:`SingularMatrixError` when the system is not uniquely
        solvable.
        """
        rhs_arr = GF256.as_array(rhs)
        vector_input = rhs_arr.ndim == 1
        if vector_input:
            rhs_arr = rhs_arr.reshape(-1, 1)
        if rhs_arr.shape[0] != self.rows:
            raise ValueError("rhs row count does not match matrix")
        if self.rows != self.cols:
            raise SingularMatrixError("solve requires a square system")
        inverse = self.inverse()
        solution = GF256.matmul(inverse.data, rhs_arr)
        return solution.reshape(-1) if vector_input else solution


__all__ = ["GFMatrix", "SingularMatrixError"]
