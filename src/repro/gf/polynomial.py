"""Univariate polynomials over GF(2^8).

Used by the Reed-Solomon implementation for an alternative
evaluation/interpolation view of encoding and decoding, and by tests that
cross-check the matrix-based decoders against Lagrange interpolation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.gf.gf256 import GF256


class GFPolynomial:
    """A polynomial with coefficients in GF(2^8).

    Coefficients are stored lowest-degree first; trailing zero coefficients
    are trimmed so that the representation is canonical.
    """

    def __init__(self, coefficients: Iterable[int] = ()) -> None:
        coeffs = [int(c) & 0xFF for c in coefficients]
        while coeffs and coeffs[-1] == 0:
            coeffs.pop()
        self._coeffs = coeffs

    # -- constructors ------------------------------------------------------

    @classmethod
    def zero(cls) -> "GFPolynomial":
        """Return the zero polynomial."""
        return cls()

    @classmethod
    def constant(cls, value: int) -> "GFPolynomial":
        """Return the constant polynomial ``value``."""
        return cls([value])

    @classmethod
    def monomial(cls, degree: int, coefficient: int = 1) -> "GFPolynomial":
        """Return ``coefficient * x^degree``."""
        return cls([0] * degree + [coefficient])

    @classmethod
    def interpolate(cls, points: Sequence[tuple[int, int]]) -> "GFPolynomial":
        """Lagrange-interpolate a polynomial through ``(x, y)`` points.

        The ``x`` values must be distinct.  The returned polynomial has
        degree at most ``len(points) - 1`` and satisfies ``p(x) == y`` for
        every supplied point.
        """
        xs = [int(x) for x, _ in points]
        if len(set(xs)) != len(xs):
            raise ValueError("interpolation points must have distinct x values")
        result = cls.zero()
        for i, (x_i, y_i) in enumerate(points):
            if y_i == 0:
                continue
            # Build the Lagrange basis polynomial for x_i.
            basis = cls.constant(1)
            denominator = 1
            for j, (x_j, _) in enumerate(points):
                if i == j:
                    continue
                basis = basis * cls([x_j, 1])  # (x - x_j) == (x + x_j) in GF(2^m)
                denominator = GF256.mul(denominator, GF256.add(x_i, x_j))
            scale = GF256.div(int(y_i), denominator)
            result = result + basis.scale(scale)
        return result

    # -- accessors ---------------------------------------------------------

    @property
    def coefficients(self) -> list[int]:
        """Coefficients, lowest degree first."""
        return list(self._coeffs)

    @property
    def degree(self) -> int:
        """The degree; the zero polynomial has degree -1."""
        return len(self._coeffs) - 1

    def is_zero(self) -> bool:
        return not self._coeffs

    def __eq__(self, other) -> bool:
        if not isinstance(other, GFPolynomial):
            return NotImplemented
        return self._coeffs == other._coeffs

    def __repr__(self) -> str:
        return f"GFPolynomial({self._coeffs})"

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "GFPolynomial") -> "GFPolynomial":
        length = max(len(self._coeffs), len(other._coeffs))
        coeffs = []
        for i in range(length):
            a = self._coeffs[i] if i < len(self._coeffs) else 0
            b = other._coeffs[i] if i < len(other._coeffs) else 0
            coeffs.append(GF256.add(a, b))
        return GFPolynomial(coeffs)

    __sub__ = __add__

    def __mul__(self, other: "GFPolynomial") -> "GFPolynomial":
        if self.is_zero() or other.is_zero():
            return GFPolynomial.zero()
        coeffs = [0] * (len(self._coeffs) + len(other._coeffs) - 1)
        for i, a in enumerate(self._coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other._coeffs):
                if b == 0:
                    continue
                coeffs[i + j] = GF256.add(coeffs[i + j], GF256.mul(a, b))
        return GFPolynomial(coeffs)

    def scale(self, scalar: int) -> "GFPolynomial":
        """Multiply every coefficient by ``scalar``."""
        return GFPolynomial([GF256.mul(scalar, c) for c in self._coeffs])

    def evaluate(self, x: int) -> int:
        """Evaluate the polynomial at ``x`` using Horner's rule."""
        result = 0
        for coefficient in reversed(self._coeffs):
            result = GF256.add(GF256.mul(result, x), coefficient)
        return result

    def evaluate_many(self, xs: Iterable[int]) -> list[int]:
        """Evaluate at multiple points."""
        return [self.evaluate(x) for x in xs]


__all__ = ["GFPolynomial"]
