"""Arithmetic over the finite field GF(2^8).

The field is constructed with the primitive polynomial
``x^8 + x^4 + x^3 + x + 1`` (0x11B, the polynomial used by AES) and the
generator element 3, which is primitive for this polynomial.  Multiplication
and division are implemented with logarithm / exponential lookup tables so
that scalar operations are O(1) and vectorised operations map to numpy
table lookups.

All elements are represented as Python ints (or numpy ``uint8`` arrays) in
the range ``0..255``.  Addition and subtraction are both XOR.
"""

from __future__ import annotations

import numpy as np

#: The field size.
FIELD_SIZE = 256

#: Primitive (reduction) polynomial, represented as an integer bit mask.
PRIMITIVE_POLY = 0x11B

#: Generator element used to build the log/exp tables.
GENERATOR = 0x03


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    """Build the exponential and logarithm tables for GF(2^8).

    Returns a pair ``(exp_table, log_table)`` where ``exp_table`` has 512
    entries (doubled to avoid a modular reduction in multiplication) and
    ``log_table`` has 256 entries with ``log_table[0]`` unused.
    """
    exp_table = np.zeros(512, dtype=np.int32)
    log_table = np.zeros(256, dtype=np.int32)

    value = 1
    for exponent in range(255):
        exp_table[exponent] = value
        log_table[value] = exponent
        # Multiply by the generator (3) in GF(2^8): value * 3 = value * 2 + value.
        doubled = value << 1
        if doubled & 0x100:
            doubled ^= PRIMITIVE_POLY
        value = doubled ^ value
    for exponent in range(255, 512):
        exp_table[exponent] = exp_table[exponent - 255]
    return exp_table, log_table


_EXP_TABLE, _LOG_TABLE = _build_tables()


def _build_inverse_table() -> np.ndarray:
    """Precompute multiplicative inverses so ``inv`` is one table lookup.

    Inversion sits in the decode/repair hot path (every Gaussian-elimination
    pivot normalisation calls it); the direct table replaces the
    log-negate-exp sequence with a single indexed load.  Index 0 is unused
    (zero has no inverse).
    """
    inverse = np.zeros(256, dtype=np.int32)
    values = np.arange(1, 256)
    inverse[1:] = _EXP_TABLE[255 - _LOG_TABLE[values]]
    return inverse


_INV_TABLE = _build_inverse_table()


class GF256:
    """Namespace of scalar and vectorised GF(2^8) operations.

    The class is stateless; all methods are class methods so the field can
    be passed around as an object (e.g. ``code.field.mul(a, b)``) without
    instantiating anything.
    """

    order = FIELD_SIZE
    primitive_poly = PRIMITIVE_POLY
    generator = GENERATOR

    # -- scalar operations -------------------------------------------------

    @classmethod
    def add(cls, a: int, b: int) -> int:
        """Return ``a + b`` in GF(2^8) (XOR)."""
        return (int(a) ^ int(b)) & 0xFF

    @classmethod
    def sub(cls, a: int, b: int) -> int:
        """Return ``a - b`` in GF(2^8); identical to addition."""
        return cls.add(a, b)

    @classmethod
    def mul(cls, a: int, b: int) -> int:
        """Return the product ``a * b`` in GF(2^8)."""
        a = int(a)
        b = int(b)
        if a == 0 or b == 0:
            return 0
        return int(_EXP_TABLE[_LOG_TABLE[a] + _LOG_TABLE[b]])

    @classmethod
    def div(cls, a: int, b: int) -> int:
        """Return ``a / b`` in GF(2^8).

        Raises :class:`ZeroDivisionError` when ``b`` is zero.
        """
        a = int(a)
        b = int(b)
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^8)")
        if a == 0:
            return 0
        # Offsetting by 255 keeps the index in the doubled exp table's range
        # (1..509) without a modular reduction.
        return int(_EXP_TABLE[_LOG_TABLE[a] - _LOG_TABLE[b] + 255])

    @classmethod
    def inv(cls, a: int) -> int:
        """Return the multiplicative inverse of ``a``.

        Raises :class:`ZeroDivisionError` for ``a == 0``.
        """
        a = int(a)
        if a == 0:
            raise ZeroDivisionError("zero has no multiplicative inverse")
        return int(_INV_TABLE[a])

    @classmethod
    def pow(cls, a: int, exponent: int) -> int:
        """Return ``a`` raised to a non-negative integer power."""
        a = int(a)
        if exponent < 0:
            return cls.pow(cls.inv(a), -exponent)
        if a == 0:
            return 0 if exponent else 1
        return int(_EXP_TABLE[(_LOG_TABLE[a] * exponent) % 255])

    @classmethod
    def exp(cls, exponent: int) -> int:
        """Return ``generator ** exponent``."""
        return int(_EXP_TABLE[exponent % 255])

    @classmethod
    def log(cls, a: int) -> int:
        """Return the discrete log of ``a`` with respect to the generator."""
        a = int(a)
        if a == 0:
            raise ValueError("zero has no discrete logarithm")
        return int(_LOG_TABLE[a])

    # -- vectorised operations --------------------------------------------

    @classmethod
    def as_array(cls, data) -> np.ndarray:
        """Coerce ``data`` (bytes, list, array) into a uint8 numpy array."""
        if isinstance(data, (bytes, bytearray)):
            return np.frombuffer(bytes(data), dtype=np.uint8).copy()
        return np.asarray(data, dtype=np.uint8)

    @classmethod
    def add_vec(cls, a, b) -> np.ndarray:
        """Element-wise addition of two vectors (XOR)."""
        return np.bitwise_xor(cls.as_array(a), cls.as_array(b))

    @classmethod
    def mul_vec(cls, a, b) -> np.ndarray:
        """Element-wise product of two equally shaped vectors."""
        a_arr = cls.as_array(a).astype(np.int32)
        b_arr = cls.as_array(b).astype(np.int32)
        result = _EXP_TABLE[_LOG_TABLE[a_arr] + _LOG_TABLE[b_arr]]
        result = np.where((a_arr == 0) | (b_arr == 0), 0, result)
        return result.astype(np.uint8)

    @classmethod
    def scale_vec(cls, scalar: int, vector) -> np.ndarray:
        """Multiply every element of ``vector`` by ``scalar``."""
        scalar = int(scalar)
        vec = cls.as_array(vector)
        if scalar == 0:
            return np.zeros_like(vec)
        if scalar == 1:
            return vec.copy()
        log_s = _LOG_TABLE[scalar]
        vec32 = vec.astype(np.int32)
        result = _EXP_TABLE[_LOG_TABLE[vec32] + log_s]
        result = np.where(vec32 == 0, 0, result)
        return result.astype(np.uint8)

    @classmethod
    def dot(cls, a, b) -> int:
        """Inner product of two vectors in GF(2^8)."""
        products = cls.mul_vec(a, b)
        return int(np.bitwise_xor.reduce(products)) if products.size else 0

    @classmethod
    def matmul(cls, a, b) -> np.ndarray:
        """Matrix product of two 2-D uint8 arrays over GF(2^8).

        Implemented row-by-row using the vectorised scale/add primitives;
        adequate for the modest matrix sizes used by the code layer.
        """
        a_arr = cls.as_array(a)
        b_arr = cls.as_array(b)
        if a_arr.ndim != 2 or b_arr.ndim != 2:
            raise ValueError("matmul requires 2-D operands")
        if a_arr.shape[1] != b_arr.shape[0]:
            raise ValueError(
                f"shape mismatch: {a_arr.shape} x {b_arr.shape}"
            )
        rows, inner = a_arr.shape
        cols = b_arr.shape[1]
        result = np.zeros((rows, cols), dtype=np.uint8)
        for i in range(rows):
            acc = np.zeros(cols, dtype=np.uint8)
            row = a_arr[i]
            for j in range(inner):
                coeff = int(row[j])
                if coeff:
                    acc = np.bitwise_xor(acc, cls.scale_vec(coeff, b_arr[j]))
            result[i] = acc
        return result


__all__ = ["GF256", "FIELD_SIZE", "PRIMITIVE_POLY", "GENERATOR"]
