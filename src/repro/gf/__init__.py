"""Finite-field arithmetic substrate.

The erasure and regenerating codes in :mod:`repro.codes` operate over the
finite field GF(2^8).  This package provides:

* :mod:`repro.gf.gf256` -- scalar and vectorised (numpy) arithmetic over
  GF(2^8) with the AES polynomial ``x^8 + x^4 + x^3 + x + 1``.
* :mod:`repro.gf.matrix` -- dense matrices over GF(2^8): multiplication,
  rank, inversion, linear solves and Gaussian elimination.
* :mod:`repro.gf.builders` -- structured matrix builders (Vandermonde,
  Cauchy, identity stacking) used by the code constructions.
* :mod:`repro.gf.polynomial` -- univariate polynomials over GF(2^8),
  including evaluation and Lagrange interpolation.
"""

from repro.gf.gf256 import GF256
from repro.gf.matrix import GFMatrix
from repro.gf.builders import cauchy_matrix, vandermonde_matrix
from repro.gf.polynomial import GFPolynomial

__all__ = [
    "GF256",
    "GFMatrix",
    "GFPolynomial",
    "vandermonde_matrix",
    "cauchy_matrix",
]
