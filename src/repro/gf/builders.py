"""Structured matrix builders over GF(2^8).

The erasure-code constructions use structured generator matrices whose
key property is that *every* square submatrix of a given shape is
invertible.  Two standard families provide this:

* **Vandermonde** matrices built from distinct evaluation points -- any
  ``d`` rows of an ``n x d`` Vandermonde matrix are linearly independent
  as long as the evaluation points are distinct and non-zero.
* **Cauchy** matrices -- every square submatrix of a Cauchy matrix is
  invertible.

The product-matrix regenerating codes use a Vandermonde encoding matrix,
Reed-Solomon uses either form.
"""

from __future__ import annotations

import numpy as np

from repro.gf.gf256 import GF256
from repro.gf.matrix import GFMatrix


def vandermonde_matrix(rows: int, cols: int, points=None) -> GFMatrix:
    """Return a ``rows x cols`` Vandermonde matrix over GF(2^8).

    Row ``i`` is ``[1, x_i, x_i^2, ..., x_i^{cols-1}]``.  The default
    evaluation points are ``generator^i`` for ``i = 0..rows-1``, which are
    distinct and non-zero as long as ``rows <= 255``.

    Any ``cols`` rows of the resulting matrix are linearly independent,
    which is exactly the MDS-style property required by the code layer.
    """
    if rows > 255:
        raise ValueError("GF(2^8) Vandermonde supports at most 255 distinct rows")
    if points is None:
        points = [GF256.exp(i) for i in range(rows)]
    points = [int(p) for p in points]
    if len(points) != rows:
        raise ValueError("number of evaluation points must equal rows")
    if len(set(points)) != rows:
        raise ValueError("evaluation points must be distinct")
    if any(p == 0 for p in points):
        raise ValueError("evaluation points must be non-zero")
    matrix = np.zeros((rows, cols), dtype=np.uint8)
    for i, x in enumerate(points):
        value = 1
        for j in range(cols):
            matrix[i, j] = value
            value = GF256.mul(value, x)
    return GFMatrix(matrix)


def cauchy_matrix(rows: int, cols: int) -> GFMatrix:
    """Return a ``rows x cols`` Cauchy matrix over GF(2^8).

    Entry ``(i, j)`` is ``1 / (x_i + y_j)`` with disjoint sets of distinct
    ``x`` and ``y`` values; every square submatrix of such a matrix is
    invertible.
    """
    if rows + cols > 256:
        raise ValueError("GF(2^8) Cauchy matrix requires rows + cols <= 256")
    xs = list(range(rows))
    ys = list(range(rows, rows + cols))
    matrix = np.zeros((rows, cols), dtype=np.uint8)
    for i, x in enumerate(xs):
        for j, y in enumerate(ys):
            matrix[i, j] = GF256.inv(GF256.add(x, y))
    return GFMatrix(matrix)


def systematic_vandermonde(rows: int, cols: int) -> GFMatrix:
    """Return a systematic ``rows x cols`` MDS generator matrix.

    The first ``cols`` rows form the identity; the matrix retains the
    property that any ``cols`` rows are linearly independent.  Built by
    reducing a Vandermonde matrix so its top square block becomes the
    identity (column operations preserve the any-``cols``-rows property).
    """
    if rows < cols:
        raise ValueError("systematic generator requires rows >= cols")
    base = vandermonde_matrix(rows, cols)
    top = base.submatrix(range(cols))
    transform = top.inverse()
    return base.matmul(transform)


__all__ = ["vandermonde_matrix", "cauchy_matrix", "systematic_vandermonde"]
