"""Metric summaries used by the workload runner and the benchmarks."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics for a collection of operation latencies."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @classmethod
    def empty(cls) -> "LatencySummary":
        return cls(count=0, mean=0.0, minimum=0.0, maximum=0.0, p50=0.0, p95=0.0, p99=0.0)


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sequence."""
    if not values:
        raise ValueError("cannot take a percentile of an empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


def summarize_latencies(latencies: Iterable[float]) -> LatencySummary:
    """Compute a :class:`LatencySummary` from raw latencies."""
    values: List[float] = [float(v) for v in latencies]
    if not values:
        return LatencySummary.empty()
    return LatencySummary(
        count=len(values),
        mean=sum(values) / len(values),
        minimum=min(values),
        maximum=max(values),
        p50=percentile(values, 0.50),
        p95=percentile(values, 0.95),
        p99=percentile(values, 0.99),
    )


@dataclass(frozen=True)
class ReadDistribution:
    """How a replica-routed read workload spread over the replicas.

    Built from the router's counters (duck-typed, so any object exposing
    ``reads_by_replica`` / ``primary_reads`` / ``follower_reads`` /
    ``session_fallbacks`` / ``failover_deferrals`` / ``policy_hit_rate``
    works); benchmarks assert on it to prove follower reads actually
    offload the primaries and the routing policy's choices are honored.
    """

    #: Reads routed per pool (primary, follower and quorum-leg routes
    #: combined; a read stranded by a crash mid-flight stays counted
    #: against its replica).
    counts: Dict[str, int] = field(default_factory=dict)
    primary_reads: int = 0
    follower_reads: int = 0
    session_fallbacks: int = 0
    retired_fallbacks: int = 0
    failover_deferrals: int = 0
    policy_hit_rate: float = 0.0
    #: Reads resolved by quorum fan-out (each counted once, not per leg).
    quorum_reads: int = 0
    #: Histogram of merged responses per quorum read (depth below the
    #: configured quorum marks members lost mid-flight).
    quorum_depths: Dict[int, int] = field(default_factory=dict)
    #: Lagging stores caught up by quorum-merge read repair.
    read_repairs: int = 0
    #: Writes forwarded follower -> primary.
    forwarded_writes: int = 0

    @classmethod
    def from_router_stats(cls, stats) -> "ReadDistribution":
        return cls(
            counts=dict(stats.reads_by_replica),
            primary_reads=stats.primary_reads,
            follower_reads=stats.follower_reads,
            session_fallbacks=stats.session_fallbacks,
            retired_fallbacks=getattr(stats, "retired_fallbacks", 0),
            failover_deferrals=stats.failover_deferrals,
            policy_hit_rate=stats.policy_hit_rate,
            quorum_reads=getattr(stats, "quorum_reads", 0),
            quorum_depths=dict(getattr(stats, "quorum_depths", {})),
            read_repairs=getattr(stats, "read_repairs", 0),
            forwarded_writes=getattr(stats, "forwarded_writes", 0),
        )

    @classmethod
    def from_registry(cls, registry) -> "ReadDistribution":
        """Build the distribution from ``router_*`` registry metrics.

        The registry is the same data the attribute view reads, exported
        through :class:`repro.obs.MetricsRegistry` -- so a benchmark that
        only holds a registry snapshot can still compute the routing
        summary.  Missing metrics count as zero (e.g. a run without
        replica groups never registers the quorum series).
        """
        def scalar(name: str) -> int:
            metric = registry.get(f"router_{name}")
            return metric.value if metric is not None else 0

        def family(name: str) -> Dict:
            metric = registry.get(f"router_{name}")
            return metric.as_dict() if metric is not None else {}

        choices = scalar("policy_choices")
        honored = scalar("policy_honored")
        return cls(
            counts=family("reads_by_replica"),
            primary_reads=scalar("primary_reads"),
            follower_reads=scalar("follower_reads"),
            session_fallbacks=scalar("session_fallbacks"),
            retired_fallbacks=scalar("retired_fallbacks"),
            failover_deferrals=scalar("failover_deferrals"),
            policy_hit_rate=honored / choices if choices else 0.0,
            quorum_reads=scalar("quorum_reads"),
            quorum_depths=family("quorum_depth"),
            read_repairs=scalar("read_repairs"),
            forwarded_writes=scalar("forwarded_writes"),
        )

    @property
    def total(self) -> int:
        """Reads routed (failover-deferred, not-yet-routed reads excluded)."""
        return self.primary_reads + self.follower_reads + self.quorum_reads

    @property
    def follower_fraction(self) -> float:
        """Share of routed reads handled by follower stores."""
        return self.follower_reads / self.total if self.total else 0.0

    @property
    def mean_quorum_depth(self) -> float:
        """Mean merged responses per quorum read (0.0 without quorums)."""
        merged = sum(depth * count
                     for depth, count in self.quorum_depths.items())
        counted = sum(self.quorum_depths.values())
        return merged / counted if counted else 0.0

    @property
    def session_fallback_rate(self) -> float:
        """Session-guard fallbacks per routed read.

        Fallbacks count per rejected follower *choice*: under the quorum
        policy each logical read falls back at most once, but a
        single-store policy read can reject several lagging followers in
        turn, so the rate can exceed 1.0 there.
        """
        return self.session_fallbacks / self.total if self.total else 0.0

    @property
    def read_repair_rate(self) -> float:
        """Stores repaired per quorum read (staleness-repaired rate)."""
        if not self.quorum_reads:
            return 0.0
        return self.read_repairs / self.quorum_reads

    @property
    def mean(self) -> float:
        values = list(self.counts.values())
        return sum(values) / len(values) if values else 0.0

    @property
    def max_over_mean(self) -> float:
        """Peak-to-average ratio over the pools that received reads."""
        if not self.counts or not self.mean:
            return 0.0
        return max(self.counts.values()) / self.mean

    @property
    def coefficient_of_variation(self) -> float:
        """stddev / mean of per-pool serve counts (0 = perfectly even)."""
        values = list(self.counts.values())
        if not values or not self.mean:
            return 0.0
        variance = sum((v - self.mean) ** 2 for v in values) / len(values)
        return math.sqrt(variance) / self.mean

    def describe(self) -> str:
        quorum = ""
        if self.quorum_reads:
            quorum = (f", quorum_reads={self.quorum_reads}, "
                      f"mean_depth={self.mean_quorum_depth:.2f}, "
                      f"repairs={self.read_repairs}")
        forwarded = (f", forwarded_writes={self.forwarded_writes}"
                     if self.forwarded_writes else "")
        return (
            f"ReadDistribution(total={self.total}, "
            f"follower_fraction={self.follower_fraction:.2f}, "
            f"cv={self.coefficient_of_variation:.2f}, "
            f"hit_rate={self.policy_hit_rate:.2f}, "
            f"fallbacks={self.session_fallbacks}, "
            f"deferrals={self.failover_deferrals}"
            f"{quorum}{forwarded})"
        )


__all__ = ["LatencySummary", "ReadDistribution", "percentile",
           "summarize_latencies"]
