"""Metric summaries used by the workload runner and the benchmarks."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics for a collection of operation latencies."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @classmethod
    def empty(cls) -> "LatencySummary":
        return cls(count=0, mean=0.0, minimum=0.0, maximum=0.0, p50=0.0, p95=0.0, p99=0.0)


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sequence."""
    if not values:
        raise ValueError("cannot take a percentile of an empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


def summarize_latencies(latencies: Iterable[float]) -> LatencySummary:
    """Compute a :class:`LatencySummary` from raw latencies."""
    values: List[float] = [float(v) for v in latencies]
    if not values:
        return LatencySummary.empty()
    return LatencySummary(
        count=len(values),
        mean=sum(values) / len(values),
        minimum=min(values),
        maximum=max(values),
        p50=percentile(values, 0.50),
        p95=percentile(values, 0.95),
        p99=percentile(values, 0.99),
    )


__all__ = ["LatencySummary", "percentile", "summarize_latencies"]
