"""Declarative workloads and random workload generators."""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.consistency.history import READ, WRITE


@dataclass(frozen=True)
class ScheduledOperation:
    """One operation scheduled at a virtual time on a named client.

    ``client_index`` selects the writer or reader within the target system
    (writers and readers are indexed separately).  ``key`` names the target
    object for cluster (router) workloads; single-object systems ignore it.
    ``session`` optionally names the logical client *session* the operation
    belongs to -- the cross-key, cross-shard identity the session auditor
    (:mod:`repro.consistency.sessions`) groups by.  When left ``None``, the
    cluster entry points stamp the default :attr:`session_id`.
    """

    kind: str
    at: float
    client_index: int = 0
    value: Optional[bytes] = None
    key: Optional[str] = None
    session: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in (READ, WRITE):
            raise ValueError("operation kind must be 'read' or 'write'")
        if self.at < 0:
            raise ValueError("operations cannot be scheduled in the past")
        if self.kind == WRITE and self.value is None:
            raise ValueError("write operations need a value")

    @property
    def session_id(self) -> str:
        """The operation's session identity (explicit, or the per-client
        default pairing writer ``i`` and reader ``i`` as one logical client)."""
        if self.session is not None:
            return self.session
        return f"client-{self.client_index}"


@dataclass
class Workload:
    """An ordered collection of scheduled operations."""

    operations: List[ScheduledOperation] = field(default_factory=list)
    description: str = ""

    def add(self, operation: ScheduledOperation) -> "Workload":
        self.operations.append(operation)
        return self

    def sorted_operations(self) -> List[ScheduledOperation]:
        return sorted(self.operations, key=lambda op: op.at)

    @property
    def write_count(self) -> int:
        return sum(1 for op in self.operations if op.kind == WRITE)

    @property
    def read_count(self) -> int:
        return sum(1 for op in self.operations if op.kind == READ)

    def __len__(self) -> int:
        return len(self.operations)


class ZipfKeySampler:
    """Samples keys with Zipf-distributed popularity (rank ``r`` gets weight
    ``1 / r**s``).

    Real object stores see heavily skewed access patterns; this sampler
    drives the cluster router with them so shard hot-spotting is a
    first-class, reproducible experiment.  Sampling is inverse-CDF over the
    precomputed cumulative weights, so it is O(log K) per draw and fully
    deterministic given the seed.
    """

    def __init__(self, keys: Sequence[str], s: float = 1.2,
                 seed: Optional[int] = None) -> None:
        if not keys:
            raise ValueError("the sampler needs at least one key")
        if s < 0:
            raise ValueError("the Zipf exponent must be non-negative")
        self.keys = list(keys)
        self.s = s
        self._rng = random.Random(seed)
        self._cumulative: List[float] = []
        total = 0.0
        for rank in range(1, len(self.keys) + 1):
            total += 1.0 / rank ** s
            self._cumulative.append(total)
        self._total = total

    def sample(self) -> str:
        """Draw one key."""
        point = self._rng.random() * self._total
        index = bisect.bisect_left(self._cumulative, point)
        return self.keys[min(index, len(self.keys) - 1)]

    def frequencies(self, draws: int) -> dict:
        """Empirical key counts over ``draws`` samples (consumes randomness)."""
        counts = {key: 0 for key in self.keys}
        for _ in range(draws):
            counts[self.sample()] += 1
        return counts


class UniformKeySampler:
    """Samples keys uniformly (the skew-free baseline)."""

    def __init__(self, keys: Sequence[str], seed: Optional[int] = None) -> None:
        if not keys:
            raise ValueError("the sampler needs at least one key")
        self.keys = list(keys)
        self._rng = random.Random(seed)

    def sample(self) -> str:
        return self._rng.choice(self.keys)


class WorkloadGenerator:
    """Builds common workload shapes.

    The generators only *schedule invocation times*; whether operations end
    up concurrent depends on the latency model of the system they run on.
    Per-client well-formedness (one outstanding operation per client) is
    respected by spacing a client's operations at least ``client_spacing``
    apart, which callers should set larger than the worst-case operation
    latency of the target system.
    """

    def __init__(self, seed: Optional[int] = None, client_spacing: float = 50.0) -> None:
        self._rng = random.Random(seed)
        self.client_spacing = client_spacing

    def _value(self, index: int, size: int = 8) -> bytes:
        return bytes([(index * 31 + offset) % 251 + 1 for offset in range(size)])

    def sequential(self, num_writes: int, num_reads: int, spacing: Optional[float] = None,
                   start: float = 0.0) -> Workload:
        """Alternating, non-overlapping writes and reads (no concurrency)."""
        spacing = self.client_spacing if spacing is None else spacing
        workload = Workload(description="sequential writes then reads")
        time = start
        for index in range(num_writes):
            workload.add(ScheduledOperation(kind=WRITE, at=time, client_index=0,
                                            value=self._value(index)))
            time += spacing
        for _ in range(num_reads):
            workload.add(ScheduledOperation(kind=READ, at=time, client_index=0))
            time += spacing
        return workload

    def concurrent_burst(self, num_writers: int, num_readers: int, at: float = 0.0,
                         jitter: float = 1.0) -> Workload:
        """One write per writer and one read per reader, all starting together."""
        workload = Workload(description="concurrent burst of writes and reads")
        for index in range(num_writers):
            workload.add(ScheduledOperation(
                kind=WRITE, at=at + self._rng.uniform(0, jitter), client_index=index,
                value=self._value(index),
            ))
        for index in range(num_readers):
            workload.add(ScheduledOperation(
                kind=READ, at=at + self._rng.uniform(0, jitter), client_index=index,
            ))
        return workload

    def read_heavy(self, num_rounds: int, readers: int = 1, start: float = 0.0,
                   spacing: Optional[float] = None) -> Workload:
        """One initial write followed by rounds of reads (delta = 0 regime)."""
        spacing = self.client_spacing if spacing is None else spacing
        workload = Workload(description="read-heavy after a single write")
        workload.add(ScheduledOperation(kind=WRITE, at=start, client_index=0,
                                        value=self._value(0)))
        time = start + spacing
        for _ in range(num_rounds):
            for reader_index in range(readers):
                workload.add(ScheduledOperation(kind=READ, at=time, client_index=reader_index))
            time += spacing
        return workload

    def mixed_random(self, num_operations: int, write_fraction: float, duration: float,
                     num_writers: int = 1, num_readers: int = 1,
                     start: float = 0.0) -> Workload:
        """Random mix of reads and writes over a time window.

        Each client's operations are spaced by ``client_spacing`` so the
        workload stays well-formed regardless of operation latency.
        """
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be within [0, 1]")
        workload = Workload(description="random read/write mix")
        next_free_writer = [start] * num_writers
        next_free_reader = [start] * num_readers
        for index in range(num_operations):
            at = start + self._rng.uniform(0.0, duration)
            if self._rng.random() < write_fraction:
                client = self._rng.randrange(num_writers)
                at = max(at, next_free_writer[client])
                next_free_writer[client] = at + self.client_spacing
                workload.add(ScheduledOperation(kind=WRITE, at=at, client_index=client,
                                                value=self._value(index)))
            else:
                client = self._rng.randrange(num_readers)
                at = max(at, next_free_reader[client])
                next_free_reader[client] = at + self.client_spacing
                workload.add(ScheduledOperation(kind=READ, at=at, client_index=client))
        return workload

    def keyed_random(self, keys: Sequence[str], num_operations: int,
                     write_fraction: float, duration: float,
                     key_sampler: Optional[object] = None,
                     writers_per_key: int = 1, readers_per_key: int = 1,
                     start: float = 0.0) -> Workload:
        """Random keyed read/write mix for a cluster router.

        ``key_sampler`` is any object with a ``sample() -> str`` method
        (:class:`ZipfKeySampler` for skew, :class:`UniformKeySampler` or
        ``None`` for the uniform default).  Well-formedness is enforced per
        (key, client): each shard has its own writers and readers, so two
        operations on the same key and client are spaced by
        ``client_spacing`` while different keys proceed fully in parallel.
        """
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be within [0, 1]")
        if key_sampler is None:
            key_sampler = UniformKeySampler(keys, seed=self._rng.randrange(2 ** 31))
        workload = Workload(description="random keyed read/write mix")
        next_free: dict = {}
        for index in range(num_operations):
            key = key_sampler.sample()
            at = start + self._rng.uniform(0.0, duration)
            if self._rng.random() < write_fraction:
                client = self._rng.randrange(writers_per_key)
                slot = (key, WRITE, client)
                at = max(at, next_free.get(slot, start))
                next_free[slot] = at + self.client_spacing
                workload.add(ScheduledOperation(kind=WRITE, at=at, client_index=client,
                                                value=self._value(index), key=key))
            else:
                client = self._rng.randrange(readers_per_key)
                slot = (key, READ, client)
                at = max(at, next_free.get(slot, start))
                next_free[slot] = at + self.client_spacing
                workload.add(ScheduledOperation(kind=READ, at=at, client_index=client,
                                                key=key))
        return workload

    def zipf_keyed(self, keys: Sequence[str], num_operations: int,
                   write_fraction: float, duration: float, s: float = 1.2,
                   writers_per_key: int = 1, readers_per_key: int = 1,
                   start: float = 0.0) -> Workload:
        """A :meth:`keyed_random` workload with Zipf-skewed key popularity."""
        sampler = ZipfKeySampler(keys, s=s, seed=self._rng.randrange(2 ** 31))
        workload = self.keyed_random(
            keys, num_operations, write_fraction, duration,
            key_sampler=sampler, writers_per_key=writers_per_key,
            readers_per_key=readers_per_key, start=start,
        )
        workload.description = f"zipf(s={s}) keyed read/write mix"
        return workload

    def write_heavy_with_trailing_read(self, num_writes: int, num_writers: int,
                                       burst_window: float, read_at: float) -> Workload:
        """Many concurrent writes followed by a read (delta > 0 regime)."""
        workload = Workload(description="write burst with a trailing concurrent read")
        next_free = [0.0] * num_writers
        for index in range(num_writes):
            client = index % num_writers
            at = max(self._rng.uniform(0.0, burst_window), next_free[client])
            next_free[client] = at + self.client_spacing
            workload.add(ScheduledOperation(kind=WRITE, at=at, client_index=client,
                                            value=self._value(index)))
        workload.add(ScheduledOperation(kind=READ, at=read_at, client_index=0))
        return workload


__all__ = [
    "ScheduledOperation",
    "UniformKeySampler",
    "Workload",
    "WorkloadGenerator",
    "ZipfKeySampler",
]
