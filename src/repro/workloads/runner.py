"""Workload execution against any of the simulated systems.

The runner only relies on the small driving API that
:class:`~repro.core.system.LDSSystem`, :class:`~repro.baselines.abd.ABDSystem`
and :class:`~repro.baselines.cas.CASSystem` share: ``invoke_write``,
``invoke_read``, ``run_until_idle``, ``history``, ``operation_cost`` and
``communication_cost``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol

from repro.consistency.history import History, READ, WRITE
from repro.consistency.linearizability import (
    AtomicityViolation,
    check_atomicity_by_tags,
)
from repro.workloads.generator import Workload
from repro.workloads.metrics import LatencySummary, summarize_latencies


class DrivableSystem(Protocol):
    """The driving API every simulated register system exposes."""

    def invoke_write(self, value: bytes, writer=0, at: Optional[float] = None) -> str: ...

    def invoke_read(self, reader=0, at: Optional[float] = None) -> str: ...

    def run_until_idle(self, max_events: int = 10_000_000) -> None: ...

    def history(self) -> History: ...

    def operation_cost(self, op_id: str) -> float: ...

    @property
    def communication_cost(self) -> float: ...


@dataclass
class WorkloadReport:
    """Everything measured while executing one workload."""

    history: History
    write_latency: LatencySummary
    read_latency: LatencySummary
    write_costs: Dict[str, float] = field(default_factory=dict)
    read_costs: Dict[str, float] = field(default_factory=dict)
    total_communication_cost: float = 0.0
    incomplete_operations: int = 0
    atomicity_violation: Optional[AtomicityViolation] = None

    @property
    def mean_write_cost(self) -> float:
        return (sum(self.write_costs.values()) / len(self.write_costs)) if self.write_costs else 0.0

    @property
    def mean_read_cost(self) -> float:
        return (sum(self.read_costs.values()) / len(self.read_costs)) if self.read_costs else 0.0

    @property
    def is_atomic(self) -> bool:
        return self.atomicity_violation is None


def _assemble_report(system, history: History, violation: Optional[AtomicityViolation],
                     write_ops: List[str], read_ops: List[str]) -> WorkloadReport:
    """Shared report construction for both runners."""
    incomplete = sum(1 for op in history if not op.is_complete)
    return WorkloadReport(
        history=history,
        write_latency=summarize_latencies(history.latencies(WRITE)),
        read_latency=summarize_latencies(history.latencies(READ)),
        write_costs={op: system.operation_cost(op) for op in write_ops},
        read_costs={op: system.operation_cost(op) for op in read_ops},
        total_communication_cost=system.communication_cost,
        incomplete_operations=incomplete,
        atomicity_violation=violation,
    )


class WorkloadRunner:
    """Executes a :class:`Workload` against a drivable system."""

    def __init__(self, system: DrivableSystem, check_atomicity: bool = True) -> None:
        self.system = system
        self.check_atomicity = check_atomicity

    def run(self, workload: Workload, max_events: int = 10_000_000) -> WorkloadReport:
        """Schedule every operation, run to quiescence, and summarise."""
        write_ops: List[str] = []
        read_ops: List[str] = []
        for operation in workload.sorted_operations():
            if operation.kind == WRITE:
                op_id = self.system.invoke_write(
                    operation.value or b"", writer=operation.client_index, at=operation.at
                )
                write_ops.append(op_id)
            else:
                op_id = self.system.invoke_read(
                    reader=operation.client_index, at=operation.at
                )
                read_ops.append(op_id)
        self.system.run_until_idle(max_events=max_events)

        history = self.system.history()
        violation = None
        if self.check_atomicity:
            violation = check_atomicity_by_tags(history)
        return _assemble_report(self.system, history, violation, write_ops, read_ops)


class KeyedDrivableSystem(Protocol):
    """The keyed driving API of the cluster router (and its facades).

    ``kernel`` / ``add_workload`` carry the kernel-mode contract: when
    ``kernel`` is non-None the runner schedules the workload through
    ``add_workload`` instead of batch-injecting operations itself.
    """

    def invoke_write(self, key: str, value: bytes, writer=0,
                     at: Optional[float] = None,
                     session: Optional[str] = None) -> str: ...

    def invoke_read(self, key: str, reader=0, at: Optional[float] = None,
                    session: Optional[str] = None) -> str: ...

    @property
    def kernel(self): ...

    def add_workload(self, workload: "Workload", start: float = 0.0,
                     on_handle=None) -> int: ...

    def run_until_idle(self, max_events: int = 10_000_000) -> None: ...

    def history(self) -> History: ...

    def check_atomicity(self) -> Optional[AtomicityViolation]: ...

    def operation_cost(self, handle: str) -> float: ...

    @property
    def communication_cost(self) -> float: ...


class KeyedWorkloadRunner:
    """Executes a keyed :class:`Workload` against an object router.

    The router checks atomicity itself (per object and per migration
    epoch), so unlike :class:`WorkloadRunner` this runner delegates the
    check instead of running the tag checker over the merged history.

    When the target system carries a global simulation kernel (a non-None
    ``kernel`` attribute -- an :class:`~repro.cluster.router.ObjectRouter`
    or :class:`~repro.cluster.deployment.ShardedCluster` after
    ``attach_kernel``, or a :class:`~repro.sim.harness.ClusterSimulation`),
    operations are scheduled as timed *arrival events* on the kernel
    instead of being pre-batched, so the workload interleaves with
    background repairs, migrations and other shards' traffic on one global
    clock.  Without a kernel the legacy batch-then-drain path runs,
    byte-for-byte compatible with previous releases.

    On both paths every operation is stamped with its *session identity*
    (:attr:`~repro.workloads.generator.ScheduledOperation.session_id` --
    explicit, or the default pairing writer ``i`` and reader ``i`` as one
    logical client), which the router preserves end to end into the merged
    history so :func:`repro.consistency.sessions.check_sessions` can audit
    per-client guarantees across keys and shards.
    """

    def __init__(self, system: "KeyedDrivableSystem",
                 check_atomicity: bool = True) -> None:
        self.system = system
        self.check_atomicity = check_atomicity

    def run(self, workload: Workload, max_events: int = 10_000_000) -> WorkloadReport:
        """Schedule every keyed operation, run to quiescence, and summarise."""
        write_ops: List[str] = []
        read_ops: List[str] = []
        if getattr(self.system, "kernel", None) is not None:
            self._schedule_arrivals(workload, write_ops, read_ops)
        else:
            self._inject_batches(workload, write_ops, read_ops)
        self.system.run_until_idle(max_events=max_events)

        history = self.system.history()
        violation = self.system.check_atomicity() if self.check_atomicity else None
        return _assemble_report(self.system, history, violation, write_ops, read_ops)

    @staticmethod
    def _require_key(operation) -> None:
        if operation.key is None:
            raise ValueError(
                "keyed workloads require every operation to carry a key; "
                "use WorkloadRunner for single-object workloads"
            )

    def _inject_batches(self, workload: Workload, write_ops: List[str],
                        read_ops: List[str]) -> None:
        """Legacy path: queue everything up front, one batch per shard.

        Operations are stamped with their session identity exactly like
        kernel arrivals, so merged histories carry sessions on both paths
        (the auditor itself still needs global-clock timestamps, which only
        the kernel provides).
        """
        for operation in workload.sorted_operations():
            self._require_key(operation)
            if operation.kind == WRITE:
                handle = self.system.invoke_write(
                    operation.key, operation.value or b"",
                    writer=operation.client_index, at=operation.at,
                    session=operation.session_id,
                )
                write_ops.append(handle)
            else:
                handle = self.system.invoke_read(
                    operation.key, reader=operation.client_index, at=operation.at,
                    session=operation.session_id,
                )
                read_ops.append(handle)

    def _schedule_arrivals(self, workload: Workload,
                           write_ops: List[str], read_ops: List[str]) -> None:
        """Kernel path: every operation arrives at its nominal global time.

        Arrival semantics (per-operation timed injection, uniform forward
        shift of past-due windows, key and client validation, arrival
        counting) live in one place -- ``add_workload`` on the router /
        cluster / simulation -- and this runner only collects the handles
        for cost reporting.
        """
        def collect(kind: str, handle: str) -> None:
            (write_ops if kind == WRITE else read_ops).append(handle)

        self.system.add_workload(workload, on_handle=collect)


__all__ = [
    "DrivableSystem",
    "KeyedDrivableSystem",
    "KeyedWorkloadRunner",
    "WorkloadReport",
    "WorkloadRunner",
]
