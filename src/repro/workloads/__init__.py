"""Workload generation, execution and metric collection.

The paper has no measured evaluation, so the benchmarks in this repository
drive the simulated systems with synthetic workloads: read/write mixes
with controlled concurrency (the delta parameter of Definition 2),
multi-writer bursts, and multi-object write loads parameterised by theta
(Section V-A.1).  This package provides:

* :mod:`repro.workloads.generator` -- declarative workload specifications
  and random generators;
* :mod:`repro.workloads.runner` -- executes a workload against any system
  exposing the common driving API (LDS, ABD or CAS) and collects results;
* :mod:`repro.workloads.metrics` -- latency / cost / throughput summaries.
"""

from repro.workloads.generator import (
    ScheduledOperation,
    UniformKeySampler,
    Workload,
    WorkloadGenerator,
    ZipfKeySampler,
)
from repro.workloads.runner import (
    KeyedWorkloadRunner,
    WorkloadReport,
    WorkloadRunner,
)
from repro.workloads.metrics import (
    LatencySummary,
    ReadDistribution,
    summarize_latencies,
)

__all__ = [
    "ScheduledOperation",
    "UniformKeySampler",
    "ZipfKeySampler",
    "Workload",
    "WorkloadGenerator",
    "WorkloadRunner",
    "KeyedWorkloadRunner",
    "WorkloadReport",
    "LatencySummary",
    "ReadDistribution",
    "summarize_latencies",
]
