"""The terminal run report: one readable page per simulation run.

``render_run_report`` folds the four telemetry pillars -- registry
counters, the sampler's time series, trace-span counts, and the pump
profile -- into the kind of summary you want printed at the end of an
example or benchmark run.  Everything here formats data that already
exists; nothing is computed from the live simulation except cheap
snapshot reads (repair stats, shard counts).
"""

from __future__ import annotations

from typing import List, Optional


def _series_extent(sampler, *path) -> tuple:
    values = sampler.series(*path)
    return (max(values), values[-1]) if values else (0, 0)


def render_run_report(simulation, telemetry) -> str:
    """A multi-section terminal report for one simulated run."""
    lines: List[str] = ["== run report =="]
    lines.append(simulation.describe())

    stats = simulation.cluster.router.stats
    lines.append("")
    lines.append("-- routing --")
    lines.append(
        f"arrivals={stats.arrivals} flushed={stats.operations_flushed} "
        f"batches={stats.batches_flushed} migrations={stats.migrations}"
    )
    lines.append(
        f"reads: primary={stats.primary_reads} follower={stats.follower_reads} "
        f"quorum={stats.quorum_reads} fallbacks={stats.session_fallbacks} "
        f"read_repairs={stats.read_repairs} "
        f"forwarded_writes={stats.forwarded_writes}"
    )

    repair = simulation.repair
    lines.append("")
    lines.append("-- repair --")
    lines.append(
        f"tasks={repair.stats.tasks_created} "
        f"dispatched={repair.stats.dispatched} "
        f"completed={repair.stats.repairs_completed} "
        f"retries={repair.stats.retries} gave_up={repair.stats.gave_up} "
        f"outstanding={repair.outstanding_repairs()}"
    )

    auditor = getattr(telemetry, "auditor", None)
    availability = getattr(telemetry, "availability", None)
    if auditor is not None or availability is not None:
        lines.append("")
        lines.append("-- audit health --")
    if auditor is not None:
        session_report = auditor.report()
        verdict = ("clean" if session_report.ok
                   else f"{len(session_report.violations)} VIOLATION(S)")
        lines.append(
            f"live session audit: {verdict} "
            f"(operations={session_report.operations_checked} "
            f"pairs={session_report.pairs_checked} "
            f"unsessioned_skipped={session_report.unsessioned_skipped} "
            f"unlinearized_skipped={session_report.unlinearized_skipped})"
        )
        lines.append(
            f"retention: tracked_entries={auditor.auditor.tracked_entries} "
            f"peak={auditor.auditor.peak_tracked_entries} "
            f"groups={auditor.auditor.tracked_groups} "
            f"peak_groups={auditor.auditor.peak_groups}"
        )
    if availability is not None:
        lines.append(availability.assessment().describe())

    latency = getattr(telemetry, "latency", None)
    if latency is not None and latency.records:
        lines.append("")
        lines.append(f"-- latency ({len(latency.records)} ops) --")
        for op_class in latency.classes():
            sketch = latency.sketch(op_class)
            lines.append(
                f"{op_class}: n={sketch.count} p50={sketch.p50:.1f} "
                f"p90={sketch.p90:.1f} p99={sketch.p99:.1f} "
                f"p999={sketch.p999:.1f} max={sketch.maximum:.1f}"
            )
            for attribution in latency.band_attributions(op_class):
                if not attribution.ops:
                    continue
                top = ", ".join(
                    f"{phase} {fraction * 100:.0f}%"
                    for phase, fraction in
                    list(attribution.fractions.items())[:3]
                )
                lines.append(f"  {attribution.band}: "
                             f"ops={attribution.ops} {top}")
        if latency.stranded:
            lines.append(f"stranded (never completed): {latency.stranded}")
        apply_sketch = latency.replication_apply
        if apply_sketch.count:
            lines.append(
                f"replication apply (post-ack): n={apply_sketch.count} "
                f"p50={apply_sketch.p50:.1f} p99={apply_sketch.p99:.1f}"
            )

    slo = getattr(telemetry, "slo", None)
    if slo is not None:
        statuses = slo.snapshot()
        if statuses:
            lines.append("")
            lines.append("-- slo --")
            for op_class, status in statuses.items():
                verdict = "ok" if status.met else "BLOWN"
                lines.append(
                    f"{op_class}: target p{status.target_fraction * 100:g}"
                    f"<={status.latency_target:g} ops={status.ops} "
                    f"breaches={status.breaches} "
                    f"budget={status.budget_consumed * 100:.0f}% "
                    f"burn={status.burn_rate:.2f}x [{verdict}]"
                )
            for kind, row in slo.availability().items():
                if row["invoked"]:
                    lines.append(
                        f"availability {kind}: {row['completed']}/"
                        f"{row['invoked']} ({row['fraction'] * 100:.2f}% vs "
                        f"{row['target'] * 100:g}%) "
                        f"[{'ok' if row['met'] else 'MISSED'}]"
                    )

    sampler = getattr(telemetry, "sampler", None)
    if sampler is not None and sampler.samples:
        lag_peak, lag_final = _series_extent(sampler, "replication_lag", "max")
        queue_peak, _ = _series_extent(sampler, "queue_depth", "total")
        backlog_peak, backlog_final = _series_extent(sampler, "repair",
                                                     "outstanding")
        pools = sampler.series("pools_live")
        lines.append("")
        lines.append(f"-- time series ({len(sampler.samples)} samples @ "
                     f"{sampler.interval:g}) --")
        lines.append(f"replication lag (records): peak={lag_peak} "
                     f"final={lag_final}")
        lines.append(f"queue depth (events): peak={queue_peak}")
        lines.append(f"repair backlog: peak={backlog_peak} "
                     f"final={backlog_final}")
        lines.append(f"live pools: min={min(pools)} final={pools[-1]}")

    registry = getattr(telemetry, "registry", None)
    if registry is not None:
        rendered = registry.render(nonzero_only=True)
        if rendered:
            lines.append("")
            lines.append("-- metrics --")
            lines.append(rendered)

    trace = getattr(telemetry, "trace", None)
    if trace is not None:
        lines.append("")
        lines.append("-- trace --")
        lines.append(
            f"{len(trace.events)} events, "
            f"{len(trace.spans('write '))} write spans, "
            f"{len(trace.spans('read '))} read spans, "
            f"{len(trace.open_handles())} never closed"
        )

    profile = getattr(telemetry, "pump_profile", None)
    if profile is not None and profile.events:
        lines.append("")
        lines.append("-- pump profile --")
        lines.append(profile.render())

    return "\n".join(lines)


__all__ = ["render_run_report"]
