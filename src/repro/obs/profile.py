"""Pump profiling: per-event-type attribution for the global scheduler.

Off by default (``GlobalScheduler.enable_profiling()`` turns it on):
for every event the pump executes, the kernel records which source ran
it, the callback's qualified name (the "event type"), how far the
global clock advanced to reach it, and the wall-clock seconds the
callback took.  That answers the two perf questions the ROADMAP's
flamegraph item asks -- *what kind of work dominates a run* (wall time)
and *what kind of work dominates the simulated timeline* (sim time).

The per-event cost when enabled is one ``perf_counter`` pair and a dict
update; when disabled the kernel pays a single ``is None`` check.
Profiling deliberately does **not** feed the fingerprint or the clock,
so a profiled run stays byte-identical to an unprofiled one.

``collapsed()`` emits folded-stack lines (``source;event_type count``)
that feed straight into ``flamegraph.pl`` or speedscope.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


def _callback_label(callback) -> str:
    """A stable human-readable name for an event callback."""
    if callback is None:
        return "<idle>"
    # functools.partial and friends: profile the wrapped function.
    inner = getattr(callback, "func", None)
    if inner is not None:
        callback = inner
    label = getattr(callback, "__qualname__", None)
    if label is None:
        label = type(callback).__name__
    return label


def _source_kind(source_name: str) -> str:
    """Collapse per-shard source names onto one attribution row."""
    if ":" in source_name:
        return source_name.split(":", 1)[0]
    return source_name


class PumpProfile:
    """Accumulates per-(source kind, event type) pump attribution."""

    def __init__(self) -> None:
        #: (source kind, event type) -> [count, sim time, wall seconds]
        self._rows: Dict[Tuple[str, str], List[float]] = {}
        self.events = 0
        self.wall_seconds = 0.0

    # -- recording (called from GlobalScheduler._execute) -------------------------

    def label_for(self, source) -> str:
        """The event type about to run on ``source`` (peeked pre-step)."""
        return _callback_label(source.simulator.head_callback())

    def record(self, source_name: str, label: str, sim_delta: float,
               wall_seconds: float) -> None:
        key = (_source_kind(source_name), label)
        row = self._rows.get(key)
        if row is None:
            row = [0, 0.0, 0.0]
            self._rows[key] = row
        row[0] += 1
        row[1] += sim_delta
        row[2] += wall_seconds
        self.events += 1
        self.wall_seconds += wall_seconds

    # -- views ---------------------------------------------------------------------

    def rows(self) -> List[dict]:
        """Attribution rows, heaviest wall time first."""
        out = [
            {
                "source": source,
                "event_type": label,
                "count": int(count),
                "sim_time": sim_time,
                "wall_s": wall,
            }
            for (source, label), (count, sim_time, wall)
            in self._rows.items()
        ]
        out.sort(key=lambda row: (-row["wall_s"], -row["count"],
                                  row["source"], row["event_type"]))
        return out

    def collapsed(self) -> List[str]:
        """Folded-stack lines (``source;event_type count``) for flamegraphs.

        Weights are event counts: wall-time weights would be
        microsecond-noisy run to run, while counts are deterministic for
        a fixed seed.
        """
        return [
            f"{row['source']};{row['event_type']} {row['count']}"
            for row in self.rows()
        ]

    def to_dict(self) -> dict:
        return {
            "events": self.events,
            "wall_seconds": self.wall_seconds,
            "rows": self.rows(),
        }

    def render(self, limit: Optional[int] = 12) -> str:
        """A terminal table of the heaviest event types."""
        rows = self.rows()
        shown = rows if limit is None else rows[:limit]
        lines = [
            f"pump profile: {self.events} events, "
            f"{self.wall_seconds * 1000:.1f} ms wall",
            f"  {'source':<10} {'event type':<44} {'count':>7} "
            f"{'sim time':>10} {'wall ms':>8}",
        ]
        for row in shown:
            lines.append(
                f"  {row['source']:<10} {row['event_type']:<44.44} "
                f"{row['count']:>7} {row['sim_time']:>10.1f} "
                f"{row['wall_s'] * 1000:>8.2f}"
            )
        if limit is not None and len(rows) > limit:
            lines.append(f"  ... {len(rows) - limit} more event types")
        return "\n".join(lines)


__all__ = ["PumpProfile"]
