"""Simulation-time observability: metrics, sampling, tracing, profiling.

The four pillars (see ISSUE/README "Observability"):

* :mod:`repro.obs.registry` -- the metrics registry
  (:class:`Counter` / :class:`Gauge` / :class:`Histogram`, with labels);
* :mod:`repro.obs.sampler` -- kernel-driven time-series probes of
  cluster health, exported as JSONL;
* :mod:`repro.obs.trace` -- per-operation spans in Chrome
  ``trace_event`` JSON (open in Perfetto / ``chrome://tracing``);
* :mod:`repro.obs.profile` -- per-event-type pump attribution.

Two audit-grade probes build on the same kernel probe source:

* :mod:`repro.obs.live_audit` -- the streaming session auditor run
  online (``ClusterSimulation(live_audit=True)``), surfacing violations
  at sim time as registry counters, trace instants and JSONL rows;
* :mod:`repro.obs.availability` -- sampled L2-fragment presence with
  per-object confidence bounds, catching silent under-replication in
  O(samples) instead of O(cluster).

Tail-latency observability builds on the span stream (see README
"Tail latency & SLOs"):

* :mod:`repro.obs.latency` -- mergeable :class:`QuantileSketch`
  instruments plus the :class:`LatencyTracker` decomposing every
  completed op into the phase taxonomy;
* :mod:`repro.obs.critical_path` -- pure-function critical-path
  extraction and "ops in the p99+ band spend X% in phase Y"
  attribution, live or from a recorded trace;
* :mod:`repro.obs.slo` -- per-op-class latency/availability targets
  with error-budget accounting and burn-rate probes.

:class:`Telemetry` bundles them for :class:`ClusterSimulation`; the
governing invariant is that all of it is pure observation -- kernel
fingerprints and histories are byte-identical with telemetry on or off.

This package is imported *by* the simulation layers and must therefore
never import :mod:`repro.sim` or :mod:`repro.cluster`; everything that
touches a simulation is duck-typed.
"""

from repro.obs.availability import (
    DEFAULT_AVAILABILITY_INTERVAL,
    AvailabilityAssessment,
    AvailabilityMonitor,
)
from repro.obs.critical_path import (
    OP_CLASSES,
    PHASES,
    TracedOp,
    critical_path,
    extract_ops,
)
from repro.obs.latency import (
    DEFAULT_RELATIVE_ERROR,
    LatencyTracker,
    QuantileSketch,
    SpanSinkFanout,
)
from repro.obs.live_audit import DEFAULT_AUDIT_INTERVAL, LiveAuditProbe
from repro.obs.profile import PumpProfile
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LabeledFamily,
    MetricsRegistry,
)
from repro.obs.report import render_run_report
from repro.obs.sampler import DEFAULT_INTERVAL, ClusterSampler
from repro.obs.slo import (
    DEFAULT_SLO_INTERVAL,
    SLO,
    SLOTracker,
    default_slos,
)
from repro.obs.telemetry import Telemetry
from repro.obs.trace import TS_SCALE, TraceRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LabeledFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "DEFAULT_INTERVAL",
    "ClusterSampler",
    "TraceRecorder",
    "TS_SCALE",
    "PumpProfile",
    "Telemetry",
    "render_run_report",
    "AvailabilityAssessment",
    "AvailabilityMonitor",
    "DEFAULT_AVAILABILITY_INTERVAL",
    "DEFAULT_AUDIT_INTERVAL",
    "LiveAuditProbe",
    "DEFAULT_RELATIVE_ERROR",
    "DEFAULT_SLO_INTERVAL",
    "LatencyTracker",
    "OP_CLASSES",
    "PHASES",
    "QuantileSketch",
    "SLO",
    "SLOTracker",
    "SpanSinkFanout",
    "TracedOp",
    "critical_path",
    "default_slos",
    "extract_ops",
]
