"""The telemetry facade: one object configuring all four pillars.

Construct a :class:`Telemetry`, hand it to
:class:`~repro.sim.harness.ClusterSimulation` (``telemetry=``), and the
harness threads it through the cluster:

* the router's :class:`RouterStats` registers its counters on
  :attr:`registry` instead of a private one;
* ``trace=True`` attaches a :class:`TraceRecorder` that the router and
  replica layers emit per-operation spans into;
* ``sample_interval=<units>`` starts a :class:`ClusterSampler` on the
  kernel's telemetry probe source;
* ``profile=True`` enables the kernel's pump profiling hooks.

Every pillar defaults to off except the registry (which costs a few
dict entries); :meth:`Telemetry.full` turns everything on.  None of the
pillars perturbs the simulation -- see the module docs of
:mod:`repro.obs.sampler` and :mod:`repro.sim.kernel` for why runs stay
byte-identical with telemetry on or off.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.report import render_run_report
from repro.obs.sampler import DEFAULT_INTERVAL, ClusterSampler
from repro.obs.trace import TraceRecorder


class Telemetry:
    """Configuration + sinks for one simulation's observability."""

    def __init__(self, *, registry: Optional[MetricsRegistry] = None,
                 trace: bool = False,
                 sample_interval: Optional[float] = None,
                 profile: bool = False) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace: Optional[TraceRecorder] = \
            TraceRecorder() if trace else None
        self.sample_interval = sample_interval
        self.profile = bool(profile)
        #: Filled by :meth:`attach`.
        self.sampler: Optional[ClusterSampler] = None
        self.pump_profile = None

    @classmethod
    def full(cls, sample_interval: float = DEFAULT_INTERVAL) -> "Telemetry":
        """Everything on: registry + sampler + tracer + pump profile."""
        return cls(trace=True, sample_interval=sample_interval, profile=True)

    def attach(self, simulation) -> None:
        """Wire the configured pillars to a built simulation.

        Called once by ``ClusterSimulation.__init__`` after the kernel
        and cluster exist; idempotent pillars (the registry, the trace)
        were already threaded through construction.
        """
        if self.sample_interval is not None and self.sampler is None:
            self.sampler = ClusterSampler(
                simulation,
                interval=self.sample_interval,
                registry=self.registry,
                trace=self.trace,
            )
            self.sampler.start()
        if self.profile:
            self.pump_profile = simulation.kernel.enable_profiling()

    def ensure_sampler_armed(self) -> None:
        """Re-arm the sampler cadence (harness calls this before pumping)."""
        if self.sampler is not None:
            self.sampler.ensure_armed()

    def report(self, simulation) -> str:
        """The terminal run report for ``simulation``."""
        return render_run_report(simulation, self)


__all__ = ["Telemetry"]
