"""The telemetry facade: one object configuring all four pillars.

Construct a :class:`Telemetry`, hand it to
:class:`~repro.sim.harness.ClusterSimulation` (``telemetry=``), and the
harness threads it through the cluster:

* the router's :class:`RouterStats` registers its counters on
  :attr:`registry` instead of a private one;
* ``trace=True`` attaches a :class:`TraceRecorder` that the router and
  replica layers emit per-operation spans into;
* ``sample_interval=<units>`` starts a :class:`ClusterSampler` on the
  kernel's telemetry probe source;
* ``profile=True`` enables the kernel's pump profiling hooks;
* ``live_audit=True`` runs the streaming session auditor online
  (:class:`~repro.obs.live_audit.LiveAuditProbe`) -- usually requested
  through ``ClusterSimulation(live_audit=True)``;
* ``availability_interval=<units>`` starts the sampling
  :class:`~repro.obs.availability.AvailabilityMonitor`;
* ``latency=True`` attaches a :class:`~repro.obs.latency.LatencyTracker`
  to the same span stream the tracer consumes (per-op-class quantile
  sketches, phase decomposition, critical-path attribution) -- usually
  requested through ``ClusterSimulation(latency=True)``;
* ``slo_interval=<units>`` (or ``slos=(...)``) runs a
  :class:`~repro.obs.slo.SLOTracker` probe accounting error budgets and
  burn rates against per-op-class targets (implies ``latency``).

Every pillar defaults to off except the registry (which costs a few
dict entries); :meth:`Telemetry.full` turns the four passive pillars on
(the audit pillars stay opt-in: they change the *audit path*, not the
execution, and ``full()`` keeps its historical meaning).  None of the
pillars perturbs the simulation -- see the module docs of
:mod:`repro.obs.sampler` and :mod:`repro.sim.kernel` for why runs stay
byte-identical with telemetry on or off.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.availability import (
    DEFAULT_AVAILABILITY_INTERVAL,
    DEFAULT_SAMPLES_PER_EPOCH,
    AvailabilityMonitor,
)
from repro.obs.latency import LatencyTracker, SpanSinkFanout
from repro.obs.live_audit import DEFAULT_AUDIT_INTERVAL, LiveAuditProbe
from repro.obs.registry import MetricsRegistry
from repro.obs.report import render_run_report
from repro.obs.sampler import DEFAULT_INTERVAL, ClusterSampler
from repro.obs.slo import DEFAULT_SLO_INTERVAL, SLOTracker
from repro.obs.trace import TraceRecorder


class Telemetry:
    """Configuration + sinks for one simulation's observability."""

    def __init__(self, *, registry: Optional[MetricsRegistry] = None,
                 trace: bool = False,
                 sample_interval: Optional[float] = None,
                 profile: bool = False,
                 live_audit: bool = False,
                 audit_interval: float = DEFAULT_AUDIT_INTERVAL,
                 availability_interval: Optional[float] = None,
                 availability_samples: int = DEFAULT_SAMPLES_PER_EPOCH,
                 availability_seed: Optional[int] = None,
                 latency: bool = False,
                 slos=None,
                 slo_interval: Optional[float] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace: Optional[TraceRecorder] = \
            TraceRecorder() if trace else None
        self.sample_interval = sample_interval
        self.profile = bool(profile)
        self.live_audit = bool(live_audit)
        self.audit_interval = audit_interval
        self.availability_interval = availability_interval
        self.availability_samples = availability_samples
        #: Seed for the availability monitor's probe-only RNG; derived
        #: from the simulation's seed at attach time when left ``None``.
        self.availability_seed = availability_seed
        #: SLO tracking implies the latency tracker it accounts against.
        self.slos = slos
        self.slo_interval = slo_interval
        if slos is not None and slo_interval is None:
            self.slo_interval = DEFAULT_SLO_INTERVAL
        self.latency: Optional[LatencyTracker] = None
        if latency or self.slo_interval is not None:
            self.latency = LatencyTracker(registry=self.registry)
        #: Filled by :meth:`attach`.
        self.sampler: Optional[ClusterSampler] = None
        self.pump_profile = None
        self.auditor: Optional[LiveAuditProbe] = None
        self.availability: Optional[AvailabilityMonitor] = None
        self.slo: Optional[SLOTracker] = None

    @classmethod
    def full(cls, sample_interval: float = DEFAULT_INTERVAL) -> "Telemetry":
        """Everything on: registry + sampler + tracer + pump profile +
        latency decomposition."""
        return cls(trace=True, sample_interval=sample_interval, profile=True,
                   latency=True)

    @classmethod
    def audited(cls, sample_interval: float = DEFAULT_INTERVAL,
                availability_interval: float = DEFAULT_AVAILABILITY_INTERVAL,
                ) -> "Telemetry":
        """``full()`` plus the online audit pillars: live session auditing
        and sampled availability monitoring."""
        return cls(trace=True, sample_interval=sample_interval, profile=True,
                   live_audit=True,
                   availability_interval=availability_interval)

    def enable_latency(self) -> None:
        """Turn the latency pillar on (idempotent).

        Must happen before the cluster is built -- the router captures
        its span sink at construction (the harness's ``latency=True``
        path calls this at the right moment)."""
        if self.latency is None:
            self.latency = LatencyTracker(registry=self.registry)

    def op_sink(self):
        """The span sink the router/replica layers should emit into:
        the trace recorder, the latency tracker, or a fanout over both
        (None when neither pillar is on)."""
        if self.trace is not None and self.latency is not None:
            return SpanSinkFanout(self.trace, self.latency)
        if self.latency is not None:
            return self.latency
        return self.trace

    def attach(self, simulation) -> None:
        """Wire the configured pillars to a built simulation.

        Called once by ``ClusterSimulation.__init__`` after the kernel
        and cluster exist (but before any shard is built, so the audit
        feed's completion observers reach every shard); idempotent
        pillars (the registry, the trace) were already threaded through
        construction.
        """
        if self.live_audit and self.auditor is None:
            self.auditor = LiveAuditProbe(
                simulation,
                interval=self.audit_interval,
                registry=self.registry,
                trace=self.trace,
            )
            self.auditor.start()
        if self.availability_interval is not None and self.availability is None:
            seed = self.availability_seed
            if seed is None:
                # Derived, not shared: reproducible per run seed, but a
                # different stream from every simulation RNG.
                seed = (getattr(simulation, "seed", 0) or 0) ^ 0xA5A11AB1
            self.availability = AvailabilityMonitor(
                simulation,
                interval=self.availability_interval,
                samples_per_epoch=self.availability_samples,
                seed=seed,
                registry=self.registry,
                trace=self.trace,
            )
            self.availability.start()
        if self.sample_interval is not None and self.sampler is None:
            self.sampler = ClusterSampler(
                simulation,
                interval=self.sample_interval,
                registry=self.registry,
                trace=self.trace,
            )
            self.sampler.start()
        if self.slo_interval is not None and self.slo is None:
            self.enable_latency()
            self.slo = SLOTracker(
                simulation,
                self.latency,
                slos=self.slos,
                interval=self.slo_interval,
                registry=self.registry,
                trace=self.trace,
            )
            self.slo.start()
        if self.profile:
            self.pump_profile = simulation.kernel.enable_profiling()

    def ensure_sampler_armed(self) -> None:
        """Re-arm every probe cadence (harness calls this before pumping)."""
        for probe in (self.sampler, self.auditor, self.availability,
                      self.slo):
            if probe is not None:
                probe.ensure_armed()

    def report(self, simulation) -> str:
        """The terminal run report for ``simulation``."""
        return render_run_report(simulation, self)


__all__ = ["Telemetry"]
