"""SLO targets, error-budget accounting and burn-rate tracking.

An :class:`SLO` declares, per operation class, the latency objective
("``target_fraction`` of ops complete within ``latency_target``") and an
availability objective ("at least ``availability_target`` of invoked ops
complete").  :class:`SLOTracker` holds a set of SLOs against a
:class:`~repro.obs.latency.LatencyTracker` and accounts continuously:

* **error budget** -- out of the ops seen so far, the objective permits
  ``ops * (1 - target_fraction)`` breaches; ``budget_consumed`` is the
  fraction of that allowance already spent (>1 means the SLO is blown);
* **burn rate** -- the breach fraction divided by the allowed fraction:
  the speed the budget is being consumed at (1.0 = exactly on budget,
  10x = blowing through it an order of magnitude too fast).  Both a
  cumulative rate and a per-probe-window rate are tracked; the window
  rate is what alerting keys on.

The tracker runs as a kernel probe on the telemetry source (same
cadence discipline as :class:`~repro.obs.sampler.ClusterSampler`): at
every tick it folds the latency tracker's new records into registry
counters/gauges, appends a JSONL row, and emits Perfetto counter tracks
(per-class p99 + window burn rate).  Probes bypass the kernel clock,
fingerprint and stats, so runs are byte-identical with SLO tracking on
or off; :func:`SLOTracker.snapshot` also computes the full status on
demand (the run report uses it), independent of probe timing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.critical_path import OP_CLASSES
from repro.obs.latency import LatencyTracker
from repro.obs.registry import MetricsRegistry

#: Default probe cadence, in virtual time units.
DEFAULT_SLO_INTERVAL = 50.0

#: Default per-class latency objectives, in virtual time units.  Chosen
#: from the shipped scenarios' observed distributions: forwarded writes
#: pay a network hop, quorum reads a fan-out round trip.
DEFAULT_LATENCY_TARGETS: Dict[str, float] = {
    "write": 40.0,
    "forwarded-write": 60.0,
    "protocol-read": 40.0,
    "quorum-read": 60.0,
    "follower-read": 40.0,
}


@dataclass(frozen=True)
class SLO:
    """One operation class's service-level objective."""

    op_class: str
    #: "``target_fraction`` of ops complete within this many time units."
    latency_target: float
    target_fraction: float = 0.99
    #: Fraction of invoked ops that must complete (not strand).
    availability_target: float = 0.999

    def __post_init__(self) -> None:
        if not 0.0 < self.target_fraction < 1.0:
            raise ValueError("target_fraction must be in (0, 1)")
        if self.latency_target <= 0.0:
            raise ValueError("latency_target must be positive")

    @property
    def allowed_breach_fraction(self) -> float:
        return 1.0 - self.target_fraction


def default_slos(target_fraction: float = 0.99) -> Tuple[SLO, ...]:
    """One SLO per operation class, with the shipped default targets."""
    return tuple(
        SLO(op_class=op_class,
            latency_target=DEFAULT_LATENCY_TARGETS[op_class],
            target_fraction=target_fraction)
        for op_class in OP_CLASSES
    )


@dataclass
class SLOStatus:
    """One class's budget accounting at a point in time."""

    op_class: str
    ops: int
    breaches: int
    latency_target: float
    target_fraction: float
    #: Fraction of the error budget consumed so far (>1 = SLO blown).
    budget_consumed: float
    #: Cumulative burn rate (1.0 = consuming exactly on budget).
    burn_rate: float

    @property
    def met(self) -> bool:
        return self.budget_consumed <= 1.0


class SLOTracker:
    """Error-budget accounting over a latency tracker, as a kernel probe."""

    def __init__(self, simulation, latency: LatencyTracker, *,
                 slos: Optional[Tuple[SLO, ...]] = None,
                 interval: float = DEFAULT_SLO_INTERVAL,
                 registry: Optional[MetricsRegistry] = None,
                 trace=None) -> None:
        if interval <= 0:
            raise ValueError("the SLO probe interval must be positive")
        self.simulation = simulation
        self.latency = latency
        self.slos: Dict[str, SLO] = {
            slo.op_class: slo for slo in (slos if slos is not None
                                          else default_slos())
        }
        self.interval = float(interval)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace
        self.samples: List[dict] = []
        self._armed = False
        self._next_tick = 0.0
        #: Cursor into ``latency.records``; everything before it has been
        #: folded into the counters already.
        self._cursor = 0
        #: op_class -> (ops, breaches) folded so far.
        self._ops: Dict[str, int] = {}
        self._breaches: Dict[str, int] = {}
        #: Window accounting: per-class (ops, breaches) since last tick.
        self._window_ops: Dict[str, int] = {}
        self._window_breaches: Dict[str, int] = {}
        registry = self.registry
        self._c_ops = registry.counter(
            "slo_ops", "operations assessed against their class SLO",
            labels=("op_class",))
        self._c_breaches = registry.counter(
            "slo_latency_breaches",
            "operations that exceeded their class latency target",
            labels=("op_class",))
        self._g_budget = registry.gauge(
            "slo_budget_consumed",
            "fraction of the class error budget consumed (>1 = blown)",
            labels=("op_class",))
        self._g_burn = registry.gauge(
            "slo_burn_rate",
            "cumulative burn rate (1.0 = consuming exactly on budget)",
            labels=("op_class",))

    # -- arming --------------------------------------------------------------------

    def start(self) -> None:
        """Arm the first probe one interval from the current global time."""
        self.ensure_armed()

    def ensure_armed(self) -> None:
        """(Re)arm the probe cadence if it previously wound down."""
        if self._armed:
            return
        kernel = self.simulation.kernel
        self._armed = True
        self._next_tick = kernel.now + self.interval
        kernel.schedule_probe(self._next_tick, self._probe)

    # -- accounting ----------------------------------------------------------------

    def _ingest(self) -> None:
        """Fold records the latency tracker completed since last look."""
        records = self.latency.records
        while self._cursor < len(records):
            record = records[self._cursor]
            self._cursor += 1
            slo = self.slos.get(record.op_class)
            if slo is None:
                continue
            cls = record.op_class
            self._ops[cls] = self._ops.get(cls, 0) + 1
            self._window_ops[cls] = self._window_ops.get(cls, 0) + 1
            self._c_ops.labels(op_class=cls).inc()
            if record.total > slo.latency_target:
                self._breaches[cls] = self._breaches.get(cls, 0) + 1
                self._window_breaches[cls] = \
                    self._window_breaches.get(cls, 0) + 1
                self._c_breaches.labels(op_class=cls).inc()

    def _status_for(self, slo: SLO, ops: int, breaches: int) -> SLOStatus:
        allowed = slo.allowed_breach_fraction
        breach_fraction = breaches / ops if ops else 0.0
        burn = breach_fraction / allowed if allowed else 0.0
        budget = (breaches / (ops * allowed)) if ops else 0.0
        return SLOStatus(op_class=slo.op_class, ops=ops, breaches=breaches,
                         latency_target=slo.latency_target,
                         target_fraction=slo.target_fraction,
                         budget_consumed=budget, burn_rate=burn)

    def snapshot(self) -> Dict[str, SLOStatus]:
        """The current per-class status (ingests any pending records)."""
        self._ingest()
        out: Dict[str, SLOStatus] = {}
        for op_class in OP_CLASSES:
            slo = self.slos.get(op_class)
            if slo is None:
                continue
            ops = self._ops.get(op_class, 0)
            if ops == 0:
                continue
            out[op_class] = self._status_for(
                slo, ops, self._breaches.get(op_class, 0))
        return out

    def availability(self) -> Dict[str, dict]:
        """Invoked-vs-completed availability per op kind, vs target."""
        out: Dict[str, dict] = {}
        target = max((slo.availability_target
                      for slo in self.slos.values()), default=0.999)
        for kind in ("write", "read"):
            invoked = self.latency.invoked_by_kind.get(kind, 0)
            completed = self.latency.completed_by_kind.get(kind, 0)
            fraction = completed / invoked if invoked else 1.0
            out[kind] = {
                "invoked": invoked,
                "completed": completed,
                "fraction": fraction,
                "target": target,
                "met": fraction >= target,
            }
        return out

    # -- probing -------------------------------------------------------------------

    def _probe(self) -> None:
        kernel = self.simulation.kernel
        tick = self._next_tick
        self.samples.append(self.sample(tick))
        if kernel.pending_work():
            self._next_tick = tick + self.interval
            kernel.schedule_probe(self._next_tick, self._probe)
        else:
            self._armed = False

    def sample(self, tick: float) -> dict:
        """One SLO accounting row at virtual time ``tick``."""
        self._ingest()
        classes = {}
        for op_class in OP_CLASSES:
            slo = self.slos.get(op_class)
            if slo is None:
                continue
            ops = self._ops.get(op_class, 0)
            breaches = self._breaches.get(op_class, 0)
            status = self._status_for(slo, ops, breaches)
            window_ops = self._window_ops.get(op_class, 0)
            window_breaches = self._window_breaches.get(op_class, 0)
            window = self._status_for(slo, window_ops, window_breaches)
            self._g_budget.labels(op_class=op_class).set(
                status.budget_consumed)
            self._g_burn.labels(op_class=op_class).set(status.burn_rate)
            if ops:
                classes[op_class] = {
                    "ops": ops,
                    "breaches": breaches,
                    "budget_consumed": status.budget_consumed,
                    "burn_rate": status.burn_rate,
                    "window_burn_rate": window.burn_rate,
                }
            if self.trace is not None and ops:
                sketch = self.latency.sketch(op_class)
                self.trace.counter(f"slo {op_class}", tick, {
                    "p99": sketch.p99,
                    "burn": window.burn_rate,
                })
        self._window_ops.clear()
        self._window_breaches.clear()
        row = {
            "t": tick,
            "classes": classes,
            "availability": self.availability(),
            "stranded": self.latency.stranded,
        }
        return row

    # -- export --------------------------------------------------------------------

    def to_jsonl(self) -> str:
        return "".join(json.dumps(row, sort_keys=True) + "\n"
                       for row in self.samples)

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())


__all__ = [
    "DEFAULT_LATENCY_TARGETS",
    "DEFAULT_SLO_INTERVAL",
    "SLO",
    "SLOStatus",
    "SLOTracker",
    "default_slos",
]
