"""Kernel-driven time-series sampling of cluster health.

:class:`ClusterSampler` arms a periodic probe on the global scheduler's
dedicated telemetry source (:meth:`GlobalScheduler.schedule_probe`) and,
at every tick, snapshots the cluster into one JSON-ready row:

* per-shard event-queue depth (total / max / the non-empty shards);
* replication lag -- primary log head minus each live follower's
  applied position, in records -- max, mean, and stale-store count;
* repair backlog: outstanding tasks plus the scheduler's cumulative
  dispatched / completed / gave-up / retry counters;
* read routing health: cumulative quorum reads, mean quorum depth,
  session fallbacks (and their per-read rate), read repairs;
* live-pool count and cumulative arrivals.

Rows accumulate in :attr:`samples` and export as JSONL
(:meth:`write_jsonl`); the same values feed gauges/histograms on the
shared metrics registry and, when a :class:`TraceRecorder` is attached,
Chrome counter events so lag and backlog render as area charts under
the op spans.

Probes are *pure observation*: they read simulation state and write
telemetry sinks, never schedule onto shards or mutate cluster state.
Combined with the kernel's probe bookkeeping (probes bypass the clock,
stats, fingerprint and trace), a sampled run is byte-identical to an
unsampled one.  The probe re-arms itself only while some non-telemetry
source still has pending work, so a drained simulation stays drained;
:meth:`ensure_armed` restarts the cadence when more load is added
later.
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.obs.registry import MetricsRegistry

#: Default probe cadence, in virtual time units.
DEFAULT_INTERVAL = 25.0

#: Replication-lag histogram bounds, in records behind the primary.
LAG_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0)


class ClusterSampler:
    """Periodic cluster-health probe over a ``ClusterSimulation``.

    Duck-typed over the harness (needs ``kernel``, ``cluster``,
    ``replicas``, ``repair``, ``membership``), so anything exposing that
    surface samples the same way.
    """

    def __init__(self, simulation, *, interval: float = DEFAULT_INTERVAL,
                 registry: Optional[MetricsRegistry] = None,
                 trace=None) -> None:
        if interval <= 0:
            raise ValueError("the sampling interval must be positive")
        self.simulation = simulation
        self.interval = float(interval)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace
        self.samples: List[dict] = []
        self._armed = False
        self._next_tick = 0.0
        registry = self.registry
        self._g_queue_total = registry.gauge(
            "cluster_queue_depth_total",
            "events pending across all shard simulators")
        self._g_queue_max = registry.gauge(
            "cluster_queue_depth_max", "deepest single shard event queue")
        self._g_lag_max = registry.gauge(
            "cluster_replication_lag_max",
            "records the most-lagging live follower is behind its primary")
        self._g_stale_stores = registry.gauge(
            "cluster_replication_stale_stores",
            "live follower stores behind their primary's log head")
        self._g_repair_backlog = registry.gauge(
            "cluster_repair_backlog", "repair tasks queued or scheduled")
        self._g_live_pools = registry.gauge(
            "cluster_live_pools", "pools with at least one alive node")
        self._h_lag = registry.histogram(
            "cluster_replication_lag_records",
            "per-store replication lag observed at each probe",
            buckets=LAG_BUCKETS)

    # -- arming --------------------------------------------------------------------

    def start(self) -> None:
        """Arm the first probe one interval from the current global time."""
        self.ensure_armed()

    def ensure_armed(self) -> None:
        """(Re)arm the probe cadence if it previously wound down.

        Called by the harness before each pump, so workloads added after
        an earlier drain keep getting sampled.
        """
        if self._armed:
            return
        kernel = self.simulation.kernel
        self._armed = True
        self._next_tick = kernel.now + self.interval
        kernel.schedule_probe(self._next_tick, self._probe)

    # -- probing --------------------------------------------------------------------

    def _probe(self) -> None:
        kernel = self.simulation.kernel
        tick = self._next_tick
        self.samples.append(self.sample(tick))
        if kernel.pending_work():
            self._next_tick = tick + self.interval
            kernel.schedule_probe(self._next_tick, self._probe)
        else:
            # The foreground drained: record this final row and wind down
            # rather than keeping an otherwise-idle simulation spinning.
            self._armed = False

    def sample(self, tick: float) -> dict:
        """One cluster-health row at virtual time ``tick``."""
        cluster = self.simulation.cluster
        router = cluster.router
        stats = router.stats

        by_shard = {}
        for key in sorted(router.shards):
            depth = router.shards[key].system.simulator.pending_events
            if depth:
                by_shard[key] = depth
        queue_total = sum(by_shard.values())
        queue_max = max(by_shard.values()) if by_shard else 0

        lags: List[int] = []
        replicas = self.simulation.replicas
        if replicas is not None:
            for key in sorted(replicas.groups):
                group = replicas.groups[key]
                head = len(group.log)
                for store in group.live_followers():
                    lag = head - len(store.applied)
                    lags.append(lag)
                    self._h_lag.observe(lag)
        lag_max = max(lags) if lags else 0
        lag_mean = sum(lags) / len(lags) if lags else 0.0
        stale = sum(1 for lag in lags if lag > 0)

        repair = self.simulation.repair
        backlog = repair.outstanding_repairs()

        membership = self.simulation.membership
        live_pools = sum(1 for pool in membership.pools
                         if membership.pool_alive(pool))

        routed = stats.routed_reads
        row = {
            "t": tick,
            "shards": len(router.shards),
            "queue_depth": {
                "total": queue_total,
                "max": queue_max,
                "by_shard": by_shard,
            },
            "replication_lag": {
                "max": lag_max,
                "mean": lag_mean,
                "stale_stores": stale,
                "stores": len(lags),
            },
            "repair": {
                "outstanding": backlog,
                "dispatched": repair.stats.dispatched,
                "completed": repair.stats.repairs_completed,
                "gave_up": repair.stats.gave_up,
                "retries": repair.stats.retries,
            },
            "reads": {
                "routed": routed,
                "quorum_reads": stats.quorum_reads,
                "mean_quorum_depth": _mean_depth(stats.quorum_depths),
                "session_fallbacks": stats.session_fallbacks,
                "fallback_rate": (stats.session_fallbacks / routed
                                  if routed else 0.0),
                "read_repairs": stats.read_repairs,
            },
            "pools_live": live_pools,
            "arrivals": stats.arrivals,
        }

        self._g_queue_total.set(queue_total)
        self._g_queue_max.set(queue_max)
        self._g_lag_max.set(lag_max)
        self._g_stale_stores.set(stale)
        self._g_repair_backlog.set(backlog)
        self._g_live_pools.set(live_pools)

        if self.trace is not None:
            self.trace.counter("queue depth", tick,
                               {"total": queue_total, "max": queue_max})
            self.trace.counter("replication lag", tick,
                               {"max": lag_max, "stale_stores": stale})
            self.trace.counter("repair backlog", tick,
                               {"outstanding": backlog,
                                "gave_up": repair.stats.gave_up})
        return row

    # -- export ---------------------------------------------------------------------

    def series(self, *path: str) -> List:
        """One field across all samples, e.g. ``series("replication_lag",
        "max")`` -- the shape the non-interference and acceptance tests
        assert on."""
        out = []
        for row in self.samples:
            value = row
            for key in path:
                value = value[key]
            out.append(value)
        return out

    def to_jsonl(self) -> str:
        return "".join(json.dumps(row, sort_keys=True) + "\n"
                       for row in self.samples)

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())


def _mean_depth(depths) -> float:
    total = sum(depth * count for depth, count in depths.items())
    counted = sum(depths.values())
    return total / counted if counted else 0.0


__all__ = ["ClusterSampler", "DEFAULT_INTERVAL", "LAG_BUCKETS"]
