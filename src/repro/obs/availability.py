"""Sampling availability monitoring: confidence, not a cluster scan.

Scanning every L2 slot of every shard each epoch is O(cluster) -- the
exact cost wall ROADMAP item 4 calls out.  This monitor borrows the
data-availability-sampling idea instead: the paper's layer-2 coded
fragments are natural *shares*, so a light probe samples ``k`` random
``(object, L2-fragment, pool)`` triples per epoch, verifies each
fragment's presence against the live pool state, and cross-checks every
hole against the repair scheduler's backlog (:meth:`pending_slots`) and
the membership's pool health.  A missing fragment the repair pipeline
already tracks, or one explained by a known-dead pool, is *protected*;
a hole nobody is going to fix is a **silent alarm** -- exactly the
silent under-replication a withheld repair produces.

The statistical claim is per object: a uniform sample of that object's
``n2`` fragment slots hits any one silently-missing slot with
probability at least ``1/n2``, so after ``s`` samples of the object the
monitor has detected a silent hole (if one exists) with probability at
least ``1 - (1 - 1/n2)^s``.

Sampling is additionally *weighted by repair-backlog age*: every slot
the repair scheduler has ever reported pending joins a watchlist
stamped with the epoch it was first seen, and each epoch spends up to
``backlog_priority`` of its sample budget probing the **oldest**
watchlist entries before drawing the rest uniformly.  A slot stays
watched until it is observed present again -- so a repair that is
withheld or gives up (leaving the backlog without fixing the hole)
keeps getting probed directly instead of waiting for a lucky uniform
draw, and the oldest holes are detected first.  The per-epoch budget is
unchanged and the uniform draws use the same RNG stream, so with an
empty backlog the monitor behaves identically to pure uniform
sampling.  :meth:`assessment` reports that bound per
object and its minimum across objects -- the confidence that *every*
object still has its full complement of fragments standing between it
and ``f2`` further failures.  O(samples) per epoch, flat in cluster
size; ``consistency.injection.inject_under_replication`` /
``inject_withheld_repair`` plus ``tests/obs/test_availability.py``
prove the alarm fires at the stated rate.

Like every probe in :mod:`repro.obs`, the monitor is pure observation:
it draws from its own seeded RNG inside telemetry probes only, so a
fixed-seed run is byte-identical with monitoring on or off.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import MetricsRegistry

#: Default sampling cadence, in virtual time units.
DEFAULT_AVAILABILITY_INTERVAL = 50.0

#: Default samples per epoch.
DEFAULT_SAMPLES_PER_EPOCH = 8

#: Default per-epoch budget reserved for the oldest backlog slots.
DEFAULT_BACKLOG_PRIORITY = 2

#: Sample classifications.
PRESENT = "present"
PROTECTED = "protected"        # missing, but the repair backlog covers it
POOL_DOWN = "pool-down"        # missing because the whole pool is dead
SILENT = "silent"              # missing, unprotected: the alarm condition


@dataclass
class AvailabilityAssessment:
    """The monitor's verdict over everything sampled so far."""

    epochs: int = 0
    samples_taken: int = 0
    fragments_missing: int = 0
    protected_misses: int = 0
    pool_down_misses: int = 0
    #: One row per silent hole observation: {t, key, l2_index, pool}.
    silent_alarms: List[dict] = field(default_factory=list)
    #: key -> 1 - (1 - 1/n2)^samples(key): the probability a silent hole
    #: on that object would have been caught by now.
    confidence_by_object: Dict[str, float] = field(default_factory=dict)
    #: The weakest per-object bound: confidence every object is whole.
    min_confidence: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.silent_alarms

    def describe(self) -> str:
        if not self.ok:
            holes = {(row["key"], row["l2_index"])
                     for row in self.silent_alarms}
            return (f"availability ALARM: {len(holes)} silent hole(s) in "
                    f"{len(self.silent_alarms)} sample(s)")
        return (f"availability ok "
                f"(min per-object detection confidence "
                f"{self.min_confidence:.3f} over {self.samples_taken} samples)")


class AvailabilityMonitor:
    """Periodic fragment-presence sampling over a ``ClusterSimulation``.

    Duck-typed over the harness (needs ``kernel``, ``cluster``,
    ``repair``, ``membership``); drives the same self-re-arming probe
    cadence as the sampler.
    """

    def __init__(self, simulation, *,
                 interval: float = DEFAULT_AVAILABILITY_INTERVAL,
                 samples_per_epoch: int = DEFAULT_SAMPLES_PER_EPOCH,
                 backlog_priority: int = DEFAULT_BACKLOG_PRIORITY,
                 seed: int = 0,
                 registry: Optional[MetricsRegistry] = None,
                 trace=None) -> None:
        if interval <= 0:
            raise ValueError("the sampling interval must be positive")
        if samples_per_epoch < 1:
            raise ValueError("at least one sample per epoch is required")
        if backlog_priority < 0:
            raise ValueError("backlog_priority cannot be negative")
        self.simulation = simulation
        self.interval = float(interval)
        self.samples_per_epoch = int(samples_per_epoch)
        self.backlog_priority = int(backlog_priority)
        #: (key, l2_index) -> virtual time the slot was first seen in the
        #: repair backlog.  Entries persist until observed present, so
        #: withheld/given-up repairs stay probed (oldest first).
        self._watchlist: Dict[Tuple[str, int], float] = {}
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace
        #: Probe-only RNG: seeded for reproducibility, never shared with
        #: the simulation, so sampling cannot perturb the event order.
        self._rng = random.Random(seed)
        self.epochs = 0
        #: key -> samples taken of that object.
        self.samples_by_object: Dict[str, int] = {}
        self.samples_taken = 0
        self.fragments_missing = 0
        self.protected_misses = 0
        self.pool_down_misses = 0
        self.silent_alarms: List[dict] = []
        self._armed = False
        self._next_tick = 0.0
        registry = self.registry
        self._c_samples = registry.counter(
            "availability_samples", "fragment-presence samples drawn")
        self._c_missing = registry.counter(
            "availability_missing_fragments",
            "sampled fragments found missing (any cause)")
        self._c_silent = registry.counter(
            "availability_silent_holes",
            "sampled fragments missing with no repair pending and the pool "
            "alive -- silent under-replication")
        self._g_confidence = registry.gauge(
            "availability_min_confidence",
            "weakest per-object silent-hole detection confidence")

    # -- arming / probing ----------------------------------------------------------

    def start(self) -> None:
        self.ensure_armed()

    def ensure_armed(self) -> None:
        """(Re)arm the sampling cadence if it previously wound down."""
        if self._armed:
            return
        kernel = self.simulation.kernel
        self._armed = True
        self._next_tick = kernel.now + self.interval
        kernel.schedule_probe(self._next_tick, self._probe)

    def _probe(self) -> None:
        kernel = self.simulation.kernel
        self.tick(self._next_tick)
        if kernel.pending_work():
            self._next_tick = self._next_tick + self.interval
            kernel.schedule_probe(self._next_tick, self._probe)
        else:
            self._armed = False

    # -- sampling -------------------------------------------------------------------

    def tick(self, at: Optional[float] = None) -> List[str]:
        """One epoch: draw ``samples_per_epoch`` triples and classify them.

        Exposed for tests and offline calibration -- calling it directly
        samples the cluster's current state without kernel involvement.
        """
        simulation = self.simulation
        router = simulation.cluster.router
        shards = router._shards
        keys = sorted(shards)
        if not keys:
            return []
        if at is None:
            at = simulation.kernel.now
        self.epochs += 1
        pending = simulation.repair.pending_slots()
        membership = simulation.membership
        pool_alive = {pool: membership.pool_alive(pool)
                      for pool in membership.pools}
        for slot in sorted(pending):
            if slot not in self._watchlist:
                self._watchlist[slot] = at
        outcomes: List[str] = []
        # Age-weighted pass: spend up to ``backlog_priority`` of the
        # budget on the oldest watched slots before drawing uniformly.
        targeted_budget = min(self.backlog_priority, self.samples_per_epoch)
        if self._watchlist and targeted_budget:
            ordered = sorted(self._watchlist.items(),
                             key=lambda item: (item[1], item[0]))
            for (key, index), _first_seen in ordered:
                if len(outcomes) >= targeted_budget:
                    break
                shard = shards.get(key)
                if shard is None or index >= len(shard.system.l2_servers):
                    # The shard migrated or shrank: nothing left to watch.
                    del self._watchlist[(key, index)]
                    continue
                outcome = self._classify(key, shard, index, pending,
                                         pool_alive, at)
                outcomes.append(outcome)
                self.samples_taken += 1
                self.samples_by_object[key] = \
                    self.samples_by_object.get(key, 0) + 1
                if outcome == PRESENT:
                    del self._watchlist[(key, index)]
        for _ in range(self.samples_per_epoch - len(outcomes)):
            key = keys[self._rng.randrange(len(keys))]
            shard = shards[key]
            servers = shard.system.l2_servers
            index = self._rng.randrange(len(servers))
            outcome = self._classify(key, shard, index, pending, pool_alive,
                                     at)
            outcomes.append(outcome)
            self.samples_taken += 1
            self.samples_by_object[key] = self.samples_by_object.get(key, 0) + 1
        self._c_samples.inc(len(outcomes))
        self._g_confidence.set(self.assessment().min_confidence)
        return outcomes

    def _classify(self, key: str, shard, index: int, pending, pool_alive,
                  at: float) -> str:
        if not shard.system.l2_servers[index].crashed:
            return PRESENT
        self.fragments_missing += 1
        self._c_missing.inc()
        if (key, index) in pending:
            self.protected_misses += 1
            return PROTECTED
        if not pool_alive.get(shard.pool, True):
            # The whole pool is down: a known outage (membership sees it,
            # failover/replica machinery owns it), not silent decay.
            self.pool_down_misses += 1
            return POOL_DOWN
        self.silent_alarms.append(
            {"t": at, "key": key, "l2_index": index, "pool": shard.pool})
        self._c_silent.inc()
        if self.trace is not None:
            self.trace.instant(
                f"availability-alarm {key}", at, cat="audit",
                args={"key": key, "l2_index": index, "pool": shard.pool})
        return SILENT

    # -- results -------------------------------------------------------------------

    def assessment(self) -> AvailabilityAssessment:
        confidence: Dict[str, float] = {}
        minimum = 1.0 if self.samples_by_object else 0.0
        router = self.simulation.cluster.router
        shards = router._shards
        for key, samples in sorted(self.samples_by_object.items()):
            shard = shards.get(key)
            slots = len(shard.system.l2_servers) if shard is not None else 1
            bound = 1.0 - (1.0 - 1.0 / slots) ** samples
            confidence[key] = bound
            if bound < minimum:
                minimum = bound
        return AvailabilityAssessment(
            epochs=self.epochs,
            samples_taken=self.samples_taken,
            fragments_missing=self.fragments_missing,
            protected_misses=self.protected_misses,
            pool_down_misses=self.pool_down_misses,
            silent_alarms=list(self.silent_alarms),
            confidence_by_object=confidence,
            min_confidence=minimum,
        )


__all__ = [
    "AvailabilityAssessment",
    "AvailabilityMonitor",
    "DEFAULT_AVAILABILITY_INTERVAL",
    "DEFAULT_BACKLOG_PRIORITY",
    "DEFAULT_SAMPLES_PER_EPOCH",
    "PRESENT",
    "PROTECTED",
    "POOL_DOWN",
    "SILENT",
]
