"""Critical-path extraction over per-operation phase spans.

An operation's trace is a root span plus a flat set of child phase
spans (see :mod:`repro.obs.trace` for the taxonomy).  This module turns
that shape into the two artefacts tail-latency analysis needs:

* a **critical path** -- the ordered sequence of phase segments that
  tile the operation's ``[begin, end]`` window, so every unit of
  end-to-end latency is attributed to exactly one phase.  Parallel
  quorum legs collapse to one ``quorum-wait`` segment (the merge waits
  for the *last* leg, so the slowest leg is the critical one), and any
  time no instrumented phase covers is ``queue-wait`` -- router
  batching, shard queueing, or the gap between a forward hop landing
  and the primary protocol picking the write up;
* an **attribution** -- "ops in this latency band spend X% of their
  time in phase Y", aggregated over many phase vectors.

Everything here is pure functions over plain data: no simulation
access, no clocks, no registry.  :class:`~repro.obs.latency.LatencyTracker`
feeds it live span calls; :func:`extract_ops` reconstructs the same
records offline from a recorded :class:`~repro.obs.trace.TraceRecorder`,
so post-mortem trace analysis and live decomposition agree by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: The canonical phase taxonomy (see README "Tail latency & SLOs").
PHASE_QUEUE = "queue-wait"
PHASE_FORWARD = "forward-hop"
PHASE_FREEZE = "freeze-wait"
PHASE_QUORUM = "quorum-wait"
PHASE_STORE_READ = "store-read"
PHASE_PROTOCOL = "protocol"
PHASE_FALLBACK = "fallback-reread"
PHASE_REPLICATION = "replication-apply"

PHASES: Tuple[str, ...] = (
    PHASE_QUEUE, PHASE_FORWARD, PHASE_FREEZE, PHASE_QUORUM,
    PHASE_STORE_READ, PHASE_PROTOCOL, PHASE_FALLBACK, PHASE_REPLICATION,
)

#: Child-span name prefix -> canonical phase.  Span names carry a pool
#: suffix (``quorum-leg pool-2``); the first token identifies the phase.
_CHILD_PHASES = {
    "forward-hop": PHASE_FORWARD,
    "freeze-wait": PHASE_FREEZE,
    "quorum-leg": PHASE_QUORUM,
    "store-read": PHASE_STORE_READ,
    "replication-apply": PHASE_REPLICATION,
}

#: The five operation classes sketches are kept for.
OP_CLASSES: Tuple[str, ...] = (
    "write", "forwarded-write", "protocol-read", "quorum-read",
    "follower-read",
)


def child_phase(name: str) -> Optional[str]:
    """The canonical phase of a child span name, or None for non-phase
    children (instant markers are handled by the caller)."""
    token = name.split(" ", 1)[0]
    if token.startswith("protocol-"):
        return PHASE_PROTOCOL
    return _CHILD_PHASES.get(token)


def classify_op(kind: str, phases_seen: Iterable[str]) -> str:
    """The operation class from its kind and the phases it passed through.

    A write that paid a forward hop is a *forwarded write*; a read is
    classed by how it was served (quorum fan-out beats a store read
    beats the primary protocol, matching the routing precedence)."""
    seen = set(phases_seen)
    if kind == "write":
        return "forwarded-write" if PHASE_FORWARD in seen else "write"
    if PHASE_QUORUM in seen:
        return "quorum-read"
    if PHASE_STORE_READ in seen:
        return "follower-read"
    return "protocol-read"


@dataclass(frozen=True)
class PhaseSegment:
    """One segment of an operation's critical path."""

    phase: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def collapse_parallel(intervals: Sequence[Tuple[str, float, float]]
                      ) -> List[Tuple[str, float, float]]:
    """Fold same-phase parallel intervals into one critical interval.

    Quorum legs (and any other fan-out phase) run concurrently; the
    merge fires when the *last* leg answers, so the interval that
    matters spans the earliest dispatch to the latest response."""
    folded: Dict[str, List[float]] = {}
    order: List[str] = []
    singles: List[Tuple[str, float, float]] = []
    for phase, start, end in intervals:
        if phase == PHASE_QUORUM:
            bounds = folded.get(phase)
            if bounds is None:
                folded[phase] = [start, end]
                order.append(phase)
            else:
                bounds[0] = min(bounds[0], start)
                bounds[1] = max(bounds[1], end)
        else:
            singles.append((phase, start, end))
    out = singles + [(phase, folded[phase][0], folded[phase][1])
                     for phase in order]
    out.sort(key=lambda iv: (iv[1], iv[2], iv[0]))
    return out


def critical_path(begin: float, end: float,
                  intervals: Sequence[Tuple[str, float, float]]
                  ) -> List[PhaseSegment]:
    """Tile ``[begin, end]`` with phase segments.

    Walks the (collapsed) intervals in start order; time covered by an
    instrumented phase is attributed to it, overlap goes to whichever
    phase reached the instant first, and every uncovered gap is
    ``queue-wait``.  The segments partition the window exactly, so
    their durations sum to the operation's end-to-end latency."""
    segments: List[PhaseSegment] = []
    cursor = begin
    for phase, start, stop in collapse_parallel(intervals):
        stop = min(stop, end)
        if stop <= cursor:
            continue
        start = max(start, cursor)
        if start > cursor:
            segments.append(PhaseSegment(PHASE_QUEUE, cursor, start))
        segments.append(PhaseSegment(phase, start, stop))
        cursor = stop
    if cursor < end:
        segments.append(PhaseSegment(PHASE_QUEUE, cursor, end))
    return segments


def phase_durations(segments: Iterable[PhaseSegment]) -> Dict[str, float]:
    """Total duration per phase (adjacent same-phase segments merge)."""
    out: Dict[str, float] = {}
    for segment in segments:
        out[segment.phase] = out.get(segment.phase, 0.0) + segment.duration
    return out


def attribute(phase_vectors: Iterable[Dict[str, float]]) -> Dict[str, float]:
    """Fraction of total time spent per phase across many operations.

    The aggregate answer to "ops in this band spend X% in phase Y";
    fractions sum to 1 whenever any time was recorded."""
    totals: Dict[str, float] = {}
    grand = 0.0
    for vector in phase_vectors:
        for phase, duration in vector.items():
            totals[phase] = totals.get(phase, 0.0) + duration
            grand += duration
    if grand <= 0.0:
        return {}
    return {phase: duration / grand
            for phase, duration in sorted(totals.items(),
                                          key=lambda kv: (-kv[1], kv[0]))}


def dominant(fractions: Dict[str, float]) -> Optional[Tuple[str, float]]:
    """The largest-share ``(phase, fraction)``, or None when empty."""
    if not fractions:
        return None
    return max(fractions.items(), key=lambda kv: (kv[1], kv[0]))


# -- offline reconstruction from a recorded trace --------------------------------------


@dataclass
class TracedOp:
    """One operation reconstructed from a :class:`TraceRecorder`."""

    handle: str
    kind: str
    key: str
    begin: float
    end: float
    #: (phase, start, end) in virtual time units, replication-apply
    #: included (it is not on the client path but is a tracked phase).
    intervals: List[Tuple[str, float, float]] = field(default_factory=list)
    #: Instant-marker names seen under the handle (``read-repair ...``,
    #: ``quorum-fallback``, ``session-fallback``).
    instants: List[str] = field(default_factory=list)

    @property
    def total(self) -> float:
        return self.end - self.begin

    @property
    def op_class(self) -> str:
        return classify_op(self.kind,
                           (phase for phase, _, _ in self.intervals))

    def client_path(self) -> List[PhaseSegment]:
        """The critical path of the *client-visible* window (the
        post-ack replication fan-out is excluded)."""
        fallback = any(name.startswith(("quorum-fallback",
                                        "session-fallback"))
                       for name in self.instants)
        intervals = []
        for phase, start, end in self.intervals:
            if phase == PHASE_REPLICATION:
                continue
            if phase == PHASE_PROTOCOL and fallback:
                phase = PHASE_FALLBACK
            intervals.append((phase, start, end))
        return critical_path(self.begin, self.end, intervals)


def extract_ops(trace) -> List[TracedOp]:
    """Reconstruct every completed operation's span tree from a
    :class:`~repro.obs.trace.TraceRecorder` (times back in virtual
    units, i.e. divided by the recorder's ``scale``)."""
    scale = float(getattr(trace, "scale", 1.0)) or 1.0
    ops: Dict[str, TracedOp] = {}
    open_children: Dict[Tuple[str, str], float] = {}
    ends: Dict[str, float] = {}
    for event in trace.events:
        phase_marker = event.get("ph")
        if phase_marker not in ("b", "e", "n"):
            continue
        args = event.get("args", {})
        parent = args.get("parent")
        ts = event.get("ts", 0.0) / scale
        name = event.get("name", "")
        if parent is None:
            # Root span events: ``kind key`` names under cat "op".
            if event.get("cat") != "op":
                continue
            handle = event["id"]
            if phase_marker == "b":
                kind, _, key = name.partition(" ")
                ops[handle] = TracedOp(handle=handle, kind=kind, key=key,
                                       begin=ts, end=ts)
            elif phase_marker == "e":
                ends[handle] = ts
            continue
        if phase_marker == "n":
            op = ops.get(parent)
            if op is not None:
                op.instants.append(name)
            continue
        if phase_marker == "b":
            open_children[(parent, name)] = ts
            continue
        start = open_children.pop((parent, name), None)
        op = ops.get(parent)
        if start is None or op is None:
            continue
        phase = child_phase(name)
        if phase is not None:
            op.intervals.append((phase, start, ts))
    completed: List[TracedOp] = []
    for handle, op in ops.items():
        end = ends.get(handle)
        if end is None:
            continue  # stranded: never responded, no latency to attribute
        op.end = end
        completed.append(op)
    return completed


__all__ = [
    "OP_CLASSES",
    "PHASES",
    "PHASE_FALLBACK",
    "PHASE_FORWARD",
    "PHASE_FREEZE",
    "PHASE_PROTOCOL",
    "PHASE_QUEUE",
    "PHASE_QUORUM",
    "PHASE_REPLICATION",
    "PHASE_STORE_READ",
    "PhaseSegment",
    "TracedOp",
    "attribute",
    "child_phase",
    "classify_op",
    "collapse_parallel",
    "critical_path",
    "dominant",
    "extract_ops",
    "phase_durations",
]
