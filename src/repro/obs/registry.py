"""The metrics registry: counters, gauges and histograms with labels.

One process-local registry holds every instrument of a run, so all
counters -- the router's batching/routing stats, the sampler's cluster
health gauges, benchmark-specific series -- export through **one path**
(:meth:`MetricsRegistry.collect` / :meth:`MetricsRegistry.to_dict`)
instead of one ad-hoc dataclass per subsystem.

Instruments are deliberately minimal so the hot path stays cheap:

* :class:`Counter` -- a monotonically increasing value (``inc``);
* :class:`Gauge` -- a value that goes both ways (``set`` / ``inc`` /
  ``dec`` / ``set_max``);
* :class:`Histogram` -- fixed upper-bound buckets plus count / sum /
  min / max (``observe``); no per-sample storage, O(log buckets) each.

Registering a name twice returns the *same* instrument as long as the
kind and label names match (so independent components can share a
series without coordination); a mismatch raises instead of silently
shadowing.  ``labels=(...)`` turns an instrument into a
:class:`LabeledFamily` whose children are keyed by label values --
``registry.counter("reads", labels=("pool",)).labels(pool="a").inc()``.

Everything here is observation-only bookkeeping: instruments never
schedule events, touch clocks, or otherwise feed back into the
simulation, which is what keeps telemetry-on and telemetry-off runs
byte-identical (see ``tests/sim/test_telemetry_noninterference.py``).
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default histogram upper bounds, in virtual time units.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)


class Counter:
    """A monotonically increasing counter."""

    kind = "counter"
    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} can only go up")
        self._value += amount

    def _set(self, value) -> None:
        """Overwrite the value -- reserved for thin attribute-view bridges
        (e.g. tests seeding a RouterStats snapshot), never the hot path."""
        self._value = value

    @property
    def value(self):
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self._value})"


class Gauge:
    """A value that can go up and down (queue depths, lag, live pools)."""

    kind = "gauge"
    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0

    def set(self, value) -> None:
        self._value = value

    def inc(self, amount=1) -> None:
        self._value += amount

    def dec(self, amount=1) -> None:
        self._value -= amount

    def set_max(self, value) -> None:
        """Ratchet: keep the maximum of the current and the given value."""
        if value > self._value:
            self._value = value

    _set = set  # the thin-view bridge hook, uniform across instruments

    @property
    def value(self):
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, value={self._value})"


class Histogram:
    """Fixed-bucket histogram: per-bucket counts plus count/sum/min/max.

    No per-sample storage -- ``observe`` is a bisect into the bound list
    -- so it is safe on the hot path and in long samplers alike.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "_bounds", "_counts", "count", "sum",
                 "_minimum", "_maximum")

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(set(float(b) for b in buckets)))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.name = name
        self.help = help
        self._bounds = bounds
        #: One count per bound, plus the overflow (+inf) bucket.
        self._counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self._minimum: Optional[float] = None
        self._maximum: Optional[float] = None

    def observe(self, value) -> None:
        value = float(value)
        self._counts[bisect.bisect_left(self._bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self._minimum is None or value < self._minimum:
            self._minimum = value
        if self._maximum is None or value > self._maximum:
            self._maximum = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def minimum(self) -> float:
        return 0.0 if self._minimum is None else self._minimum

    @property
    def maximum(self) -> float:
        return 0.0 if self._maximum is None else self._maximum

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative (upper_bound, count) pairs; the last bound is +inf."""
        cumulative = 0
        out: List[Tuple[float, int]] = []
        for bound, count in zip(self._bounds + (float("inf"),), self._counts):
            cumulative += count
            out.append((bound, cumulative))
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "buckets": {("+inf" if bound == float("inf") else bound): count
                        for bound, count in self.bucket_counts()},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram({self.name!r}, count={self.count}, "
                f"mean={self.mean:.2f})")


class LabeledFamily:
    """A set of same-named instruments keyed by label values.

    Children are created lazily on first :meth:`labels` access, in a
    deterministic dict keyed by the label-value tuple, so iteration (and
    therefore export) order is the order of first observation.
    """

    def __init__(self, name: str, help: str, label_names: Tuple[str, ...],
                 child_class) -> None:
        if not label_names:
            raise ValueError("a labeled family needs at least one label name")
        self.name = name
        self.help = help
        self.label_names = label_names
        self._child_class = child_class
        self._children: Dict[Tuple, object] = {}

    @property
    def kind(self) -> str:
        return self._child_class.kind

    def labels(self, **labelvalues):
        """The child instrument for one label-value combination."""
        if set(labelvalues) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(labelvalues[name] for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._child_class(self.name, self.help)
            self._children[key] = child
        return child

    def items(self) -> List[Tuple[Tuple, object]]:
        return list(self._children.items())

    def as_dict(self) -> Dict:
        """Label-value -> value view (single-label keys are unwrapped)."""
        if len(self.label_names) == 1:
            return {key[0]: child.value for key, child in self._children.items()}
        return {key: child.value for key, child in self._children.items()}

    def set_values(self, mapping: Dict) -> None:
        """Replace the family's children from a plain mapping.

        The thin-view bridge hook (single-label families only): lets code
        that used to assign a whole dict onto an attribute keep working
        against the registry-backed view.
        """
        if len(self.label_names) != 1:
            raise ValueError("set_values only supports single-label families")
        self._children.clear()
        label = self.label_names[0]
        for key, value in mapping.items():
            self.labels(**{label: key})._set(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LabeledFamily({self.name!r}, labels={self.label_names}, "
                f"children={len(self._children)})")


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """The single export path for every instrument of one run."""

    def __init__(self) -> None:
        #: name -> instrument or family, in registration order.
        self._metrics: Dict[str, object] = {}
        #: name -> (kind, label names) shape recorded at registration.
        self._shapes: Dict[str, Tuple[str, Tuple[str, ...]]] = {}

    # -- registration ------------------------------------------------------------

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()):
        return self._register(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()):
        return self._register(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        existing = self._lookup(name, "histogram", ())
        if existing is not None:
            return existing
        metric = Histogram(name, help, buckets=buckets)
        self._metrics[name] = metric
        self._shapes[name] = ("histogram", ())
        return metric

    def quantile_sketch(self, name: str, help: str = "",
                        labels: Sequence[str] = (),
                        relative_error: Optional[float] = None):
        """A mergeable log-bucketed quantile sketch (p50/p90/p99/p999
        within a bounded relative error) -- see
        :class:`repro.obs.latency.QuantileSketch`."""
        # Imported lazily: latency.py builds on this registry.
        from repro.obs.latency import (DEFAULT_RELATIVE_ERROR, QuantileSketch,
                                       SketchFactory)
        if relative_error is None:
            relative_error = DEFAULT_RELATIVE_ERROR
        label_names = tuple(labels)
        existing = self._lookup(name, "sketch", label_names)
        if existing is not None:
            return existing
        if label_names:
            metric = LabeledFamily(name, help, label_names,
                                   SketchFactory(relative_error))
        else:
            metric = QuantileSketch(name, help, relative_error=relative_error)
        self._metrics[name] = metric
        self._shapes[name] = ("sketch", label_names)
        return metric

    def _register(self, name: str, kind: str, help: str,
                  labels: Sequence[str]):
        label_names = tuple(labels)
        existing = self._lookup(name, kind, label_names)
        if existing is not None:
            return existing
        child_class = _KINDS[kind]
        if label_names:
            metric = LabeledFamily(name, help, label_names, child_class)
        else:
            metric = child_class(name, help)
        self._metrics[name] = metric
        self._shapes[name] = (kind, label_names)
        return metric

    def _lookup(self, name: str, kind: str, label_names: Tuple[str, ...]):
        """The already-registered instrument, or None; shape mismatches raise."""
        metric = self._metrics.get(name)
        if metric is None:
            return None
        shape = self._shapes[name]
        if shape != (kind, label_names):
            raise ValueError(
                f"metric {name!r} is already registered as "
                f"{shape[0]}{shape[1] or ''}; cannot re-register as "
                f"{kind}{label_names or ''}"
            )
        return metric

    # -- export -----------------------------------------------------------------

    def get(self, name: str):
        """The instrument (or family) behind ``name``, or None."""
        return self._metrics.get(name)

    def metrics(self) -> Dict[str, object]:
        return dict(self._metrics)

    def collect(self) -> List[Tuple[str, Dict[str, object], object]]:
        """Flat ``(name, labels, value)`` samples across every instrument.

        Histograms expand into ``<name>_count`` / ``<name>_sum`` plus one
        cumulative ``<name>_bucket`` sample per bound; quantile sketches
        into ``<name>_count`` plus one ``<name>_p50/..p999`` sample each
        -- the conventional flat representation, so one exporter handles
        every kind.
        """
        samples: List[Tuple[str, Dict[str, object], object]] = []
        for name, metric in self._metrics.items():
            sketch_kind = self._shapes[name][0] == "sketch"
            if isinstance(metric, LabeledFamily):
                for key, child in metric.items():
                    labels = dict(zip(metric.label_names, key))
                    if sketch_kind:
                        samples.extend(_sketch_samples(name, labels, child))
                    else:
                        samples.append((name, labels, child.value))
            elif sketch_kind:
                samples.extend(_sketch_samples(name, {}, metric))
            elif isinstance(metric, Histogram):
                samples.append((f"{name}_count", {}, metric.count))
                samples.append((f"{name}_sum", {}, metric.sum))
                for bound, count in metric.bucket_counts():
                    le = "+inf" if bound == float("inf") else bound
                    samples.append((f"{name}_bucket", {"le": le}, count))
            else:
                samples.append((name, {}, metric.value))
        return samples

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready snapshot: scalar, per-label dict, or histogram dict."""
        out: Dict[str, object] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, LabeledFamily):
                out[name] = metric.as_dict()
            elif isinstance(metric, Histogram):
                out[name] = metric.to_dict()
            else:
                out[name] = metric.value
        return out

    def render(self, nonzero_only: bool = True) -> str:
        """A terminal-friendly ``name{labels} value`` dump, sorted by name."""
        lines: List[str] = []
        for name, labels, value in sorted(self.collect(),
                                          key=lambda s: (s[0], str(s[1]))):
            if nonzero_only and not value:
                continue
            if labels:
                rendered = ",".join(f"{k}={v}" for k, v in labels.items())
                lines.append(f"{name}{{{rendered}}} {value}")
            else:
                lines.append(f"{name} {value}")
        return "\n".join(lines)


def _sketch_samples(name: str, labels: Dict[str, object], sketch
                    ) -> List[Tuple[str, Dict[str, object], object]]:
    """Flat samples for one quantile sketch (count + each percentile)."""
    samples = [(f"{name}_count", dict(labels), sketch.count)]
    for quantile_name in ("p50", "p90", "p99", "p999"):
        samples.append((f"{name}_{quantile_name}", dict(labels),
                        getattr(sketch, quantile_name)))
    return samples


def registry_or_default(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """The given registry, or a fresh private one (stats always have a home)."""
    return registry if registry is not None else MetricsRegistry()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LabeledFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "registry_or_default",
]
