"""Live session auditing: the streaming auditor as a kernel probe.

:class:`LiveAuditProbe` runs the
:class:`~repro.consistency.streaming.StreamingSessionAuditor` *during*
the simulation, on the kernel's dedicated telemetry source -- the same
non-perturbing machinery as :class:`~repro.obs.sampler.ClusterSampler`.
The feed is push-based and O(1) per operation: the router's completion
observers buffer every finished operation (primary-shard completions in
raw shard-local form, replica serves already merged), and each probe
tick drains the buffer into the auditor, translates shard-local times
onto the global clock, computes the per-key **watermarks**, and lets
the auditor check and retire state.

The watermark for a key is the earliest global invocation time a
not-yet-delivered operation on that key could still carry::

    W(key) = min(kernel.now,
                 min invocation time of in-flight primary ops on key,
                 min invocation time of in-flight replica reads on key)

``kernel.now`` bounds operations not yet invoked: arrivals, deferred
replica dispatches and forwarded writes all record their invocation at
(or after) the kernel event that delivers them, and the router's flush
only ever shifts a batch's nominal times *forward* onto the shard
clock.  Operations already invoked but still in flight are the two
explicit floors: the recorder's pending primary protocol ops and the
replica coordinator's in-flight reads (``pending_read_invocations``,
which drops reads stranded by a pool crash -- they never respond, so
they constrain nothing).  Anything the probe has not yet drained
satisfies the auditor's watermark contract by the kernel's pump order:
events execute in global-time order, so an undelivered completion
carries a response time at or after the probe's tick.

Violations surface **at sim time**: a detection increments the
``audit_violations{guarantee=...}`` counter family, drops an instant on
the Perfetto timeline, and appends a JSONL row -- all before the run
finishes.  Probes never mutate the cluster, so fixed-seed runs stay
byte-identical with live audit on or off (the CI gate
``examples/live_audit.py`` enforces exactly this).
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.consistency.history import Operation
from repro.consistency.sessions import SessionAuditReport
from repro.consistency.streaming import StreamingSessionAuditor
from repro.obs.registry import MetricsRegistry

#: Default audit cadence, in virtual time units.
DEFAULT_AUDIT_INTERVAL = 25.0


class LiveAuditProbe:
    """Online session auditing over a ``ClusterSimulation``.

    Duck-typed over the harness (needs ``kernel``, ``cluster``,
    ``replicas``); register before the first shard exists -- the
    constructor subscribes to the router's operation observers, and
    shards install their completion hook at build time.
    """

    def __init__(self, simulation, *, interval: float = DEFAULT_AUDIT_INTERVAL,
                 registry: Optional[MetricsRegistry] = None,
                 trace=None) -> None:
        if interval <= 0:
            raise ValueError("the audit interval must be positive")
        if simulation.kernel is None:
            raise RuntimeError("live auditing needs a kernel-driven cluster "
                               "(shard-local clocks are mutually incomparable)")
        self.simulation = simulation
        self.interval = float(interval)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace
        self.auditor = StreamingSessionAuditor()
        self.auditor.on_violation = self._on_violation
        #: JSONL rows, one per detected violation.
        self.rows: List[dict] = []
        #: Raw completion feed, drained at each probe tick:
        #: ``(shard, result)`` for primary completions (shard-local
        #: times), ``(None, operation)`` for replica serves (merged).
        self._buffer: List[tuple] = []
        self._armed = False
        self._next_tick = 0.0
        registry = self.registry
        self._c_violations = registry.counter(
            "audit_violations",
            "session-guarantee violations detected by the live auditor",
            labels=("guarantee",))
        self._g_operations = registry.gauge(
            "audit_operations_checked", "operations the live auditor admitted")
        self._g_pairs = registry.gauge(
            "audit_pairs_checked", "witness pairs the live auditor checked")
        self._g_unsessioned = registry.gauge(
            "audit_unsessioned_skipped",
            "operations skipped for carrying no session identity")
        self._g_unlinearized = registry.gauge(
            "audit_unlinearized_skipped",
            "sessioned operations skipped as incomplete or untagged")
        self._g_groups = registry.gauge(
            "audit_tracked_groups", "(session, key) groups held by the auditor")
        self._g_entries = registry.gauge(
            "audit_tracked_entries",
            "per-operation audit state not yet retired by the watermark")
        self._g_entries_peak = registry.gauge(
            "audit_tracked_entries_peak",
            "high-water mark of per-operation audit state (retention bound)")
        router = simulation.cluster.router
        router.operation_observers.append(self._on_completion)

    # -- the feed ---------------------------------------------------------------

    def _on_completion(self, shard, payload) -> None:
        """Router observer: buffer one completion (O(1), no translation)."""
        self._buffer.append((shard, payload))

    def _drain(self) -> None:
        """Translate and consume everything the feed buffered."""
        if not self._buffer:
            return
        router = self.simulation.cluster.router
        internal = router._internal_ops
        sessions = router._op_sessions
        buffered, self._buffer = self._buffer, []
        for shard, payload in buffered:
            if shard is None:
                # Replica serve: already merged-form, global-clock,
                # session attached.
                self.auditor.consume(payload)
                continue
            object_id = shard.object_id
            result = payload
            if (object_id, result.op_id) in internal:
                continue  # migration copy reads are not client traffic
            offset = router._offset(shard)
            self.auditor.consume(Operation(
                op_id=f"{object_id}/{result.op_id}",
                client_id=f"{object_id}/{result.client_id}",
                kind=result.kind, object_id=object_id, value=result.value,
                invoked_at=result.invoked_at + offset,
                responded_at=result.responded_at + offset,
                tag=result.tag,
                session=sessions.get((object_id, result.op_id)),
            ))

    # -- watermarks ---------------------------------------------------------------

    def _watermarks(self, keys) -> dict:
        simulation = self.simulation
        router = simulation.cluster.router
        kernel = simulation.kernel
        replica_floor: dict = {}
        replicas = simulation.replicas
        if replicas is not None:
            for key, invoked in replicas.pending_read_invocations():
                current = replica_floor.get(key)
                if current is None or invoked < current:
                    replica_floor[key] = invoked
        marks = {}
        shards = router._shards
        for key in keys:
            mark = kernel.now
            shard = shards.get(key)
            if shard is not None:
                offset = router._offset(shard)
                for op in shard.system.recorder.pending_operations():
                    invoked = op.invoked_at + offset
                    if invoked < mark:
                        mark = invoked
            floor = replica_floor.get(key)
            if floor is not None and floor < mark:
                mark = floor
            marks[key] = mark
        return marks

    # -- arming / probing ----------------------------------------------------------

    def start(self) -> None:
        self.ensure_armed()

    def ensure_armed(self) -> None:
        """(Re)arm the audit cadence if it previously wound down."""
        if self._armed:
            return
        kernel = self.simulation.kernel
        self._armed = True
        self._next_tick = kernel.now + self.interval
        kernel.schedule_probe(self._next_tick, self._probe)

    def _probe(self) -> None:
        kernel = self.simulation.kernel
        self.tick()
        if kernel.pending_work():
            self._next_tick = self._next_tick + self.interval
            kernel.schedule_probe(self._next_tick, self._probe)
        else:
            # The foreground drained.  The kernel still runs a probe
            # scheduled beyond the last foreground event, so this final
            # tick has already drained and checked every completion.
            self._armed = False

    def tick(self) -> None:
        """One audit step: drain the feed, advance watermarks, export."""
        auditor = self.auditor
        self._drain()
        dirty = auditor.dirty_keys()
        if dirty:
            auditor.advance(self._watermarks(dirty))
        self._g_operations.set(auditor.operations_checked)
        self._g_pairs.set(auditor.pairs_checked)
        self._g_unsessioned.set(auditor.unsessioned_skipped)
        self._g_unlinearized.set(auditor.unlinearized_skipped)
        self._g_groups.set(auditor.tracked_groups)
        self._g_entries.set(auditor.tracked_entries)
        self._g_entries_peak.set(auditor.peak_tracked_entries)

    # -- violations ----------------------------------------------------------------

    def _on_violation(self, violation, op) -> None:
        now = self.simulation.kernel.now
        self._c_violations.labels(guarantee=violation.guarantee).inc()
        self.rows.append({
            "t": now,
            "guarantee": violation.guarantee,
            "session": violation.session,
            "key": violation.key,
            "operations": list(violation.operations),
            "description": violation.description,
        })
        if self.trace is not None:
            self.trace.instant(
                f"audit-violation {violation.guarantee}", now, cat="audit",
                args={"session": violation.session, "key": violation.key,
                      "operations": list(violation.operations)})

    # -- results -------------------------------------------------------------------

    def report(self) -> SessionAuditReport:
        """The audit verdict now, batch-equivalent at quiescence.

        Drains any buffered completions, force-checks operations still
        waiting on their watermark (no more completions can precede them
        once the run has drained), and folds in the skip counts of
        operations that never completed -- the batch auditor sees those
        in the merged history; the completion feed, by construction,
        does not.
        """
        self._drain()
        self.auditor.finalize()
        unsessioned, unlinearized = self._incomplete_skips()
        return self.auditor.report(extra_unsessioned=unsessioned,
                                   extra_unlinearized=unlinearized)

    def _incomplete_skips(self) -> tuple:
        """Skip counts of operations with no response: the batch auditor's
        eligibility rules applied to everything the feed never delivers."""
        router = self.simulation.cluster.router
        internal = router._internal_ops
        sessions = router._op_sessions
        unsessioned = 0
        unlinearized = 0

        def count(object_id: str, op_id: str, session) -> None:
            nonlocal unsessioned, unlinearized
            if (object_id, op_id) in internal:
                return
            if session is None:
                unsessioned += 1
            else:
                unlinearized += 1

        shards = router._shards
        for key in sorted(shards):
            shard = shards[key]
            for history in shard.retired_histories:
                for op in history:
                    if not op.is_complete:
                        count(op.object_id, op.op_id,
                              sessions.get((op.object_id, op.op_id)))
            for op in shard.system.recorder.pending_operations():
                count(op.object_id, op.op_id,
                      sessions.get((op.object_id, op.op_id)))
        replicas = self.simulation.replicas
        if replicas is not None:
            for history in replicas.histories():
                for op in history:
                    if not op.is_complete:
                        count(op.object_id, op.op_id, op.session)
        return unsessioned, unlinearized

    # -- export --------------------------------------------------------------------

    def to_jsonl(self) -> str:
        return "".join(json.dumps(row, sort_keys=True) + "\n"
                       for row in self.rows)

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())


__all__ = ["LiveAuditProbe", "DEFAULT_AUDIT_INTERVAL"]
