"""Streaming tail-latency observability: quantile sketches + decomposition.

Two pieces live here:

* :class:`QuantileSketch` -- a deterministic, mergeable, log-bucketed
  quantile sketch (DDSketch-style): values land in geometric buckets
  ``(gamma^(i-1), gamma^i]`` with ``gamma = (1+a)/(1-a)``, so any
  reported quantile is within relative error ``a`` of the true order
  statistic, memory is bounded by the value *range* (not the sample
  count), and two sketches over disjoint streams merge by adding bucket
  counts.  Registered as a first-class registry instrument via
  :meth:`MetricsRegistry.quantile_sketch`, next to :class:`Histogram`.

* :class:`LatencyTracker` -- the live consumer of the router/replica
  span stream.  It implements the same sink surface as
  :class:`~repro.obs.trace.TraceRecorder` (``begin_op`` / ``end_op`` /
  ``child_span`` / ``child_instant``), so the cluster layers emit one
  stream and :class:`~repro.obs.telemetry.Telemetry` fans it out to the
  trace recorder and/or this tracker (:class:`SpanSinkFanout`).  Every
  completed operation is classified (write / forwarded write / protocol
  read / quorum read / follower read), decomposed into the phase
  taxonomy of :mod:`repro.obs.critical_path`, and folded into per-class
  and per-(class, phase) sketches plus a compact per-op record used for
  percentile-band attribution ("ops in the p99+ band spend X% in phase
  Y").

Like everything in :mod:`repro.obs` the tracker is pure observation:
it is fed by the same calls that feed the trace recorder (which the
telemetry-on/off byte-identity gate already covers), holds only its
own dicts, and never touches simulators, clocks or protocol state --
``examples/latency_tour.py`` CI-gates fingerprint identity with
latency tracking on vs off.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.critical_path import (
    OP_CLASSES,
    PHASE_FALLBACK,
    PHASE_FORWARD,
    PHASE_PROTOCOL,
    PHASE_QUORUM,
    PHASE_REPLICATION,
    PHASE_STORE_READ,
    child_phase,
    classify_op,
    critical_path,
    phase_durations,
)
from repro.obs.registry import MetricsRegistry

#: Default sketch accuracy: quantile estimates within 1% relative error.
DEFAULT_RELATIVE_ERROR = 0.01

#: The percentiles every export surface reports.
REPORTED_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999),
)

#: Latency bands the report's phase breakdown uses: ``[lo, hi)`` in
#: quantile space, ``None`` meaning unbounded above.
BANDS: Tuple[Tuple[str, float, Optional[float]], ...] = (
    ("p50-", 0.0, 0.50),
    ("p50-p90", 0.50, 0.90),
    ("p90-p99", 0.90, 0.99),
    ("p99+", 0.99, None),
)


class QuantileSketch:
    """A mergeable log-bucketed quantile sketch with bounded error.

    Deterministic by construction: bucket indices are a pure function of
    the value, quantile queries walk the buckets in sorted index order,
    and merging is commutative/associative integer addition -- the same
    samples give the same answers in any ingestion or merge order.
    """

    kind = "sketch"
    __slots__ = ("name", "help", "relative_error", "_gamma", "_log_gamma",
                 "_buckets", "_zero", "count", "sum", "_minimum", "_maximum")

    def __init__(self, name: str, help: str = "",
                 relative_error: float = DEFAULT_RELATIVE_ERROR) -> None:
        if not 0.0 < relative_error < 1.0:
            raise ValueError("relative_error must be in (0, 1)")
        self.name = name
        self.help = help
        self.relative_error = float(relative_error)
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self._gamma)
        #: bucket index -> count; index i covers (gamma^(i-1), gamma^i].
        self._buckets: Dict[int, int] = {}
        #: Exact count of non-positive observations (durations of 0).
        self._zero = 0
        self.count = 0
        self.sum = 0.0
        self._minimum: Optional[float] = None
        self._maximum: Optional[float] = None

    # -- ingestion ---------------------------------------------------------------

    def observe(self, value) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if self._minimum is None or value < self._minimum:
            self._minimum = value
        if self._maximum is None or value > self._maximum:
            self._maximum = value
        if value <= 0.0:
            self._zero += 1
            return
        index = int(math.ceil(math.log(value) / self._log_gamma))
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (in place); returns self."""
        if abs(other.relative_error - self.relative_error) > 1e-12:
            raise ValueError(
                f"cannot merge sketches with different accuracy "
                f"({self.relative_error} vs {other.relative_error})"
            )
        self.count += other.count
        self.sum += other.sum
        self._zero += other._zero
        for index in sorted(other._buckets):
            self._buckets[index] = (self._buckets.get(index, 0)
                                    + other._buckets[index])
        for bound in (other._minimum, other._maximum):
            if bound is None:
                continue
            if self._minimum is None or bound < self._minimum:
                self._minimum = bound
            if self._maximum is None or bound > self._maximum:
                self._maximum = bound
        return self

    def copy(self) -> "QuantileSketch":
        out = QuantileSketch(self.name, self.help,
                             relative_error=self.relative_error)
        out.merge(self)
        return out

    # -- queries -----------------------------------------------------------------

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` (within the relative error bound)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = int(math.floor(q * (self.count - 1)))
        if rank < self._zero:
            return 0.0
        cumulative = self._zero
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative > rank:
                # The bucket's midpoint in relative terms: within
                # ``relative_error`` of every value the bucket covers.
                return 2.0 * self._gamma ** index / (self._gamma + 1.0)
        return self._maximum if self._maximum is not None else 0.0

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        return self.quantile(0.90)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def p999(self) -> float:
        return self.quantile(0.999)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def minimum(self) -> float:
        return 0.0 if self._minimum is None else self._minimum

    @property
    def maximum(self) -> float:
        return 0.0 if self._maximum is None else self._maximum

    @property
    def bucket_count(self) -> int:
        """Occupied buckets -- bounded by the value range, not ``count``."""
        return len(self._buckets) + (1 if self._zero else 0)

    @property
    def value(self) -> Dict[str, object]:
        """The registry export view (mirrors :meth:`to_dict`)."""
        return self.to_dict()

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "relative_error": self.relative_error,
        }
        for label, q in REPORTED_QUANTILES:
            out[label] = self.quantile(q)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"QuantileSketch({self.name!r}, count={self.count}, "
                f"p99={self.p99:.2f})")


class SketchFactory:
    """A child factory so labeled families can carry a non-default
    accuracy (``LabeledFamily`` instantiates children as
    ``child_class(name, help)``)."""

    kind = "sketch"

    def __init__(self, relative_error: float = DEFAULT_RELATIVE_ERROR) -> None:
        self.relative_error = float(relative_error)

    def __call__(self, name: str, help: str = "") -> QuantileSketch:
        return QuantileSketch(name, help, relative_error=self.relative_error)


# -- the live tracker ------------------------------------------------------------------


class _OpenOp:
    """In-flight bookkeeping for one operation's span stream."""

    __slots__ = ("kind", "key", "begin", "intervals", "fallback",
                 "read_repairs")

    def __init__(self, kind: str, key: str, begin: float) -> None:
        self.kind = kind
        self.key = key
        self.begin = begin
        self.intervals: List[Tuple[str, float, float]] = []
        self.fallback = False
        self.read_repairs = 0


@dataclass(frozen=True)
class OpLatency:
    """One completed operation's latency decomposition."""

    handle: str
    op_class: str
    key: str
    begin: float
    end: float
    #: phase -> duration; partitions ``[begin, end]`` exactly.
    phases: Dict[str, float]
    read_repairs: int = 0

    @property
    def total(self) -> float:
        return self.end - self.begin


@dataclass
class PhaseAttribution:
    """Aggregated "where did the time go" for one class and band."""

    op_class: str
    band: str
    ops: int
    threshold: float
    #: phase -> fraction of the band's total time (sums to 1).
    fractions: Dict[str, float]

    @property
    def dominant_phase(self) -> Optional[str]:
        if not self.fractions:
            return None
        return max(self.fractions.items(), key=lambda kv: (kv[1], kv[0]))[0]


class LatencyTracker:
    """Per-op-class / per-phase latency sketches fed by the span stream.

    Presents the :class:`TraceRecorder` sink surface so the router and
    replica layers need no second instrumentation path; the telemetry
    facade hands them a :class:`SpanSinkFanout` over both sinks.
    """

    def __init__(self, *, registry: Optional[MetricsRegistry] = None,
                 relative_error: float = DEFAULT_RELATIVE_ERROR) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.relative_error = float(relative_error)
        self._open: Dict[str, _OpenOp] = {}
        self.records: List[OpLatency] = []
        #: Operations that never responded (store crash / stranded quorum).
        self.stranded = 0
        #: kind ("write"/"read") -> invoked / completed counts, for the
        #: SLO layer's availability accounting.
        self.invoked_by_kind: Dict[str, int] = {"write": 0, "read": 0}
        self.completed_by_kind: Dict[str, int] = {"write": 0, "read": 0}
        registry = self.registry
        self._class_sketches = registry.quantile_sketch(
            "op_latency", "end-to-end latency per operation class",
            labels=("op_class",), relative_error=relative_error)
        self._phase_sketches = registry.quantile_sketch(
            "op_phase_latency",
            "per-phase time on the operation's critical path",
            labels=("op_class", "phase"), relative_error=relative_error)
        self._apply_sketch = registry.quantile_sketch(
            "replication_apply_latency",
            "commit -> follower apply (post-ack, off the client path)",
            relative_error=relative_error)

    # -- the TraceRecorder sink surface -------------------------------------------

    def begin_op(self, handle: str, kind: str, key: str, time: float,
                 args: Optional[dict] = None) -> None:
        self._open[handle] = _OpenOp(kind, key, float(time))
        if kind in self.invoked_by_kind:
            self.invoked_by_kind[kind] += 1

    def child_span(self, handle: str, name: str, cat: str, start: float,
                   end: float, args: Optional[dict] = None) -> None:
        phase = child_phase(name)
        if phase is None:
            return
        if phase == PHASE_REPLICATION:
            # Replication fans out after the ack: the root op is usually
            # closed by the time a record lands on a follower.  Tracked
            # as its own distribution, never on the client path.
            self._apply_sketch.observe(float(end) - float(start))
            return
        op = self._open.get(handle)
        if op is not None:
            op.intervals.append((phase, float(start), float(end)))

    def child_instant(self, handle: str, name: str, cat: str, time: float,
                      args: Optional[dict] = None) -> None:
        op = self._open.get(handle)
        if op is None:
            return
        token = name.split(" ", 1)[0]
        if token in ("quorum-fallback", "session-fallback"):
            op.fallback = True
        elif token == "read-repair":
            op.read_repairs += 1
        elif token in ("store-crashed", "quorum-stranded"):
            # The operation will never respond; drop it so the open map
            # drains and the stranded count tells the truth.
            del self._open[handle]
            self.stranded += 1

    def end_op(self, handle: str, time: float,
               args: Optional[dict] = None) -> None:
        op = self._open.pop(handle, None)
        if op is None:
            return
        end = float(time)
        intervals = []
        for phase, start, stop in op.intervals:
            if phase == PHASE_PROTOCOL and op.fallback:
                phase = PHASE_FALLBACK
            intervals.append((phase, start, stop))
        op_class = classify_op(op.kind,
                               (phase for phase, _, _ in intervals))
        phases = phase_durations(critical_path(op.begin, end, intervals))
        record = OpLatency(handle=handle, op_class=op_class, key=op.key,
                           begin=op.begin, end=end, phases=phases,
                           read_repairs=op.read_repairs)
        self.records.append(record)
        if op.kind in self.completed_by_kind:
            self.completed_by_kind[op.kind] += 1
        self._class_sketches.labels(op_class=op_class).observe(record.total)
        for phase in sorted(phases):
            self._phase_sketches.labels(
                op_class=op_class, phase=phase).observe(phases[phase])

    # -- queries -------------------------------------------------------------------

    def sketch(self, op_class: str) -> QuantileSketch:
        """The end-to-end latency sketch of one operation class."""
        return self._class_sketches.labels(op_class=op_class)

    @property
    def replication_apply(self) -> QuantileSketch:
        """The post-ack commit -> follower-apply latency sketch."""
        return self._apply_sketch

    def phase_sketch(self, op_class: str, phase: str) -> QuantileSketch:
        """The critical-path time sketch of one (class, phase) pair."""
        return self._phase_sketches.labels(op_class=op_class, phase=phase)

    def classes(self) -> List[str]:
        """Operation classes observed so far, in canonical order."""
        present = {record.op_class for record in self.records}
        return [cls for cls in OP_CLASSES if cls in present]

    def open_count(self) -> int:
        """Operations begun but not yet completed (in flight)."""
        return len(self._open)

    def attribution(self, op_class: str, lo: float = 0.99,
                    hi: Optional[float] = None,
                    band: Optional[str] = None) -> PhaseAttribution:
        """Phase attribution over the ops in the ``[lo, hi)`` quantile
        band of ``op_class`` (default: the p99+ band).

        Band membership is by *rank* over the retained records (stable
        sort by total, so ties resolve by completion order): the p99+
        band is exactly the slowest 1% of ops, even when the latency
        distribution has heavy ties at the threshold."""
        ranked = [record for record in self.records
                  if record.op_class == op_class]
        ranked.sort(key=lambda record: record.total)
        n = len(ranked)
        lo_rank = int(math.floor(lo * (n - 1))) if n else 0
        hi_rank = n if hi is None else int(math.floor(hi * (n - 1)))
        rows = ranked[lo_rank:hi_rank]
        threshold = ranked[lo_rank].total if rows else 0.0
        totals: Dict[str, float] = {}
        grand = 0.0
        for record in rows:
            for phase, duration in record.phases.items():
                totals[phase] = totals.get(phase, 0.0) + duration
                grand += duration
        fractions = {}
        if grand > 0.0:
            fractions = {phase: duration / grand
                         for phase, duration in sorted(
                             totals.items(), key=lambda kv: (-kv[1], kv[0]))}
        if band is None:
            band = f"p{lo * 100:g}+" if hi is None else f"[{lo:g}, {hi:g})"
        return PhaseAttribution(op_class=op_class, band=band, ops=len(rows),
                                threshold=threshold, fractions=fractions)

    def band_attributions(self, op_class: str) -> List[PhaseAttribution]:
        """One attribution per latency band (see :data:`BANDS`)."""
        return [self.attribution(op_class, lo, hi, band=label)
                for label, lo, hi in BANDS]

    def dominant_phase(self, op_class: str,
                       lo: float = 0.99) -> Optional[str]:
        """The phase the ``lo``+ band of ``op_class`` spends most time in."""
        return self.attribution(op_class, lo).dominant_phase

    # -- export --------------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON row per completed operation (phase vector included)."""
        rows = []
        for record in self.records:
            rows.append(json.dumps({
                "handle": record.handle,
                "op_class": record.op_class,
                "key": record.key,
                "begin": record.begin,
                "end": record.end,
                "total": record.total,
                "phases": {phase: record.phases[phase]
                           for phase in sorted(record.phases)},
                "read_repairs": record.read_repairs,
            }, sort_keys=True))
        return "".join(row + "\n" for row in rows)

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())

    def summary(self) -> Dict[str, Dict[str, object]]:
        """Per-class percentile summary plus the p99+ dominant phase."""
        out: Dict[str, Dict[str, object]] = {}
        for op_class in self.classes():
            sketch = self.sketch(op_class)
            row: Dict[str, object] = {"count": sketch.count}
            for label, q in REPORTED_QUANTILES:
                row[label] = sketch.quantile(q)
            row["dominant_p99_phase"] = self.dominant_phase(op_class)
            out[op_class] = row
        return out


class SpanSinkFanout:
    """Forward the op span stream to several sinks (trace + latency)."""

    __slots__ = ("_sinks",)

    def __init__(self, *sinks) -> None:
        self._sinks = tuple(sink for sink in sinks if sink is not None)

    def begin_op(self, handle, kind, key, time, args=None) -> None:
        for sink in self._sinks:
            sink.begin_op(handle, kind, key, time, args)

    def end_op(self, handle, time, args=None) -> None:
        for sink in self._sinks:
            sink.end_op(handle, time, args)

    def child_span(self, handle, name, cat, start, end, args=None) -> None:
        for sink in self._sinks:
            sink.child_span(handle, name, cat, start, end, args)

    def child_instant(self, handle, name, cat, time, args=None) -> None:
        for sink in self._sinks:
            sink.child_instant(handle, name, cat, time, args)


__all__ = [
    "BANDS",
    "DEFAULT_RELATIVE_ERROR",
    "REPORTED_QUANTILES",
    "LatencyTracker",
    "OpLatency",
    "PhaseAttribution",
    "QuantileSketch",
    "SketchFactory",
    "SpanSinkFanout",
]
