"""Per-operation trace spans in Chrome ``trace_event`` JSON.

Every ``invoke_write`` / ``invoke_read`` opens a **root span** keyed by
its router handle; the replication layer hangs **child spans** off the
same handle for each protocol phase it passes through:

====================  =========================================================
span                  covers
====================  =========================================================
``write <key>``       root: queued at the router -> primary protocol completes
``read <key>``        root: routed -> served (store, quorum merge, or primary)
``forward-hop``       follower ingress -> delivery at the primary's router
``protocol-*``        the erasure-coded write/read protocol on the shard
``quorum-leg <pool>`` one store leg of a quorum fan-out, dispatch -> response
``store-read <pool>`` a single-store follower read, dispatch -> serve
``replication-apply`` commit on the primary -> the record landing on one store
``freeze-wait``       a read parked by a failover freeze -> flush at promotion
``read-repair``       instant: a lagging store caught up during a quorum merge
====================  =========================================================

The output is the JSON Object Format (``{"traceEvents": [...]}``) using
*nestable async* events (``ph`` ``b``/``e``/``n``) so one operation's
phases stack on a single track in Perfetto / ``chrome://tracing``.  All
events of an operation share ``id`` = the root handle and carry
``args.parent`` = that handle, which is what tests and the acceptance
gate key on.  One virtual time unit is rendered as one millisecond
(``ts`` is in microseconds, so ``ts = t * 1000``).

Like the rest of ``repro.obs`` the recorder is pure observation: it
appends dicts to a list and never touches simulators or clocks.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

#: Trace microseconds per virtual time unit (1 unit renders as 1 ms).
TS_SCALE = 1000.0

#: ``pid`` for every event -- the whole cluster is one simulated process.
TRACE_PID = 1


class TraceRecorder:
    """Collects Chrome trace events; write with :meth:`write`.

    Tracks (``tid``) are allocated per object key so concurrent
    operations on different keys render side by side, and named via
    ``thread_name`` metadata events.
    """

    def __init__(self, scale: float = TS_SCALE) -> None:
        self.scale = float(scale)
        self.events: List[dict] = []
        self._tids: Dict[str, int] = {}
        #: handle -> track id, so children land on their root's track.
        self._handle_tids: Dict[str, int] = {}
        self._open: Dict[str, dict] = {}

    # -- track bookkeeping -------------------------------------------------------

    def _tid(self, track: str) -> int:
        tid = self._tids.get(track)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[track] = tid
            self.events.append({
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": track},
            })
        return tid

    def _ts(self, time: float) -> float:
        return float(time) * self.scale

    # -- root spans --------------------------------------------------------------

    def begin_op(self, handle: str, kind: str, key: str, time: float,
                 args: Optional[dict] = None) -> None:
        """Open the root span for one router operation."""
        tid = self._tid(f"key {key}")
        self._handle_tids[handle] = tid
        event = {
            "ph": "b",
            "cat": "op",
            "id": handle,
            "pid": TRACE_PID,
            "tid": tid,
            "name": f"{kind} {key}",
            "ts": self._ts(time),
            "args": dict(args or ()),
        }
        self.events.append(event)
        self._open[handle] = event

    def end_op(self, handle: str, time: float,
               args: Optional[dict] = None) -> None:
        """Close the root span; unknown / already-closed handles are no-ops."""
        event = self._open.pop(handle, None)
        if event is None:
            return
        self.events.append({
            "ph": "e",
            "cat": "op",
            "id": handle,
            "pid": TRACE_PID,
            "tid": event["tid"],
            "name": event["name"],
            "ts": self._ts(time),
            "args": dict(args or ()),
        })

    def open_handles(self) -> List[str]:
        """Handles whose root span never closed (stranded operations)."""
        return list(self._open)

    # -- children ----------------------------------------------------------------

    def child_span(self, handle: str, name: str, cat: str, start: float,
                   end: float, args: Optional[dict] = None) -> None:
        """A completed child phase of ``handle``'s operation.

        Children are usually emitted retrospectively, once both endpoints
        are known -- trace viewers sort by ``ts``, so appending them out
        of order is fine.
        """
        tid = self._handle_tids.get(handle, self._tid("cluster"))
        payload = dict(args or ())
        payload["parent"] = handle
        base = {
            "cat": cat,
            "id": handle,
            "pid": TRACE_PID,
            "tid": tid,
            "name": name,
        }
        self.events.append({**base, "ph": "b", "ts": self._ts(start),
                            "args": payload})
        self.events.append({**base, "ph": "e", "ts": self._ts(end),
                            "args": {"parent": handle}})

    def child_instant(self, handle: str, name: str, cat: str, time: float,
                      args: Optional[dict] = None) -> None:
        """A zero-duration marker inside ``handle``'s operation."""
        payload = dict(args or ())
        payload["parent"] = handle
        self.events.append({
            "ph": "n",
            "cat": cat,
            "id": handle,
            "pid": TRACE_PID,
            "tid": self._handle_tids.get(handle, self._tid("cluster")),
            "name": name,
            "ts": self._ts(time),
            "args": payload,
        })

    # -- global events -----------------------------------------------------------

    def instant(self, name: str, time: float, cat: str = "scenario",
                args: Optional[dict] = None) -> None:
        """A process-wide instant (scenario actions, failovers, ...)."""
        self.events.append({
            "ph": "i",
            "s": "p",
            "cat": cat,
            "pid": TRACE_PID,
            "tid": self._tid("scenario"),
            "name": name,
            "ts": self._ts(time),
            "args": dict(args or ()),
        })

    def counter(self, name: str, time: float, values: Dict[str, float]) -> None:
        """A counter sample (renders as a stacked area chart)."""
        self.events.append({
            "ph": "C",
            "cat": "metrics",
            "pid": TRACE_PID,
            "tid": 0,
            "name": name,
            "ts": self._ts(time),
            "args": dict(values),
        })

    # -- queries (tests and the acceptance gate) ----------------------------------

    def spans(self, name_prefix: str = "") -> List[dict]:
        """All ``ph: b`` events whose name starts with ``name_prefix``."""
        return [event for event in self.events
                if event["ph"] == "b"
                and event["name"].startswith(name_prefix)]

    def children_of(self, handle: str) -> List[dict]:
        """Child events (span begins and instants) parented on ``handle``."""
        return [event for event in self.events
                if event["ph"] in ("b", "n")
                and event.get("args", {}).get("parent") == handle]

    # -- output ------------------------------------------------------------------

    def to_json(self) -> dict:
        return {"traceEvents": list(self.events), "displayTimeUnit": "ms"}

    def write(self, path) -> None:
        """Write the trace as JSON; open the file in Perfetto to view it."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=1)
            fh.write("\n")


__all__ = ["TraceRecorder", "TS_SCALE", "TRACE_PID"]
