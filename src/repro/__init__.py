"""repro -- a full reproduction of "A Layered Architecture for Erasure-Coded
Consistent Distributed Storage" (Konwar, Prakash, Lynch, Médard; PODC 2017).

The package implements the LDS two-layer atomic storage algorithm together
with every substrate it depends on:

* ``repro.gf`` -- GF(2^8) arithmetic and linear algebra;
* ``repro.codes`` -- Reed-Solomon, product-matrix MBR/MSR regenerating
  codes, RLNC, replication, and the layered (C, C1, C2) code;
* ``repro.net`` -- an asynchronous message-passing discrete-event
  simulator with crash failures and per-link latency bounds;
* ``repro.core`` -- the LDS protocol (clients, L1 servers, L2 servers),
  cost accounting and the closed-form analysis of Section V;
* ``repro.baselines`` -- ABD (replication) and CAS (single-layer coded)
  atomic registers for comparison;
* ``repro.consistency`` -- operation histories, atomicity checking, and
  the cross-shard session-consistency auditor with its fault-injection
  harness;
* ``repro.workloads`` -- workload generation and measurement;
* ``repro.cluster`` -- the scale-out layer: consistent-hash placement of
  object shards onto server pools, a keyed object router fanning out to
  per-shard LDS instances, rate-limited background repair, and r-way
  replica groups with pluggable read routing and pool-loss failover;
* ``repro.sim`` -- the global-clock simulation kernel: one merged event
  pump over every per-shard simulator, a declarative scenario engine, and
  the :class:`ClusterSimulation` harness for cross-shard timing
  experiments;
* ``repro.obs`` -- simulation-time observability: the metrics registry,
  kernel-driven time-series sampling, per-operation Chrome trace spans,
  and pump profiling -- all pure observation (telemetry on or off, runs
  are byte-identical).

Quickstart::

    from repro import LDSConfig, LDSSystem

    config = LDSConfig(n1=5, n2=6, f1=1, f2=1)
    system = LDSSystem(config, num_writers=1, num_readers=1)
    system.write(b"hello edge storage")
    print(system.read().value)
"""

from repro.core.config import LDSConfig
from repro.core.system import LDSSystem
from repro.core.tags import Tag
from repro.core.multi_object import MultiObjectSystem
from repro.baselines import ABDSystem, CASSystem
from repro.codes import (
    LayeredCode,
    ProductMatrixMBRCode,
    ProductMatrixMSRCode,
    ReedSolomonCode,
    ReplicationCode,
)
from repro.consistency import (
    ClusterAuditReport,
    History,
    LinearizabilityChecker,
    SessionAuditReport,
    SessionViolation,
    check_atomicity_by_tags,
    check_sessions,
    inject_session_violation,
)
from repro.net import (
    BoundedLatencyModel,
    ExponentialLatencyModel,
    FixedLatencyModel,
    Network,
    Simulator,
)
from repro.workloads import (
    KeyedWorkloadRunner,
    UniformKeySampler,
    Workload,
    WorkloadGenerator,
    WorkloadRunner,
    ZipfKeySampler,
)
from repro.cluster import (
    ClusterNode,
    HashRing,
    Membership,
    ObjectRouter,
    RebalancePlan,
    RepairScheduler,
    ReplicationConfig,
    ShardedCluster,
    make_read_policy,
)
from repro.sim import (
    ClusterSimulation,
    GlobalScheduler,
    Scenario,
    ScenarioAction,
    ScenarioEngine,
)
from repro.obs import MetricsRegistry, Telemetry

__version__ = "1.2.0"

__all__ = [
    "LDSConfig",
    "LDSSystem",
    "MultiObjectSystem",
    "Tag",
    "ABDSystem",
    "CASSystem",
    "LayeredCode",
    "ProductMatrixMBRCode",
    "ProductMatrixMSRCode",
    "ReedSolomonCode",
    "ReplicationCode",
    "History",
    "LinearizabilityChecker",
    "check_atomicity_by_tags",
    "ClusterAuditReport",
    "SessionAuditReport",
    "SessionViolation",
    "check_sessions",
    "inject_session_violation",
    "Simulator",
    "Network",
    "FixedLatencyModel",
    "BoundedLatencyModel",
    "ExponentialLatencyModel",
    "Workload",
    "WorkloadGenerator",
    "WorkloadRunner",
    "KeyedWorkloadRunner",
    "UniformKeySampler",
    "ZipfKeySampler",
    "ClusterNode",
    "HashRing",
    "Membership",
    "ObjectRouter",
    "RebalancePlan",
    "RepairScheduler",
    "ReplicationConfig",
    "make_read_policy",
    "ShardedCluster",
    "GlobalScheduler",
    "ClusterSimulation",
    "Scenario",
    "ScenarioAction",
    "ScenarioEngine",
    "MetricsRegistry",
    "Telemetry",
    "__version__",
]
