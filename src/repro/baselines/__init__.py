"""Baseline atomic-register algorithms used for comparison.

The paper positions LDS against two families of prior work:

* **replication-based** single-layer algorithms in the style of Attiya,
  Bar-Noy and Dolev [3] -- implemented in :mod:`repro.baselines.abd`;
* **erasure-code-based** single-layer algorithms in the style of Cadambe,
  Lynch, Médard and Musial [6] -- implemented in :mod:`repro.baselines.cas`.

Both run on the same network substrate and expose the same driving API as
:class:`repro.core.system.LDSSystem`, so the benchmark harness can swap
algorithms without changing the workload code.
"""

from repro.baselines.abd import ABDSystem
from repro.baselines.cas import CASSystem

__all__ = ["ABDSystem", "CASSystem"]
