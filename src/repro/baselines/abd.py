"""The ABD replicated atomic register (multi-writer multi-reader variant).

This is the classic algorithm of Attiya, Bar-Noy and Dolev [3] adapted to
multiple writers: a single layer of ``n`` servers each storing a full
(tag, value) replica, tolerating ``f < n / 2`` crashes with majority
quorums.

* **write**: query a majority for their tags, pick the maximum, bump it,
  send the new (tag, value) to all servers, wait for a majority of acks.
* **read**: query a majority for their (tag, value) pairs, pick the pair
  with the maximum tag, write it back to a majority, and return the value.

Costs (normalised, value size = 1): a write transfers the value to all
``n`` servers (cost ``n``); a read downloads up to ``n`` values and writes
the chosen one back (cost up to ``2 n``); every server stores a full copy
(storage cost ``n``).  These are the comparison numbers the paper's
Figure 6 discussion quotes for a replicated back-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Union

from repro.consistency.history import History, OperationRecorder, READ, WRITE
from repro.core.results import OperationResult
from repro.core.tags import Tag
from repro.net.latency import CLIENT, L1, LatencyModel
from repro.net.messages import Message
from repro.net.network import Network
from repro.net.process import Process
from repro.net.simulator import Simulator


# -- messages -------------------------------------------------------------------

@dataclass
class AbdQueryTag(Message):
    """Writer phase 1: request the server's tag."""


@dataclass
class AbdQueryTagResponse(Message):
    tag: Tag = field(default_factory=Tag.initial)


@dataclass
class AbdPutData(Message):
    """Writer phase 2 / reader write-back: store (tag, value) if newer."""

    tag: Tag = field(default_factory=Tag.initial)
    value: bytes = b""


@dataclass
class AbdPutDataAck(Message):
    tag: Tag = field(default_factory=Tag.initial)


@dataclass
class AbdQueryData(Message):
    """Reader phase 1: request the server's (tag, value) pair."""


@dataclass
class AbdQueryDataResponse(Message):
    tag: Tag = field(default_factory=Tag.initial)
    value: bytes = b""


# -- server ------------------------------------------------------------------------

class ABDServer(Process):
    """A replica server storing a single (tag, value) pair."""

    def __init__(self, pid: str, initial_value: bytes) -> None:
        super().__init__(pid, link_class=L1)
        self.stored_tag = Tag.initial()
        self.stored_value = initial_value

    def on_message(self, sender: str, message: Message) -> None:
        if isinstance(message, AbdQueryTag):
            self.send(sender, AbdQueryTagResponse(tag=self.stored_tag, op_id=message.op_id))
        elif isinstance(message, AbdQueryData):
            self.send(
                sender,
                AbdQueryDataResponse(
                    tag=self.stored_tag, value=self.stored_value,
                    data_size=1.0, op_id=message.op_id,
                ),
            )
        elif isinstance(message, AbdPutData):
            if message.tag > self.stored_tag:
                self.stored_tag = message.tag
                self.stored_value = message.value
            self.send(sender, AbdPutDataAck(tag=message.tag, op_id=message.op_id))


# -- clients -----------------------------------------------------------------------------

class ABDWriter(Process):
    """ABD writer: query-tag then put-data, both against a majority."""

    def __init__(self, pid: str, server_pids: List[str], quorum: int) -> None:
        super().__init__(pid, link_class=CLIENT)
        self.server_pids = server_pids
        self.quorum = quorum
        self._counter = 0
        self._phase: Optional[str] = None
        self._op_id: Optional[str] = None
        self._value: bytes = b""
        self._callback: Optional[Callable[[OperationResult], None]] = None
        self._invoked_at = 0.0
        self._responders: Set[str] = set()
        self._max_tag = Tag.initial()
        self._write_tag: Optional[Tag] = None

    @property
    def busy(self) -> bool:
        return self._phase is not None

    def write(self, value: bytes, callback=None, op_id=None) -> str:
        if self.busy:
            raise RuntimeError(f"writer {self.pid} already has an operation in flight")
        self._counter += 1
        self._op_id = op_id or f"{self.pid}:write-{self._counter}"
        self._value = bytes(value)
        self._callback = callback
        self._invoked_at = self.now
        self._responders = set()
        self._max_tag = Tag.initial()
        self._phase = "query"
        for server in self.server_pids:
            self.send(server, AbdQueryTag(op_id=self._op_id))
        return self._op_id

    def on_message(self, sender: str, message: Message) -> None:
        if message.op_id != self._op_id or self._phase is None:
            return
        if self._phase == "query" and isinstance(message, AbdQueryTagResponse):
            if sender in self._responders:
                return
            self._responders.add(sender)
            self._max_tag = max(self._max_tag, message.tag)
            if len(self._responders) < self.quorum:
                return
            self._write_tag = self._max_tag.next_tag(self.pid)
            self._phase = "put"
            self._responders = set()
            for server in self.server_pids:
                self.send(
                    server,
                    AbdPutData(tag=self._write_tag, value=self._value,
                               data_size=1.0, op_id=self._op_id),
                )
        elif self._phase == "put" and isinstance(message, AbdPutDataAck):
            if message.tag != self._write_tag or sender in self._responders:
                return
            self._responders.add(sender)
            if len(self._responders) < self.quorum:
                return
            result = OperationResult(
                op_id=self._op_id or "", client_id=self.pid, kind=WRITE,
                tag=self._write_tag or Tag.initial(), value=self._value,
                invoked_at=self._invoked_at, responded_at=self.now,
            )
            callback = self._callback
            self._phase = None
            self._op_id = None
            if callback is not None:
                callback(result)


class ABDReader(Process):
    """ABD reader: query-data then write-back, both against a majority."""

    def __init__(self, pid: str, server_pids: List[str], quorum: int) -> None:
        super().__init__(pid, link_class=CLIENT)
        self.server_pids = server_pids
        self.quorum = quorum
        self._counter = 0
        self._phase: Optional[str] = None
        self._op_id: Optional[str] = None
        self._callback: Optional[Callable[[OperationResult], None]] = None
        self._invoked_at = 0.0
        self._responders: Set[str] = set()
        self._best_tag = Tag.initial()
        self._best_value: bytes = b""

    @property
    def busy(self) -> bool:
        return self._phase is not None

    def read(self, callback=None, op_id=None) -> str:
        if self.busy:
            raise RuntimeError(f"reader {self.pid} already has an operation in flight")
        self._counter += 1
        self._op_id = op_id or f"{self.pid}:read-{self._counter}"
        self._callback = callback
        self._invoked_at = self.now
        self._responders = set()
        self._best_tag = Tag.initial()
        self._best_value = b""
        self._phase = "query"
        for server in self.server_pids:
            self.send(server, AbdQueryData(op_id=self._op_id))
        return self._op_id

    def on_message(self, sender: str, message: Message) -> None:
        if message.op_id != self._op_id or self._phase is None:
            return
        if self._phase == "query" and isinstance(message, AbdQueryDataResponse):
            if sender in self._responders:
                return
            self._responders.add(sender)
            if message.tag > self._best_tag or (
                message.tag == self._best_tag and not self._best_value
            ):
                self._best_tag = message.tag
                self._best_value = message.value
            if len(self._responders) < self.quorum:
                return
            self._phase = "write-back"
            self._responders = set()
            for server in self.server_pids:
                self.send(
                    server,
                    AbdPutData(tag=self._best_tag, value=self._best_value,
                               data_size=1.0, op_id=self._op_id),
                )
        elif self._phase == "write-back" and isinstance(message, AbdPutDataAck):
            if message.tag != self._best_tag or sender in self._responders:
                return
            self._responders.add(sender)
            if len(self._responders) < self.quorum:
                return
            result = OperationResult(
                op_id=self._op_id or "", client_id=self.pid, kind=READ,
                tag=self._best_tag, value=self._best_value,
                invoked_at=self._invoked_at, responded_at=self.now,
            )
            callback = self._callback
            self._phase = None
            self._op_id = None
            if callback is not None:
                callback(result)


# -- system facade -------------------------------------------------------------------------

class ABDSystem:
    """A simulated single-layer ABD deployment with the LDSSystem driving API."""

    def __init__(self, n: int, f: Optional[int] = None, num_writers: int = 1,
                 num_readers: int = 1, latency_model: Optional[LatencyModel] = None,
                 initial_value: bytes = b"\x00", object_id: str = "object-0") -> None:
        if n < 1:
            raise ValueError("ABD requires at least one server")
        if f is None:
            f = (n - 1) // 2
        if not f < n / 2:
            raise ValueError("ABD requires f < n / 2")
        self.n = n
        self.f = f
        self.quorum = n - f  # a majority when f is maximal; always intersects.
        self.object_id = object_id
        self.initial_value = initial_value
        self.simulator = Simulator()
        self.network = Network(simulator=self.simulator, latency_model=latency_model)
        self.recorder = OperationRecorder(initial_value=initial_value)
        self.results: Dict[str, OperationResult] = {}

        self.server_pids = [f"abd-{i}" for i in range(n)]
        self.servers = [ABDServer(pid, initial_value) for pid in self.server_pids]
        self.network.register_all(self.servers)
        self.writers = [
            ABDWriter(f"writer-{i}", self.server_pids, self.quorum) for i in range(num_writers)
        ]
        self.readers = [
            ABDReader(f"reader-{i}", self.server_pids, self.quorum) for i in range(num_readers)
        ]
        self.network.register_all(self.writers)
        self.network.register_all(self.readers)

    # -- driving API (mirrors LDSSystem) ----------------------------------------------

    def _record_completion(self, result: OperationResult) -> None:
        self.results[result.op_id] = result
        self.recorder.respond(
            result.op_id, time=result.responded_at,
            value=result.value if result.kind == READ else None, tag=result.tag,
        )

    def _allocate_op_id(self, client_pid: str, kind: str) -> str:
        sequences = getattr(self, "_op_sequences", None)
        if sequences is None:
            sequences = {}
            self._op_sequences = sequences
        key = (client_pid, kind)
        sequences[key] = sequences.get(key, 0) + 1
        return f"{client_pid}:{kind}-{sequences[key]}"

    def invoke_write(self, value: bytes, writer: Union[int, str] = 0,
                     at: Optional[float] = None) -> str:
        client = self.writers[writer] if isinstance(writer, int) else next(
            w for w in self.writers if w.pid == writer
        )
        op_id = self._allocate_op_id(client.pid, "write")

        def start() -> None:
            started = client.write(bytes(value), self._record_completion, op_id=op_id)
            self.recorder.invoke(started, client_id=client.pid, kind=WRITE,
                                 object_id=self.object_id, value=bytes(value),
                                 time=self.simulator.now)

        if at is None:
            start()
        else:
            self.simulator.schedule_at(at, start)
        return op_id

    def invoke_read(self, reader: Union[int, str] = 0, at: Optional[float] = None) -> str:
        client = self.readers[reader] if isinstance(reader, int) else next(
            r for r in self.readers if r.pid == reader
        )
        op_id = self._allocate_op_id(client.pid, "read")

        def start() -> None:
            started = client.read(self._record_completion, op_id=op_id)
            self.recorder.invoke(started, client_id=client.pid, kind=READ,
                                 object_id=self.object_id, value=None,
                                 time=self.simulator.now)

        if at is None:
            start()
        else:
            self.simulator.schedule_at(at, start)
        return op_id

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        self.network.run(until=until, max_events=max_events)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        self.network.run_until_idle(max_events=max_events)

    def run_until_complete(self, op_id: str, max_events: int = 10_000_000) -> OperationResult:
        executed = 0
        while op_id not in self.results:
            if not self.simulator.step():
                raise RuntimeError(f"operation {op_id} did not complete")
            executed += 1
            if executed > max_events:
                raise RuntimeError(f"operation {op_id} exceeded the event budget")
        return self.results[op_id]

    def write(self, value: bytes, writer: Union[int, str] = 0) -> OperationResult:
        return self.run_until_complete(self.invoke_write(value, writer=writer))

    def read(self, reader: Union[int, str] = 0) -> OperationResult:
        return self.run_until_complete(self.invoke_read(reader=reader))

    def crash_server(self, index: int, at: Optional[float] = None) -> None:
        pid = self.server_pids[index]
        if at is None:
            self.network.crash(pid)
        else:
            self.simulator.schedule_at(at, lambda: self.network.crash(pid))

    def history(self) -> History:
        return self.recorder.history()

    def operation_cost(self, op_id: str) -> float:
        return self.network.costs.operation_cost(op_id)

    @property
    def communication_cost(self) -> float:
        return self.network.costs.total

    @property
    def storage_cost(self) -> float:
        """Normalised storage cost: every live server stores one full value."""
        return float(sum(1 for server in self.servers if not server.crashed))


__all__ = ["ABDSystem", "ABDServer", "ABDWriter", "ABDReader"]
