"""A single-layer erasure-coded atomic register (CAS-style baseline).

This baseline follows the Coded Atomic Storage algorithm of Cadambe,
Lynch, Médard and Musial [6]: one layer of ``n`` servers stores
Reed-Solomon coded elements of the value, using quorums of size
``ceil((n + k) / 2)``; any two quorums intersect in at least ``k``
servers, which is what makes decoding during reads possible.

* **write** (three phases): *query-tag* collects the maximum finalized
  tag from a quorum; *pre-write* sends one coded element (size ``1/k``) to
  every server and waits for a quorum of acks; *finalize* marks the tag
  ``fin`` at a quorum.
* **read** (two phases): *query-tag* collects the maximum finalized tag
  ``t_r`` from a quorum; *finalize-and-get* asks every server for its
  coded element of ``t_r`` (also propagating the ``fin`` label) and waits
  for a quorum of responses of which at least ``k`` carry coded elements,
  then decodes.

Garbage collection follows the CASGC variant: a server keeps coded
elements only for the ``gc_depth`` highest finalized tags it knows about
(older elements are replaced by tombstones), which bounds storage at
``(gc_depth) * n / k`` per object.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Union

from repro.codes.base import CodedElement, DecodingError
from repro.codes.reed_solomon import ReedSolomonCode
from repro.consistency.history import History, OperationRecorder, READ, WRITE
from repro.core.results import OperationResult
from repro.core.tags import Tag
from repro.net.latency import CLIENT, L1, LatencyModel
from repro.net.messages import Message
from repro.net.network import Network
from repro.net.process import Process
from repro.net.simulator import Simulator


# -- messages --------------------------------------------------------------------

@dataclass
class CasQueryTag(Message):
    """Query the server's maximum finalized tag."""


@dataclass
class CasQueryTagResponse(Message):
    tag: Tag = field(default_factory=Tag.initial)


@dataclass
class CasPreWrite(Message):
    """Pre-write one coded element under a tag (size 1/k)."""

    tag: Tag = field(default_factory=Tag.initial)
    coded_element: bytes = b""


@dataclass
class CasPreWriteAck(Message):
    tag: Tag = field(default_factory=Tag.initial)


@dataclass
class CasFinalize(Message):
    """Mark a tag as finalized (metadata only)."""

    tag: Tag = field(default_factory=Tag.initial)


@dataclass
class CasFinalizeAck(Message):
    tag: Tag = field(default_factory=Tag.initial)


@dataclass
class CasReadRequest(Message):
    """Reader phase 2: finalize the tag and request the coded element."""

    tag: Tag = field(default_factory=Tag.initial)


@dataclass
class CasReadResponse(Message):
    tag: Tag = field(default_factory=Tag.initial)
    coded_element: Optional[bytes] = None
    has_element: bool = False


# -- server -------------------------------------------------------------------------

class CASServer(Process):
    """One server of the single-layer coded register."""

    def __init__(self, pid: str, index: int, gc_depth: int = 2) -> None:
        super().__init__(pid, link_class=L1)
        self.index = index
        self.gc_depth = gc_depth
        #: tag -> coded element bytes (None once garbage collected).
        self.elements: Dict[Tag, Optional[bytes]] = {}
        self.finalized: Set[Tag] = {Tag.initial()}

    def max_finalized_tag(self) -> Tag:
        return max(self.finalized)

    def _garbage_collect(self) -> None:
        """Keep coded elements only for the gc_depth highest finalized tags."""
        keep = set(sorted(self.finalized, reverse=True)[: self.gc_depth])
        for tag in list(self.elements):
            if tag not in keep and self.elements[tag] is not None and tag in self.finalized:
                self.elements[tag] = None

    def on_message(self, sender: str, message: Message) -> None:
        if isinstance(message, CasQueryTag):
            self.send(sender, CasQueryTagResponse(tag=self.max_finalized_tag(),
                                                  op_id=message.op_id))
        elif isinstance(message, CasPreWrite):
            self.elements.setdefault(message.tag, message.coded_element)
            self.send(sender, CasPreWriteAck(tag=message.tag, op_id=message.op_id))
        elif isinstance(message, CasFinalize):
            self.finalized.add(message.tag)
            self._garbage_collect()
            self.send(sender, CasFinalizeAck(tag=message.tag, op_id=message.op_id))
        elif isinstance(message, CasReadRequest):
            self.finalized.add(message.tag)
            element = self.elements.get(message.tag)
            data_size = 0.0
            has_element = element is not None
            if has_element:
                data_size = 1.0 / max(1, self._k_hint)
            self.send(
                sender,
                CasReadResponse(tag=message.tag, coded_element=element,
                                has_element=has_element, data_size=data_size,
                                op_id=message.op_id),
            )
            self._garbage_collect()

    #: Set by the system so responses can be sized as 1/k without carrying
    #: the full code object into every server.
    _k_hint: int = 1


# -- clients ---------------------------------------------------------------------------

class CASWriter(Process):
    """Three-phase CAS writer."""

    def __init__(self, pid: str, server_pids: List[str], quorum: int,
                 code: ReedSolomonCode) -> None:
        super().__init__(pid, link_class=CLIENT)
        self.server_pids = server_pids
        self.quorum = quorum
        self.code = code
        self._counter = 0
        self._phase: Optional[str] = None
        self._op_id: Optional[str] = None
        self._value: bytes = b""
        self._callback = None
        self._invoked_at = 0.0
        self._responders: Set[str] = set()
        self._max_tag = Tag.initial()
        self._write_tag: Optional[Tag] = None

    @property
    def busy(self) -> bool:
        return self._phase is not None

    def write(self, value: bytes, callback=None, op_id=None) -> str:
        if self.busy:
            raise RuntimeError(f"writer {self.pid} already has an operation in flight")
        self._counter += 1
        self._op_id = op_id or f"{self.pid}:write-{self._counter}"
        self._value = bytes(value)
        self._callback = callback
        self._invoked_at = self.now
        self._responders = set()
        self._max_tag = Tag.initial()
        self._phase = "query"
        for server in self.server_pids:
            self.send(server, CasQueryTag(op_id=self._op_id))
        return self._op_id

    def on_message(self, sender: str, message: Message) -> None:
        if message.op_id != self._op_id or self._phase is None:
            return
        if self._phase == "query" and isinstance(message, CasQueryTagResponse):
            if sender in self._responders:
                return
            self._responders.add(sender)
            self._max_tag = max(self._max_tag, message.tag)
            if len(self._responders) < self.quorum:
                return
            self._write_tag = self._max_tag.next_tag(self.pid)
            self._phase = "pre-write"
            self._responders = set()
            elements = self.code.encode(self._value)
            for index, server in enumerate(self.server_pids):
                self.send(
                    server,
                    CasPreWrite(tag=self._write_tag, coded_element=elements[index].data,
                                data_size=1.0 / self.code.k, op_id=self._op_id),
                )
        elif self._phase == "pre-write" and isinstance(message, CasPreWriteAck):
            if message.tag != self._write_tag or sender in self._responders:
                return
            self._responders.add(sender)
            if len(self._responders) < self.quorum:
                return
            self._phase = "finalize"
            self._responders = set()
            for server in self.server_pids:
                self.send(server, CasFinalize(tag=self._write_tag, op_id=self._op_id))
        elif self._phase == "finalize" and isinstance(message, CasFinalizeAck):
            if message.tag != self._write_tag or sender in self._responders:
                return
            self._responders.add(sender)
            if len(self._responders) < self.quorum:
                return
            result = OperationResult(
                op_id=self._op_id or "", client_id=self.pid, kind=WRITE,
                tag=self._write_tag or Tag.initial(), value=self._value,
                invoked_at=self._invoked_at, responded_at=self.now,
            )
            callback = self._callback
            self._phase = None
            self._op_id = None
            if callback is not None:
                callback(result)


class CASReader(Process):
    """Two-phase CAS reader."""

    def __init__(self, pid: str, server_pids: List[str], quorum: int,
                 code: ReedSolomonCode, initial_value: bytes) -> None:
        super().__init__(pid, link_class=CLIENT)
        self.server_pids = server_pids
        self.quorum = quorum
        self.code = code
        self.initial_value = initial_value
        self._server_index = {pid: i for i, pid in enumerate(server_pids)}
        self._counter = 0
        self._phase: Optional[str] = None
        self._op_id: Optional[str] = None
        self._callback = None
        self._invoked_at = 0.0
        self._responders: Set[str] = set()
        self._max_tag = Tag.initial()
        self._elements: Dict[int, bytes] = {}

    @property
    def busy(self) -> bool:
        return self._phase is not None

    def read(self, callback=None, op_id=None) -> str:
        if self.busy:
            raise RuntimeError(f"reader {self.pid} already has an operation in flight")
        self._counter += 1
        self._op_id = op_id or f"{self.pid}:read-{self._counter}"
        self._callback = callback
        self._invoked_at = self.now
        self._responders = set()
        self._max_tag = Tag.initial()
        self._elements = {}
        self._phase = "query"
        for server in self.server_pids:
            self.send(server, CasQueryTag(op_id=self._op_id))
        return self._op_id

    def on_message(self, sender: str, message: Message) -> None:
        if message.op_id != self._op_id or self._phase is None:
            return
        if self._phase == "query" and isinstance(message, CasQueryTagResponse):
            if sender in self._responders:
                return
            self._responders.add(sender)
            self._max_tag = max(self._max_tag, message.tag)
            if len(self._responders) < self.quorum:
                return
            self._phase = "get"
            self._responders = set()
            for server in self.server_pids:
                self.send(server, CasReadRequest(tag=self._max_tag, op_id=self._op_id))
        elif self._phase == "get" and isinstance(message, CasReadResponse):
            if sender in self._responders:
                return
            self._responders.add(sender)
            if message.has_element and message.coded_element is not None:
                self._elements[self._server_index[sender]] = message.coded_element
            if len(self._responders) < self.quorum:
                return
            if self._max_tag == Tag.initial():
                value = self.initial_value
            else:
                if len(self._elements) < self.code.k:
                    return
                try:
                    value = self.code.decode(
                        [CodedElement(index=i, data=data) for i, data in self._elements.items()]
                    )
                except DecodingError:
                    return
            result = OperationResult(
                op_id=self._op_id or "", client_id=self.pid, kind=READ,
                tag=self._max_tag, value=value,
                invoked_at=self._invoked_at, responded_at=self.now,
            )
            callback = self._callback
            self._phase = None
            self._op_id = None
            if callback is not None:
                callback(result)


# -- system facade --------------------------------------------------------------------------

class CASSystem:
    """A simulated single-layer coded atomic register with the LDSSystem API."""

    def __init__(self, n: int, k: int, num_writers: int = 1, num_readers: int = 1,
                 latency_model: Optional[LatencyModel] = None,
                 initial_value: bytes = b"\x00", gc_depth: int = 2,
                 object_id: str = "object-0") -> None:
        if not 1 <= k <= n:
            raise ValueError("CAS requires 1 <= k <= n")
        self.n = n
        self.k = k
        self.quorum = math.ceil((n + k) / 2)
        self.f = n - self.quorum  # tolerated failures
        self.object_id = object_id
        self.initial_value = initial_value
        self.code = ReedSolomonCode(n, k)
        self.simulator = Simulator()
        self.network = Network(simulator=self.simulator, latency_model=latency_model)
        self.recorder = OperationRecorder(initial_value=initial_value)
        self.results: Dict[str, OperationResult] = {}

        self.server_pids = [f"cas-{i}" for i in range(n)]
        self.servers = [CASServer(pid, index, gc_depth=gc_depth)
                        for index, pid in enumerate(self.server_pids)]
        for server in self.servers:
            server._k_hint = k
        self.network.register_all(self.servers)
        self.writers = [CASWriter(f"writer-{i}", self.server_pids, self.quorum, self.code)
                        for i in range(num_writers)]
        self.readers = [CASReader(f"reader-{i}", self.server_pids, self.quorum, self.code,
                                  initial_value)
                        for i in range(num_readers)]
        self.network.register_all(self.writers)
        self.network.register_all(self.readers)

    # -- driving API ---------------------------------------------------------------------

    def _record_completion(self, result: OperationResult) -> None:
        self.results[result.op_id] = result
        self.recorder.respond(
            result.op_id, time=result.responded_at,
            value=result.value if result.kind == READ else None, tag=result.tag,
        )

    def _allocate_op_id(self, client_pid: str, kind: str) -> str:
        sequences = getattr(self, "_op_sequences", None)
        if sequences is None:
            sequences = {}
            self._op_sequences = sequences
        key = (client_pid, kind)
        sequences[key] = sequences.get(key, 0) + 1
        return f"{client_pid}:{kind}-{sequences[key]}"

    def invoke_write(self, value: bytes, writer: Union[int, str] = 0,
                     at: Optional[float] = None) -> str:
        client = self.writers[writer] if isinstance(writer, int) else next(
            w for w in self.writers if w.pid == writer
        )
        op_id = self._allocate_op_id(client.pid, "write")

        def start() -> None:
            started = client.write(bytes(value), self._record_completion, op_id=op_id)
            self.recorder.invoke(started, client_id=client.pid, kind=WRITE,
                                 object_id=self.object_id, value=bytes(value),
                                 time=self.simulator.now)

        if at is None:
            start()
        else:
            self.simulator.schedule_at(at, start)
        return op_id

    def invoke_read(self, reader: Union[int, str] = 0, at: Optional[float] = None) -> str:
        client = self.readers[reader] if isinstance(reader, int) else next(
            r for r in self.readers if r.pid == reader
        )
        op_id = self._allocate_op_id(client.pid, "read")

        def start() -> None:
            started = client.read(self._record_completion, op_id=op_id)
            self.recorder.invoke(started, client_id=client.pid, kind=READ,
                                 object_id=self.object_id, value=None,
                                 time=self.simulator.now)

        if at is None:
            start()
        else:
            self.simulator.schedule_at(at, start)
        return op_id

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        self.network.run(until=until, max_events=max_events)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        self.network.run_until_idle(max_events=max_events)

    def run_until_complete(self, op_id: str, max_events: int = 10_000_000) -> OperationResult:
        executed = 0
        while op_id not in self.results:
            if not self.simulator.step():
                raise RuntimeError(f"operation {op_id} did not complete")
            executed += 1
            if executed > max_events:
                raise RuntimeError(f"operation {op_id} exceeded the event budget")
        return self.results[op_id]

    def write(self, value: bytes, writer: Union[int, str] = 0) -> OperationResult:
        return self.run_until_complete(self.invoke_write(value, writer=writer))

    def read(self, reader: Union[int, str] = 0) -> OperationResult:
        return self.run_until_complete(self.invoke_read(reader=reader))

    def crash_server(self, index: int, at: Optional[float] = None) -> None:
        pid = self.server_pids[index]
        if at is None:
            self.network.crash(pid)
        else:
            self.simulator.schedule_at(at, lambda: self.network.crash(pid))

    def history(self) -> History:
        return self.recorder.history()

    def operation_cost(self, op_id: str) -> float:
        return self.network.costs.operation_cost(op_id)

    @property
    def communication_cost(self) -> float:
        return self.network.costs.total

    @property
    def storage_cost(self) -> float:
        """Normalised storage: each live coded element counts 1/k."""
        total = 0.0
        for server in self.servers:
            if server.crashed:
                continue
            total += sum(1.0 / self.k for element in server.elements.values()
                         if element is not None)
        return total


__all__ = ["CASSystem", "CASServer", "CASWriter", "CASReader"]
