"""The layered (C, C1, C2) code used by the LDS algorithm.

Section II-c of the paper defines a single ``{(n = n1 + n2, k, d)(alpha,
beta)}`` MBR code ``C`` whose first ``n1`` symbols are associated with the
edge-layer servers (code ``C1``) and whose last ``n2`` symbols are
associated with the back-end servers (code ``C2``).  The protocol uses the
three codes as follows:

* an L1 server that holds the value encodes it with ``C2`` and sends coded
  element ``c_{n1+i}`` to L2 server ``i`` (internal ``write-to-L2``);
* an L1 server ``s_j`` that needs coded data back reconstructs *its own*
  code symbol ``c_j`` of ``C`` via the regenerating-code repair procedure
  with ``d`` helpers drawn from L2 (internal ``regenerate-from-L2``);
* a reader that has received ``k`` coded elements from distinct L1 servers
  decodes the value using ``C1`` (any ``k`` symbols of an MBR code decode).

:class:`LayeredCode` packages exactly these operations so the protocol
code never touches matrix algebra directly.  It works with either the MBR
code (the paper's choice) or the MSR code (for the Remark 1/2 ablations).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Mapping

from repro.codes.base import CodedElement, DecodingError, RegeneratingCode, RepairError
from repro.codes.product_matrix import ProductMatrixMBRCode, ProductMatrixMSRCode


@dataclass(frozen=True)
class LayeredCodeCosts:
    """Normalised (value size = 1) message/storage sizes of the layered code."""

    #: Size of one coded element (alpha / B) -- stored per L2 server and sent
    #: per server during write-to-L2 and when relaying regenerated elements.
    element_fraction: Fraction
    #: Size of one repair-helper message (beta / B).
    helper_fraction: Fraction
    #: Total download of one regenerate-from-L2 operation (d * beta / B).
    regeneration_fraction: Fraction
    #: Total permanent storage across L2 (n2 * alpha / B).
    backend_storage_fraction: Fraction


class LayeredCode:
    """The two-layer view of a single regenerating code.

    Args:
        n1: number of edge-layer (L1) servers.
        n2: number of back-end (L2) servers.
        k: reconstruction parameter of the regenerating code.
        d: repair degree of the regenerating code (helpers are L2 servers,
            so ``d <= n2`` is required for regeneration to be possible).
        operating_point: ``"mbr"`` (the paper's choice) or ``"msr"``.
    """

    def __init__(self, n1: int, n2: int, k: int, d: int,
                 operating_point: str = "mbr") -> None:
        if n1 < 1 or n2 < 1:
            raise ValueError("both layers need at least one server")
        if d > n2:
            raise ValueError("regeneration needs d <= n2 (helpers come from L2)")
        if k > n1:
            raise ValueError("decoding from L1 needs k <= n1")
        self.n1 = n1
        self.n2 = n2
        self.operating_point = operating_point.lower()
        total = n1 + n2
        if self.operating_point == "mbr":
            self.code: RegeneratingCode = ProductMatrixMBRCode(total, k, d)
        elif self.operating_point == "msr":
            if d != 2 * k - 2:
                raise ValueError("the product-matrix MSR construction requires d = 2k - 2")
            self.code = ProductMatrixMSRCode(total, k)
        else:
            raise ValueError(f"unknown operating point {operating_point!r}")
        self.k = k
        self.d = d

    # -- index mapping --------------------------------------------------------

    def l1_symbol_index(self, l1_server: int) -> int:
        """Code-symbol index of L1 server ``l1_server`` (0-based)."""
        if not 0 <= l1_server < self.n1:
            raise ValueError(f"L1 server index {l1_server} out of range")
        return l1_server

    def l2_symbol_index(self, l2_server: int) -> int:
        """Code-symbol index of L2 server ``l2_server`` (0-based)."""
        if not 0 <= l2_server < self.n2:
            raise ValueError(f"L2 server index {l2_server} out of range")
        return self.n1 + l2_server

    # -- the three protocol-facing operations ----------------------------------

    def encode_for_backend(self, value: bytes) -> Dict[int, CodedElement]:
        """Encode a value with C2: coded elements keyed by L2 server index."""
        elements = self.code.encode(value)
        return {
            l2_server: elements[self.l2_symbol_index(l2_server)]
            for l2_server in range(self.n2)
        }

    def helper_data(self, l2_server: int, stored: CodedElement, l1_server: int) -> bytes:
        """Helper data an L2 server computes for repairing an L1 symbol.

        Only the identity of the requesting L1 server is needed -- the L2
        server does not know (and must not need to know) which other L2
        servers will also act as helpers.
        """
        return self.code.helper_data(
            helper_index=self.l2_symbol_index(l2_server),
            helper_element=stored.data,
            failed_index=self.l1_symbol_index(l1_server),
        )

    def regenerate_l1_element(self, l1_server: int,
                              helper_messages: Mapping[int, bytes]) -> CodedElement:
        """Regenerate L1 server ``l1_server``'s code symbol from L2 helper data.

        ``helper_messages`` is keyed by L2 server index.  At least ``d``
        distinct helpers are required.
        """
        if len(helper_messages) < self.d:
            raise RepairError(
                f"regeneration needs d={self.d} helpers, got {len(helper_messages)}"
            )
        translated = {
            self.l2_symbol_index(l2_server): data
            for l2_server, data in helper_messages.items()
        }
        repaired = self.code.repair(self.l1_symbol_index(l1_server), translated)
        return CodedElement(index=self.l1_symbol_index(l1_server), data=repaired.data)

    def decode_from_l1(self, elements: Mapping[int, bytes]) -> bytes:
        """Decode the value from coded elements held by >= k L1 servers (code C1)."""
        if len(elements) < self.k:
            raise DecodingError(
                f"decoding needs k={self.k} coded elements, got {len(elements)}"
            )
        coded = [
            CodedElement(index=self.l1_symbol_index(l1_server), data=data)
            for l1_server, data in elements.items()
        ]
        return self.code.decode(coded)

    def decode_from_backend(self, elements: Mapping[int, bytes]) -> bytes:
        """Decode the value directly from >= k L2 coded elements (code C2).

        Not used by the LDS protocol itself but useful for recovery tooling
        and tests: the back-end alone must always be able to rebuild the
        persistent value.
        """
        if len(elements) < self.k:
            raise DecodingError(
                f"decoding needs k={self.k} coded elements, got {len(elements)}"
            )
        coded = [
            CodedElement(index=self.l2_symbol_index(l2_server), data=data)
            for l2_server, data in elements.items()
        ]
        return self.code.decode(coded)

    # -- normalised costs -------------------------------------------------------

    @property
    def costs(self) -> LayeredCodeCosts:
        """The normalised message/storage sizes used for cost accounting."""
        params = self.code.parameters
        return LayeredCodeCosts(
            element_fraction=params.storage_per_node,
            helper_fraction=params.helper_per_node,
            regeneration_fraction=params.repair_bandwidth,
            backend_storage_fraction=Fraction(self.n2) * params.storage_per_node,
        )

    def __repr__(self) -> str:
        return (
            f"LayeredCode(n1={self.n1}, n2={self.n2}, k={self.k}, d={self.d}, "
            f"point={self.operating_point!r})"
        )


__all__ = ["LayeredCode", "LayeredCodeCosts"]
