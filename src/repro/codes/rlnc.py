"""Random linear network codes (RLNC) with functional repair.

The paper's conclusion raises the question of replacing the exact-repair
product-matrix MBR code in the back-end layer with random linear network
codes [16], which implement regenerating codes via *functional* repair and
offer probabilistic decoding guarantees.  This module provides such a code
so the question can be explored experimentally.

Each node stores ``alpha`` random linear combinations of the ``B`` file
symbols together with their coefficient vectors.  Decoding gathers coded
symbols from any set of nodes and succeeds when the collected coefficient
vectors span the full ``B``-dimensional space (which happens with high
probability once ``k`` nodes at the MSR point, or slightly more symbols in
general, have been gathered).  Repair draws ``beta`` fresh random
combinations from each of ``d`` helpers and re-randomises them into a new
node -- the repaired node is functionally, not bit-wise, equivalent to the
lost one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.codes.base import DecodingError, RepairError
from repro.codes.regenerating import RegeneratingCodeParameters, cut_set_bound
from repro.gf.gf256 import GF256
from repro.gf.matrix import GFMatrix


@dataclass(frozen=True)
class RLNCElement:
    """Coded content of one RLNC node for a single block.

    ``coefficients`` is an ``alpha x B`` matrix and ``symbols`` the
    corresponding ``alpha`` coded symbols (one per row).
    """

    index: int
    coefficients: np.ndarray
    symbols: np.ndarray


class RandomLinearNetworkCode:
    """A functional-repair regenerating code based on random coefficients.

    Unlike the exact-repair product-matrix codes, this class does not
    subclass :class:`~repro.codes.base.RegeneratingCode`: coded elements
    must carry their coefficient vectors, so the byte-level striped
    interface does not apply.  The class operates directly on blocks of
    ``file_size`` symbols.
    """

    def __init__(self, n: int, k: int, d: int, alpha: int, beta: int, file_size: int,
                 seed: int | None = None) -> None:
        if not 1 <= k <= d <= n - 1:
            raise ValueError("RLNC requires 1 <= k <= d <= n - 1")
        bound = cut_set_bound(k, d, alpha, beta)
        if file_size > bound:
            raise ValueError(f"file size {file_size} exceeds the cut-set bound {bound}")
        self.n = n
        self.k = k
        self.d = d
        self.alpha = alpha
        self.beta = beta
        self.file_size = file_size
        self._rng = random.Random(seed)

    @property
    def parameters(self) -> RegeneratingCodeParameters:
        """The regenerating-code parameter tuple of this instance."""
        return RegeneratingCodeParameters(
            n=self.n, k=self.k, d=self.d, alpha=self.alpha, beta=self.beta,
            file_size=self.file_size,
        )

    # -- internals ------------------------------------------------------------

    def _random_vector(self, length: int) -> np.ndarray:
        return np.array([self._rng.randrange(256) for _ in range(length)], dtype=np.uint8)

    def _combine(self, coefficients: np.ndarray, symbols: np.ndarray,
                 weights: np.ndarray) -> tuple[np.ndarray, int]:
        """Combine rows of (coefficients, symbols) with the given weights."""
        combined_coeff = np.zeros(coefficients.shape[1], dtype=np.uint8)
        combined_symbol = 0
        for weight, coeff_row, symbol in zip(weights, coefficients, symbols):
            weight = int(weight)
            if weight == 0:
                continue
            combined_coeff = np.bitwise_xor(
                combined_coeff, GF256.scale_vec(weight, coeff_row)
            )
            combined_symbol = GF256.add(combined_symbol, GF256.mul(weight, int(symbol)))
        return combined_coeff, combined_symbol

    # -- public API --------------------------------------------------------------

    def encode_block(self, block: np.ndarray) -> List[RLNCElement]:
        """Encode a block of ``file_size`` symbols into ``n`` RLNC elements."""
        block = np.asarray(block, dtype=np.uint8)
        if block.size != self.file_size:
            raise ValueError(f"block must contain {self.file_size} symbols")
        elements = []
        for index in range(self.n):
            coefficients = np.zeros((self.alpha, self.file_size), dtype=np.uint8)
            symbols = np.zeros(self.alpha, dtype=np.uint8)
            for row in range(self.alpha):
                coeff = self._random_vector(self.file_size)
                coefficients[row] = coeff
                symbols[row] = GF256.dot(coeff, block)
            elements.append(RLNCElement(index=index, coefficients=coefficients, symbols=symbols))
        return elements

    def can_decode(self, elements: Sequence[RLNCElement]) -> bool:
        """Return True when the collected coefficient vectors span the file."""
        if not elements:
            return False
        stacked = np.vstack([element.coefficients for element in elements])
        return GFMatrix(stacked).rank() == self.file_size

    def decode_block(self, elements: Sequence[RLNCElement]) -> np.ndarray:
        """Decode the original block; raises :class:`DecodingError` on rank deficiency."""
        if not elements:
            raise DecodingError("no RLNC elements supplied")
        coefficients = np.vstack([element.coefficients for element in elements])
        symbols = np.concatenate([element.symbols for element in elements])
        matrix = GFMatrix(coefficients)
        if matrix.rank() < self.file_size:
            raise DecodingError(
                "collected RLNC symbols do not span the file (probabilistic failure)"
            )
        # Select file_size independent rows by elimination, then solve.
        selected_rows: List[int] = []
        work = GFMatrix.zeros(0, self.file_size)
        for row_index in range(coefficients.shape[0]):
            candidate = GFMatrix(np.vstack([work.data, coefficients[row_index : row_index + 1]]))
            if candidate.rank() > work.rows:
                work = candidate
                selected_rows.append(row_index)
            if len(selected_rows) == self.file_size:
                break
        square = GFMatrix(coefficients[selected_rows, :].copy())
        rhs = symbols[selected_rows]
        return square.solve(rhs)

    def helper_symbols(self, helper: RLNCElement, rng: random.Random | None = None) -> RLNCElement:
        """Produce ``beta`` fresh random combinations of a helper's content."""
        rng = rng or self._rng
        coefficients = np.zeros((self.beta, self.file_size), dtype=np.uint8)
        symbols = np.zeros(self.beta, dtype=np.uint8)
        for row in range(self.beta):
            weights = np.array([rng.randrange(256) for _ in range(self.alpha)], dtype=np.uint8)
            coeff, symbol = self._combine(helper.coefficients, helper.symbols, weights)
            coefficients[row] = coeff
            symbols[row] = symbol
        return RLNCElement(index=helper.index, coefficients=coefficients, symbols=symbols)

    def repair(self, new_index: int, helper_messages: Mapping[int, RLNCElement]) -> RLNCElement:
        """Functionally repair a node from ``d`` helper messages."""
        if len(helper_messages) < self.d:
            raise RepairError(
                f"RLNC repair requires d={self.d} helpers, got {len(helper_messages)}"
            )
        coefficients = np.vstack([msg.coefficients for msg in helper_messages.values()])
        symbols = np.concatenate([msg.symbols for msg in helper_messages.values()])
        new_coefficients = np.zeros((self.alpha, self.file_size), dtype=np.uint8)
        new_symbols = np.zeros(self.alpha, dtype=np.uint8)
        for row in range(self.alpha):
            weights = self._random_vector(coefficients.shape[0])
            coeff, symbol = self._combine(coefficients, symbols, weights)
            new_coefficients[row] = coeff
            new_symbols[row] = symbol
        return RLNCElement(index=new_index, coefficients=new_coefficients, symbols=new_symbols)

    def decode_probability_estimate(self, trials: int, node_count: int,
                                    seed: int | None = None) -> float:
        """Monte-Carlo estimate of the probability that ``node_count`` nodes decode."""
        rng = random.Random(seed)
        successes = 0
        block = (np.arange(self.file_size) % 256).astype(np.uint8)
        for _ in range(trials):
            code = RandomLinearNetworkCode(
                self.n, self.k, self.d, self.alpha, self.beta, self.file_size,
                seed=rng.randrange(2**31),
            )
            elements = code.encode_block(block)
            chosen = rng.sample(elements, node_count)
            if code.can_decode(chosen):
                successes += 1
        return successes / trials if trials else 0.0


__all__ = ["RandomLinearNetworkCode", "RLNCElement"]
