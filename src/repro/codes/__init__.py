"""Erasure and regenerating codes.

This package contains every code family the paper references:

* :mod:`repro.codes.replication` -- trivial replication "code" (the
  comparison point for storage cost in Figure 6).
* :mod:`repro.codes.reed_solomon` -- (n, k) Reed-Solomon / MDS codes via
  Vandermonde generator matrices (the popular single-layer choice the
  paper contrasts regenerating codes with).
* :mod:`repro.codes.regenerating` -- the regenerating-code parameter
  framework of Dimakis et al. [9]: cut-set bound, MBR and MSR operating
  points, repair-bandwidth accounting.
* :mod:`repro.codes.product_matrix` -- exact-repair product-matrix MBR and
  MSR constructions of Rashmi, Shah and Kumar [25]; these are the codes
  the LDS algorithm uses in the back-end layer.
* :mod:`repro.codes.rlnc` -- random linear network codes with functional
  repair [16], the alternative back-end code discussed in the conclusion.
* :mod:`repro.codes.layered` -- the (C, C1, C2) split of a single
  regenerating code across the two server layers used by LDS
  (Section II-c of the paper).
"""

from repro.codes.base import CodedElement, DecodingError, ErasureCode, RepairError
from repro.codes.replication import ReplicationCode
from repro.codes.reed_solomon import ReedSolomonCode
from repro.codes.regenerating import (
    RegeneratingCodeParameters,
    cut_set_bound,
    mbr_parameters,
    msr_parameters,
)
from repro.codes.product_matrix import ProductMatrixMBRCode, ProductMatrixMSRCode
from repro.codes.rlnc import RandomLinearNetworkCode
from repro.codes.layered import LayeredCode

__all__ = [
    "CodedElement",
    "DecodingError",
    "ErasureCode",
    "RepairError",
    "ReplicationCode",
    "ReedSolomonCode",
    "RegeneratingCodeParameters",
    "cut_set_bound",
    "mbr_parameters",
    "msr_parameters",
    "ProductMatrixMBRCode",
    "ProductMatrixMSRCode",
    "RandomLinearNetworkCode",
    "LayeredCode",
]
