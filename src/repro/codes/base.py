"""Common interfaces for the code layer.

Every code exposes two views:

* a **block view** -- ``encode_block`` / ``decode_block`` operate on a
  fixed-size block of ``block_size`` GF(2^8) symbols (one byte per symbol)
  and produce per-server coded elements of ``element_size`` symbols; and
* a **byte view** -- ``encode`` / ``decode`` operate on arbitrary byte
  strings by striping them across as many blocks as needed and prefixing
  the payload with its length, so that round-tripping restores the exact
  bytes.

Regenerating codes additionally expose the repair interface
(``helper_symbols`` / ``repair_element``) that the LDS internal
``regenerate-from-L2`` operation relies on.
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.gf.gf256 import GF256

#: Number of bytes used to record the original payload length in the
#: striped byte-level encoding.
_LENGTH_HEADER = 4


class DecodingError(ValueError):
    """Raised when decoding cannot recover the original data."""


class RepairError(ValueError):
    """Raised when a coded element cannot be regenerated from helper data."""


@dataclass(frozen=True)
class CodedElement:
    """A coded element destined for / stored by one server.

    Attributes:
        index: the code-symbol index (0-based position within the codeword).
        data: the coded bytes for this index.
    """

    index: int
    data: bytes

    def __len__(self) -> int:
        return len(self.data)


class ErasureCode(ABC):
    """Abstract base class for all codes in :mod:`repro.codes`."""

    #: Total number of code symbols (servers).
    n: int
    #: Number of symbols sufficient for decoding.
    k: int

    # -- block-level interface (must be provided by subclasses) -----------

    @property
    @abstractmethod
    def block_size(self) -> int:
        """Number of payload symbols encoded per block (the file size B)."""

    @property
    @abstractmethod
    def element_size(self) -> int:
        """Number of symbols stored per server per block (alpha)."""

    @abstractmethod
    def encode_block(self, block: np.ndarray) -> List[np.ndarray]:
        """Encode one block of ``block_size`` symbols into ``n`` elements."""

    @abstractmethod
    def decode_block(self, elements: Mapping[int, np.ndarray]) -> np.ndarray:
        """Decode one block from coded elements keyed by symbol index."""

    # -- derived size properties -------------------------------------------

    @property
    def storage_overhead(self) -> float:
        """Total stored symbols divided by payload symbols (n * alpha / B)."""
        return self.n * self.element_size / self.block_size

    @property
    def element_fraction(self) -> float:
        """Size of one coded element as a fraction of the payload (alpha / B)."""
        return self.element_size / self.block_size

    # -- byte-level interface ----------------------------------------------

    def _padded_payload(self, data: bytes) -> np.ndarray:
        """Length-prefix and zero-pad ``data`` to a whole number of blocks."""
        payload = struct.pack(">I", len(data)) + bytes(data)
        block = self.block_size
        padding = (-len(payload)) % block
        padded = payload + b"\x00" * padding
        return np.frombuffer(padded, dtype=np.uint8).copy()

    def _strip_payload(self, symbols: np.ndarray) -> bytes:
        """Inverse of :meth:`_padded_payload`."""
        raw = symbols.astype(np.uint8).tobytes()
        if len(raw) < _LENGTH_HEADER:
            raise DecodingError("decoded payload shorter than length header")
        (length,) = struct.unpack(">I", raw[:_LENGTH_HEADER])
        body = raw[_LENGTH_HEADER:]
        if length > len(body):
            raise DecodingError("decoded payload truncated")
        return body[:length]

    def stripe_count(self, data_length: int) -> int:
        """Number of blocks needed to encode ``data_length`` payload bytes."""
        total = data_length + _LENGTH_HEADER
        return max(1, -(-total // self.block_size))

    def encode(self, data: bytes) -> List[CodedElement]:
        """Encode arbitrary bytes into ``n`` coded elements.

        The elements concatenate the per-stripe coded symbols, so each
        element has length ``stripe_count * element_size`` bytes.
        """
        symbols = self._padded_payload(data)
        stripes = symbols.reshape(-1, self.block_size)
        outputs: List[List[np.ndarray]] = [[] for _ in range(self.n)]
        for stripe in stripes:
            encoded = self.encode_block(stripe)
            for index, element in enumerate(encoded):
                outputs[index].append(element)
        return [
            CodedElement(index=i, data=np.concatenate(parts).astype(np.uint8).tobytes())
            for i, parts in enumerate(outputs)
        ]

    def decode(self, elements: Sequence[CodedElement]) -> bytes:
        """Decode the original bytes from any sufficient set of elements."""
        if not elements:
            raise DecodingError("no coded elements supplied")
        by_index: Dict[int, np.ndarray] = {}
        for element in elements:
            by_index[element.index] = GF256.as_array(element.data)
        lengths = {arr.size for arr in by_index.values()}
        if len(lengths) != 1:
            raise DecodingError("coded elements have inconsistent lengths")
        (total_length,) = lengths
        if total_length % self.element_size:
            raise DecodingError("coded element length is not a whole number of stripes")
        stripes = total_length // self.element_size
        decoded_blocks = []
        for stripe in range(stripes):
            start = stripe * self.element_size
            stop = start + self.element_size
            stripe_elements = {idx: arr[start:stop] for idx, arr in by_index.items()}
            decoded_blocks.append(self.decode_block(stripe_elements))
        symbols = np.concatenate(decoded_blocks)
        return self._strip_payload(symbols)


class RegeneratingCode(ErasureCode):
    """Base class for codes that additionally support node repair.

    Subclasses must provide the per-block repair primitives; the byte-level
    ``helper_data`` / ``repair`` methods handle striping.
    """

    #: Number of helpers contacted during repair.
    d: int

    @property
    @abstractmethod
    def helper_size(self) -> int:
        """Symbols sent by one helper per block (beta)."""

    @abstractmethod
    def helper_symbols_block(
        self, helper_index: int, helper_element: np.ndarray, failed_index: int
    ) -> np.ndarray:
        """Compute the ``beta`` helper symbols one helper sends for a repair.

        The computation must depend only on the helper's own element and the
        identity of the failed node -- *not* on which other servers end up
        being helpers.  This is the property of the product-matrix codes the
        LDS algorithm relies on (Section II-c of the paper).
        """

    @abstractmethod
    def repair_block(
        self, failed_index: int, helper_data: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        """Rebuild the failed node's element for one block from helper data."""

    @property
    def helper_fraction(self) -> float:
        """Size of one helper message as a fraction of the payload (beta / B)."""
        return self.helper_size / self.block_size

    @property
    def repair_bandwidth_fraction(self) -> float:
        """Total repair download as a fraction of the payload (d * beta / B)."""
        return self.d * self.helper_size / self.block_size

    def helper_data(
        self, helper_index: int, helper_element: bytes, failed_index: int
    ) -> bytes:
        """Byte-level helper computation (handles striping)."""
        element = GF256.as_array(helper_element)
        if element.size % self.element_size:
            raise RepairError("helper element length is not a whole number of stripes")
        stripes = element.size // self.element_size
        pieces = []
        for stripe in range(stripes):
            start = stripe * self.element_size
            chunk = element[start : start + self.element_size]
            pieces.append(self.helper_symbols_block(helper_index, chunk, failed_index))
        return np.concatenate(pieces).astype(np.uint8).tobytes()

    def repair(self, failed_index: int, helper_data: Mapping[int, bytes]) -> CodedElement:
        """Byte-level repair of a coded element from helper responses."""
        if len(helper_data) < self.d:
            raise RepairError(
                f"repair needs at least d={self.d} helpers, got {len(helper_data)}"
            )
        arrays = {idx: GF256.as_array(data) for idx, data in helper_data.items()}
        lengths = {arr.size for arr in arrays.values()}
        if len(lengths) != 1:
            raise RepairError("helper messages have inconsistent lengths")
        (total,) = lengths
        if total % self.helper_size:
            raise RepairError("helper message length is not a whole number of stripes")
        stripes = total // self.helper_size
        pieces = []
        for stripe in range(stripes):
            start = stripe * self.helper_size
            stop = start + self.helper_size
            per_stripe = {idx: arr[start:stop] for idx, arr in arrays.items()}
            pieces.append(self.repair_block(failed_index, per_stripe))
        data = np.concatenate(pieces).astype(np.uint8).tobytes()
        return CodedElement(index=failed_index, data=data)


__all__ = [
    "CodedElement",
    "DecodingError",
    "ErasureCode",
    "RegeneratingCode",
    "RepairError",
]
