"""Replication as a degenerate erasure code.

Replication is the comparison point the paper uses when discussing storage
cost: "If we had used replication in L2 ... the L2 storage cost per object
would have been n2 = 100" (Section V, discussion of Figure 6).  Modelling
it through the same :class:`~repro.codes.base.ErasureCode` interface lets
the benchmarks swap it in for the regenerating code without touching the
protocol code.
"""

from __future__ import annotations

from typing import List, Mapping

import numpy as np

from repro.codes.base import DecodingError, ErasureCode


class ReplicationCode(ErasureCode):
    """An (n, 1) replication code: every server stores the full value."""

    def __init__(self, n: int, block_size: int = 64) -> None:
        if n < 1:
            raise ValueError("replication requires at least one server")
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.n = n
        self.k = 1
        self._block_size = block_size

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def element_size(self) -> int:
        return self._block_size

    def encode_block(self, block: np.ndarray) -> List[np.ndarray]:
        block = np.asarray(block, dtype=np.uint8)
        if block.size != self.block_size:
            raise ValueError("block has wrong size")
        return [block.copy() for _ in range(self.n)]

    def decode_block(self, elements: Mapping[int, np.ndarray]) -> np.ndarray:
        if not elements:
            raise DecodingError("replication decode requires at least one element")
        for index, element in elements.items():
            if not 0 <= index < self.n:
                raise DecodingError(f"invalid replica index {index}")
            return np.asarray(element, dtype=np.uint8).copy()
        raise DecodingError("unreachable")  # pragma: no cover

    def __repr__(self) -> str:
        return f"ReplicationCode(n={self.n})"


__all__ = ["ReplicationCode"]
