"""Reed-Solomon (MDS) codes over GF(2^8).

An ``(n, k)`` Reed-Solomon code encodes ``k`` payload symbols into ``n``
coded symbols such that any ``k`` of them suffice to decode.  The paper
uses Reed-Solomon codes as the representative of "popular erasure codes"
that regenerating codes are compared against: they are storage-optimal
(MSR-like) but a repair or recreation of one symbol requires downloading
``k`` full symbols.

The implementation uses a Vandermonde generator matrix; decoding inverts
the k x k submatrix formed by the surviving rows.  A systematic variant is
available so that the first ``k`` coded symbols equal the payload.
"""

from __future__ import annotations

from typing import List, Mapping

import numpy as np

from repro.codes.base import DecodingError, ErasureCode
from repro.gf.builders import systematic_vandermonde, vandermonde_matrix
from repro.gf.matrix import GFMatrix, SingularMatrixError


class ReedSolomonCode(ErasureCode):
    """An (n, k) MDS code built from a Vandermonde generator matrix."""

    def __init__(self, n: int, k: int, systematic: bool = False) -> None:
        if not 1 <= k <= n:
            raise ValueError("Reed-Solomon requires 1 <= k <= n")
        if n > 255:
            raise ValueError("GF(2^8) Reed-Solomon supports at most n = 255")
        self.n = n
        self.k = k
        self.systematic = systematic
        builder = systematic_vandermonde if systematic else vandermonde_matrix
        self.generator: GFMatrix = builder(n, k)

    @property
    def block_size(self) -> int:
        return self.k

    @property
    def element_size(self) -> int:
        return 1

    # -- block-level codec --------------------------------------------------

    def encode_block(self, block: np.ndarray) -> List[np.ndarray]:
        block = np.asarray(block, dtype=np.uint8)
        if block.size != self.k:
            raise ValueError(f"block must contain k={self.k} symbols")
        codeword = self.generator.matvec(block)
        return [np.array([codeword[i]], dtype=np.uint8) for i in range(self.n)]

    def decode_block(self, elements: Mapping[int, np.ndarray]) -> np.ndarray:
        if len(elements) < self.k:
            raise DecodingError(
                f"Reed-Solomon decode requires k={self.k} elements, got {len(elements)}"
            )
        indices = sorted(elements)[: self.k]
        for index in indices:
            if not 0 <= index < self.n:
                raise DecodingError(f"invalid symbol index {index}")
        submatrix = self.generator.submatrix(indices)
        received = np.array(
            [int(np.asarray(elements[i], dtype=np.uint8).reshape(-1)[0]) for i in indices],
            dtype=np.uint8,
        )
        try:
            return submatrix.solve(received)
        except SingularMatrixError as exc:  # pragma: no cover - defensive
            raise DecodingError("received symbols do not span the payload") from exc

    # -- cost accounting ----------------------------------------------------

    @property
    def read_fraction(self) -> float:
        """Download needed to recreate the value: k symbols of size 1/k each."""
        return 1.0

    @property
    def repair_download_fraction(self) -> float:
        """Download needed to rebuild one symbol (naive RS repair reads k symbols)."""
        return 1.0

    def __repr__(self) -> str:
        return f"ReedSolomonCode(n={self.n}, k={self.k}, systematic={self.systematic})"


__all__ = ["ReedSolomonCode"]
