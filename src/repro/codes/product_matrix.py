"""Product-matrix regenerating codes (Rashmi, Shah and Kumar, 2011).

These are the exact-repair code constructions the paper relies on
(reference [25]).  Two constructions are implemented:

* :class:`ProductMatrixMBRCode` -- the minimum-bandwidth-regenerating
  construction for any ``(n, k, d)`` with ``k <= d <= n - 1``; this is the
  code the LDS algorithm uses in its back-end layer.
* :class:`ProductMatrixMSRCode` -- the minimum-storage-regenerating
  construction at ``d = 2k - 2``; used by the MBR-vs-MSR ablation
  (Remarks 1 and 2 of the paper).

Both codes share the product-matrix structure: node ``i`` stores the row
vector ``psi_i @ M`` where ``psi_i`` is row ``i`` of a fixed encoding
matrix and ``M`` is a message matrix filled with the payload symbols.  The
crucial property for LDS is that during repair a helper node computes its
helper symbol from its own content and the *identity of the failed node
only* -- it does not need to know which other nodes act as helpers
(Section II-c of the paper).
"""

from __future__ import annotations

from typing import List, Mapping

import numpy as np

from repro.codes.base import DecodingError, RegeneratingCode, RepairError
from repro.codes.regenerating import (
    RegeneratingCodeParameters,
    mbr_parameters,
    msr_parameters,
)
from repro.gf.builders import vandermonde_matrix
from repro.gf.gf256 import GF256
from repro.gf.matrix import GFMatrix, SingularMatrixError


class ProductMatrixMBRCode(RegeneratingCode):
    """Exact-repair MBR code via the product-matrix construction.

    Parameters ``(n, k, d)`` with ``k <= d <= n - 1`` and ``n <= 255``.
    Per block: ``alpha = d`` symbols per node, ``beta = 1`` helper symbol,
    and file size ``B = k*d - k*(k-1)/2`` symbols.

    The message matrix is the symmetric ``d x d`` matrix::

        M = [[ S,   T ],
             [ T^t, 0 ]]

    where ``S`` is ``k x k`` symmetric (``k(k+1)/2`` payload symbols) and
    ``T`` is ``k x (d-k)`` (``k(d-k)`` payload symbols).  The encoding
    matrix ``Psi`` is an ``n x d`` Vandermonde matrix, so any ``d`` rows of
    ``Psi`` and any ``k`` rows of its first ``k`` columns are invertible.
    """

    def __init__(self, n: int, k: int, d: int) -> None:
        if not 1 <= k <= d <= n - 1:
            raise ValueError("PM-MBR requires 1 <= k <= d <= n - 1")
        if n > 255:
            raise ValueError("GF(2^8) product-matrix codes support at most n = 255")
        self.n = n
        self.k = k
        self.d = d
        self._alpha = d
        self._beta = 1
        self._file_size = k * d - (k * (k - 1)) // 2
        self.encoding_matrix: GFMatrix = vandermonde_matrix(n, d)

    # -- size properties ----------------------------------------------------

    @property
    def parameters(self) -> RegeneratingCodeParameters:
        """The ``{(n, k, d)(alpha, beta)}`` parameter tuple at the MBR point."""
        return mbr_parameters(self.n, self.k, self.d)

    @property
    def block_size(self) -> int:
        return self._file_size

    @property
    def element_size(self) -> int:
        return self._alpha

    @property
    def helper_size(self) -> int:
        return self._beta

    # -- message-matrix packing ----------------------------------------------

    def _message_matrix(self, block: np.ndarray) -> GFMatrix:
        """Pack ``B`` payload symbols into the symmetric d x d message matrix."""
        block = np.asarray(block, dtype=np.uint8)
        if block.size != self._file_size:
            raise ValueError(
                f"block must contain B={self._file_size} symbols, got {block.size}"
            )
        k, d = self.k, self.d
        matrix = np.zeros((d, d), dtype=np.uint8)
        cursor = 0
        # Fill the upper triangle (incl. diagonal) of the k x k block S.
        for i in range(k):
            for j in range(i, k):
                matrix[i, j] = block[cursor]
                matrix[j, i] = block[cursor]
                cursor += 1
        # Fill T (k x (d - k)) and its transpose.
        for i in range(k):
            for j in range(k, d):
                matrix[i, j] = block[cursor]
                matrix[j, i] = block[cursor]
                cursor += 1
        return GFMatrix(matrix)

    def _unpack_message_matrix(self, s_block: GFMatrix, t_block: GFMatrix) -> np.ndarray:
        """Inverse of :meth:`_message_matrix` given recovered S and T."""
        k, d = self.k, self.d
        block = np.zeros(self._file_size, dtype=np.uint8)
        cursor = 0
        for i in range(k):
            for j in range(i, k):
                block[cursor] = s_block[i, j]
                cursor += 1
        for i in range(k):
            for j in range(d - k):
                block[cursor] = t_block[i, j]
                cursor += 1
        return block

    # -- encode / decode ------------------------------------------------------

    def encode_block(self, block: np.ndarray) -> List[np.ndarray]:
        message = self._message_matrix(block)
        codeword = self.encoding_matrix.matmul(message)
        return [codeword.row(i) for i in range(self.n)]

    def decode_block(self, elements: Mapping[int, np.ndarray]) -> np.ndarray:
        if len(elements) < self.k:
            raise DecodingError(
                f"PM-MBR decode requires k={self.k} elements, got {len(elements)}"
            )
        indices = sorted(elements)[: self.k]
        for index in indices:
            if not 0 <= index < self.n:
                raise DecodingError(f"invalid element index {index}")
        k, d = self.k, self.d
        received = np.vstack(
            [np.asarray(elements[i], dtype=np.uint8).reshape(-1) for i in indices]
        )
        if received.shape[1] != self._alpha:
            raise DecodingError("coded elements have the wrong length")
        psi = self.encoding_matrix.submatrix(indices)  # k x d
        phi = psi.submatrix(range(k), range(k))  # k x k, invertible
        try:
            phi_inverse = phi.inverse()
        except SingularMatrixError as exc:  # pragma: no cover - defensive
            raise DecodingError("selected rows are not decodable") from exc
        if d > k:
            delta = psi.submatrix(range(k), range(k, d))  # k x (d - k)
            # The last d - k columns of the received matrix equal Phi @ T.
            phi_t = GFMatrix(received[:, k:d].copy())
            t_block = phi_inverse.matmul(phi_t)
            # The first k columns equal Phi @ S + Delta @ T^t.
            correction = delta.matmul(t_block.transpose())
            phi_s = GFMatrix(received[:, :k].copy()) + correction
        else:
            t_block = GFMatrix.zeros(k, 0)
            phi_s = GFMatrix(received[:, :k].copy())
        s_block = phi_inverse.matmul(phi_s)
        return self._unpack_message_matrix(s_block, t_block)

    # -- repair ---------------------------------------------------------------

    def helper_symbols_block(
        self, helper_index: int, helper_element: np.ndarray, failed_index: int
    ) -> np.ndarray:
        if not 0 <= helper_index < self.n or not 0 <= failed_index < self.n:
            raise RepairError("helper or failed index out of range")
        element = np.asarray(helper_element, dtype=np.uint8).reshape(-1)
        if element.size != self._alpha:
            raise RepairError("helper element has the wrong length")
        failed_row = self.encoding_matrix.row(failed_index)
        # Helper j sends psi_j M psi_f^t, a single symbol.
        return np.array([GF256.dot(element, failed_row)], dtype=np.uint8)

    def repair_block(
        self, failed_index: int, helper_data: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        helpers = sorted(idx for idx in helper_data if idx != failed_index)[: self.d]
        if len(helpers) < self.d:
            raise RepairError(
                f"PM-MBR repair requires d={self.d} distinct helpers, got {len(helpers)}"
            )
        psi_helpers = self.encoding_matrix.submatrix(helpers)  # d x d
        received = np.array(
            [int(np.asarray(helper_data[i], dtype=np.uint8).reshape(-1)[0]) for i in helpers],
            dtype=np.uint8,
        )
        try:
            # Psi_helpers @ (M psi_f^t) = received  =>  M psi_f^t.
            column = psi_helpers.solve(received)
        except SingularMatrixError as exc:  # pragma: no cover - defensive
            raise RepairError("helper rows are not invertible") from exc
        # Because M is symmetric, (M psi_f^t)^t == psi_f M, the failed element.
        return np.asarray(column, dtype=np.uint8).reshape(-1)

    def __repr__(self) -> str:
        return f"ProductMatrixMBRCode(n={self.n}, k={self.k}, d={self.d})"


class ProductMatrixMSRCode(RegeneratingCode):
    """Exact-repair MSR code via the product-matrix construction (d = 2k - 2).

    Per block: ``alpha = k - 1``, ``beta = 1`` and ``B = k (k - 1)`` (so the
    code is storage-optimal, ``B = k * alpha``).  The message matrix is::

        M = [[ S1 ],
             [ S2 ]]

    with ``S1`` and ``S2`` symmetric ``(k-1) x (k-1)`` matrices.  The
    encoding matrix is ``Psi = [Phi, Lambda Phi]`` where ``Phi`` is an
    ``n x (k-1)`` Vandermonde matrix and ``Lambda`` a diagonal matrix of
    distinct non-zero constants; with ``lambda_i = x_i^{k-1}`` the whole
    ``Psi`` is an ``n x (2k-2)`` Vandermonde matrix.
    """

    def __init__(self, n: int, k: int) -> None:
        if k < 2:
            raise ValueError("PM-MSR requires k >= 2")
        d = 2 * k - 2
        if d > n - 1:
            raise ValueError("PM-MSR at d = 2k - 2 requires n >= 2k - 1")
        if n > 255:
            raise ValueError("GF(2^8) product-matrix codes support at most n = 255")
        self.n = n
        self.k = k
        self.d = d
        self._alpha = k - 1
        self._beta = 1
        self._file_size = k * (k - 1)
        # Full Vandermonde Psi (n x d); Phi is its first k-1 columns and
        # lambda_i = x_i^{k-1} where x_i is the i-th evaluation point.
        self.encoding_matrix: GFMatrix = vandermonde_matrix(n, d)
        self._points = [GF256.exp(i) for i in range(n)]
        self._lambdas = [GF256.pow(x, k - 1) for x in self._points]
        if len(set(self._lambdas)) != n:
            raise ValueError("encoding points do not give distinct lambda values")

    # -- size properties ------------------------------------------------------

    @property
    def parameters(self) -> RegeneratingCodeParameters:
        """The ``{(n, k, d)(alpha, beta)}`` parameter tuple at the MSR point."""
        return msr_parameters(self.n, self.k, self.d)

    @property
    def block_size(self) -> int:
        return self._file_size

    @property
    def element_size(self) -> int:
        return self._alpha

    @property
    def helper_size(self) -> int:
        return self._beta

    @property
    def phi(self) -> GFMatrix:
        """The n x (k-1) matrix Phi (first k-1 columns of Psi)."""
        return self.encoding_matrix.submatrix(range(self.n), range(self.k - 1))

    # -- message-matrix packing ------------------------------------------------

    def _symmetric_from_symbols(self, symbols: np.ndarray, size: int) -> np.ndarray:
        matrix = np.zeros((size, size), dtype=np.uint8)
        cursor = 0
        for i in range(size):
            for j in range(i, size):
                matrix[i, j] = symbols[cursor]
                matrix[j, i] = symbols[cursor]
                cursor += 1
        return matrix

    def _symbols_from_symmetric(self, matrix: GFMatrix) -> List[int]:
        size = matrix.rows
        symbols = []
        for i in range(size):
            for j in range(i, size):
                symbols.append(int(matrix[i, j]))
        return symbols

    def _message_matrix(self, block: np.ndarray) -> GFMatrix:
        block = np.asarray(block, dtype=np.uint8)
        if block.size != self._file_size:
            raise ValueError(
                f"block must contain B={self._file_size} symbols, got {block.size}"
            )
        half = (self.k * (self.k - 1)) // 2
        s1 = self._symmetric_from_symbols(block[:half], self.k - 1)
        s2 = self._symmetric_from_symbols(block[half:], self.k - 1)
        return GFMatrix(np.vstack([s1, s2]))

    # -- encode / decode ---------------------------------------------------------

    def encode_block(self, block: np.ndarray) -> List[np.ndarray]:
        message = self._message_matrix(block)
        codeword = self.encoding_matrix.matmul(message)
        return [codeword.row(i) for i in range(self.n)]

    def decode_block(self, elements: Mapping[int, np.ndarray]) -> np.ndarray:
        if len(elements) < self.k:
            raise DecodingError(
                f"PM-MSR decode requires k={self.k} elements, got {len(elements)}"
            )
        indices = sorted(elements)[: self.k]
        for index in indices:
            if not 0 <= index < self.n:
                raise DecodingError(f"invalid element index {index}")
        k = self.k
        alpha = self._alpha
        received = GFMatrix(
            np.vstack(
                [np.asarray(elements[i], dtype=np.uint8).reshape(-1) for i in indices]
            )
        )
        if received.cols != alpha:
            raise DecodingError("coded elements have the wrong length")
        phi_dc = self.phi.submatrix(indices)  # k x (k-1)
        lambdas = [self._lambdas[i] for i in indices]
        # C = Phi_DC S1 Phi_DC^t + Lambda_DC Phi_DC S2 Phi_DC^t = P + Lambda Q.
        c_matrix = received.matmul(phi_dc.transpose())  # k x k
        p_matrix = np.zeros((k, k), dtype=np.uint8)
        q_matrix = np.zeros((k, k), dtype=np.uint8)
        for i in range(k):
            for j in range(k):
                if i == j:
                    continue
                # Solve P_ij + lambda_i Q_ij = C_ij ; P_ij + lambda_j Q_ij = C_ji.
                numerator = GF256.add(int(c_matrix[i, j]), int(c_matrix[j, i]))
                denominator = GF256.add(lambdas[i], lambdas[j])
                if denominator == 0:
                    raise DecodingError("lambda values are not distinct")
                q_value = GF256.div(numerator, denominator)
                p_value = GF256.add(int(c_matrix[i, j]), GF256.mul(lambdas[i], q_value))
                q_matrix[i, j] = q_value
                p_matrix[i, j] = p_value
        s1 = self._recover_symmetric(p_matrix, phi_dc)
        s2 = self._recover_symmetric(q_matrix, phi_dc)
        half = (k * (k - 1)) // 2
        block = np.zeros(self._file_size, dtype=np.uint8)
        block[:half] = self._symbols_from_symmetric(s1)
        block[half:] = self._symbols_from_symmetric(s2)
        return block

    def _recover_symmetric(self, off_diagonal: np.ndarray, phi_dc: GFMatrix) -> GFMatrix:
        """Recover a symmetric S from the off-diagonal of Phi_DC S Phi_DC^t.

        Row ``i`` of the product restricted to columns ``j != i`` equals
        ``phi_i S`` multiplied by the (k-1) x (k-1) invertible matrix formed
        by the other rows of ``Phi_DC``; inverting it yields ``phi_i S`` for
        every i, and stacking k-1 of those rows recovers S.
        """
        k = self.k
        rows_phi_s = np.zeros((k, self.k - 1), dtype=np.uint8)
        for i in range(k):
            other_rows = [j for j in range(k) if j != i]
            phi_others = phi_dc.submatrix(other_rows)  # (k-1) x (k-1)
            # Values phi_i S phi_j^t for j != i.
            rhs = np.array([int(off_diagonal[i, j]) for j in other_rows], dtype=np.uint8)
            try:
                # phi_others @ (S phi_i^t) = rhs  =>  S phi_i^t, i.e. (phi_i S)^t.
                rows_phi_s[i] = phi_others.solve(rhs)
            except SingularMatrixError as exc:  # pragma: no cover - defensive
                raise DecodingError("PM-MSR decoding matrix is singular") from exc
        # Any k-1 rows of Phi_DC are invertible; use the first k-1.
        selection = list(range(self.k - 1))
        phi_square = phi_dc.submatrix(selection)
        stacked = GFMatrix(rows_phi_s[selection, :].copy())
        return phi_square.inverse().matmul(stacked)

    # -- repair --------------------------------------------------------------------

    def helper_symbols_block(
        self, helper_index: int, helper_element: np.ndarray, failed_index: int
    ) -> np.ndarray:
        if not 0 <= helper_index < self.n or not 0 <= failed_index < self.n:
            raise RepairError("helper or failed index out of range")
        element = np.asarray(helper_element, dtype=np.uint8).reshape(-1)
        if element.size != self._alpha:
            raise RepairError("helper element has the wrong length")
        failed_phi = self.phi.row(failed_index)
        # Helper j sends psi_j M phi_f^t, a single symbol.
        return np.array([GF256.dot(element, failed_phi)], dtype=np.uint8)

    def repair_block(
        self, failed_index: int, helper_data: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        helpers = sorted(idx for idx in helper_data if idx != failed_index)[: self.d]
        if len(helpers) < self.d:
            raise RepairError(
                f"PM-MSR repair requires d={self.d} distinct helpers, got {len(helpers)}"
            )
        psi_helpers = self.encoding_matrix.submatrix(helpers)  # d x d
        received = np.array(
            [int(np.asarray(helper_data[i], dtype=np.uint8).reshape(-1)[0]) for i in helpers],
            dtype=np.uint8,
        )
        try:
            column = psi_helpers.solve(received)  # M phi_f^t, length d = 2(k-1)
        except SingularMatrixError as exc:  # pragma: no cover - defensive
            raise RepairError("helper rows are not invertible") from exc
        half = self.k - 1
        s1_phi = column[:half]
        s2_phi = column[half:]
        lam = self._lambdas[failed_index]
        # Node content: phi_f S1 + lambda_f phi_f S2 = (S1 phi_f^t)^t + lambda_f (S2 phi_f^t)^t.
        return np.bitwise_xor(s1_phi, GF256.scale_vec(lam, s2_phi))

    def __repr__(self) -> str:
        return f"ProductMatrixMSRCode(n={self.n}, k={self.k}, d={self.d})"


__all__ = ["ProductMatrixMBRCode", "ProductMatrixMSRCode"]
