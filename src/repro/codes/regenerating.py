"""The regenerating-code parameter framework of Dimakis et al. [9].

A regenerating code with parameters ``{(n, k, d)(alpha, beta)}`` stores a
file of ``B`` symbols across ``n`` servers with ``alpha`` symbols per
server.  Any ``k`` servers suffice to decode the file; a failed server is
repaired by downloading ``beta`` symbols from each of any ``d >= k``
surviving servers.  The achievable file size is bounded by the cut-set
bound

    B <= sum_{i=0}^{k-1} min(alpha, (d - i) * beta).

Two extreme operating points matter for the paper:

* **MSR** (minimum storage): ``B = k * alpha``, i.e. storage-optimal like
  Reed-Solomon, but with ``alpha = (d - k + 1) * beta``.
* **MBR** (minimum bandwidth): ``alpha = d * beta`` so that a repair
  downloads exactly one coded element's worth of data.  The file size is
  ``B_MBR = sum_{i=0}^{k-1} (d - i) * beta = beta * k * (2d - k + 1) / 2``.

LDS uses the MBR point, which is what makes the read cost ``Theta(1)``
when a value has to be rebuilt all the way from the back-end layer
(Remark 1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction


def cut_set_bound(k: int, d: int, alpha: int, beta: int) -> int:
    """Return the maximum file size B supported by the cut-set bound."""
    if k < 1 or d < k:
        raise ValueError("cut-set bound requires 1 <= k <= d")
    if alpha < 0 or beta < 0:
        raise ValueError("alpha and beta must be non-negative")
    return sum(min(alpha, (d - i) * beta) for i in range(k))


@dataclass(frozen=True)
class RegeneratingCodeParameters:
    """A full regenerating-code parameter tuple ``{(n, k, d)(alpha, beta)}``.

    All sizes are in symbols.  ``file_size`` is the supported B, which must
    not exceed the cut-set bound.
    """

    n: int
    k: int
    d: int
    alpha: int
    beta: int
    file_size: int

    def __post_init__(self) -> None:
        if not 1 <= self.k <= self.d <= self.n - 1:
            raise ValueError(
                "regenerating codes require 1 <= k <= d <= n - 1 "
                f"(got n={self.n}, k={self.k}, d={self.d})"
            )
        if self.alpha < 1 or self.beta < 1:
            raise ValueError("alpha and beta must be positive")
        bound = cut_set_bound(self.k, self.d, self.alpha, self.beta)
        if self.file_size > bound:
            raise ValueError(
                f"file size {self.file_size} exceeds the cut-set bound {bound}"
            )

    # -- normalised cost fractions (value size = 1 unit) --------------------

    @property
    def storage_per_node(self) -> Fraction:
        """Storage per node as a fraction of the file size (alpha / B)."""
        return Fraction(self.alpha, self.file_size)

    @property
    def total_storage(self) -> Fraction:
        """Total storage across n nodes as a fraction of the file size."""
        return Fraction(self.n * self.alpha, self.file_size)

    @property
    def helper_per_node(self) -> Fraction:
        """Helper message size as a fraction of the file size (beta / B)."""
        return Fraction(self.beta, self.file_size)

    @property
    def repair_bandwidth(self) -> Fraction:
        """Total repair download as a fraction of the file size (d*beta / B)."""
        return Fraction(self.d * self.beta, self.file_size)

    @property
    def is_mbr(self) -> bool:
        """True when the parameters sit at the minimum-bandwidth point."""
        return (
            self.alpha == self.d * self.beta
            and self.file_size == cut_set_bound(self.k, self.d, self.alpha, self.beta)
        )

    @property
    def is_msr(self) -> bool:
        """True when the parameters sit at the minimum-storage point."""
        return (
            self.file_size == self.k * self.alpha
            and self.alpha == (self.d - self.k + 1) * self.beta
        )


def mbr_parameters(n: int, k: int, d: int, beta: int = 1) -> RegeneratingCodeParameters:
    """Return the MBR-point parameters for ``(n, k, d)`` with unit beta.

    At the MBR point ``alpha = d * beta`` and
    ``B = beta * k * (2d - k + 1) / 2`` (Section II-c of the paper).
    """
    alpha = d * beta
    numerator = beta * k * (2 * d - k + 1)
    if numerator % 2:
        raise ValueError("MBR file size is not integral; use an even beta")
    file_size = numerator // 2
    return RegeneratingCodeParameters(n=n, k=k, d=d, alpha=alpha, beta=beta, file_size=file_size)


def msr_parameters(n: int, k: int, d: int, beta: int = 1) -> RegeneratingCodeParameters:
    """Return the MSR-point parameters for ``(n, k, d)`` with unit beta.

    At the MSR point ``alpha = (d - k + 1) * beta`` and ``B = k * alpha``.
    """
    alpha = (d - k + 1) * beta
    file_size = k * alpha
    return RegeneratingCodeParameters(n=n, k=k, d=d, alpha=alpha, beta=beta, file_size=file_size)


__all__ = [
    "RegeneratingCodeParameters",
    "cut_set_bound",
    "mbr_parameters",
    "msr_parameters",
]
