"""Forward time-domain taint analysis over function bodies.

Every time-valued expression in this codebase lives in exactly one
*domain*:

* ``shard-local`` -- a per-shard simulator's clock (``*.simulator.now``,
  ``peek_time()``, ``to_local(...)``);
* ``global`` -- the kernel's merged clock (``kernel.now``,
  ``shard_now(...)``, ``to_global(...)``, ``global_now``);
* ``wall-clock`` -- host time (the ND02 call set), which must never meet
  virtual time at all.

The two virtual domains differ by a per-source *offset*; comparing or
mixing them without that translation is the repo's worst historical bug
class (PR 3's missing-offset raise, PR 7's probe-rearm-in-local-past
clamp).  This engine classifies expressions, propagates the domain
through assignments, branches, ``self``-attribute state, returns, and
call boundaries, and records a :class:`TaintEvent` wherever two
different domains meet:

* ``compare`` -- a comparison (or ``max``/``min``) across domains;
* ``arith``   -- ``+``/``-`` across domains that is *not* the sanctioned
  offset translation (``local + offset`` reads as a translation to
  global, ``global - offset`` back to local);
* ``schedule`` -- a time argument handed to a scheduler expecting the
  other domain (``kernel.schedule_at``/``schedule_probe``/
  ``schedule_on_shard`` take global time; a raw ``simulator.schedule_at``
  takes local time), or wall-clock time handed to any scheduler.

Interprocedural propagation is summary-based and runs to a fixpoint:
each function exports its *return domain* and, for every parameter, the
domain the body *expects* of it (because the parameter is compared,
mixed, or scheduled against that domain).  Call sites then check known
argument domains against callee expectations -- that is how a
shard-local time laundered through a helper still gets flagged at the
call that injects it.

Modules that legitimately own the translation (``net/``, the kernel and
its runtime sanitizer -- :attr:`ModuleContext.is_simulator_layer`) are
analysed for summaries but never reported against, mirroring SD03.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.lint.callgraph import FunctionInfo, ProjectIndex
from repro.lint.nondeterminism import _WALL_CLOCK

#: The three concrete time domains.
LOCAL = "shard-local"
GLOBAL = "global"
WALL = "wall-clock"

#: Abstract value: a concrete domain, a parameter tag, or unknown (None).
Value = Union[str, Tuple[str, int], None]

#: Parameter names that carry their domain in their name, the naming
#: convention the kernel/sanitizer layer already follows.
_PARAM_DOMAINS = {
    "local_time": LOCAL, "local_now": LOCAL,
    "global_time": GLOBAL, "global_now": GLOBAL,
}

#: Receiver tails that identify whose clock ``<recv>.now`` is.
_LOCAL_OWNERS = ("simulator", "sim")
_KERNEL_TOKEN = "kernel"

#: Calls whose *result* has a fixed domain.
_LOCAL_CALLS = frozenset({"peek_time", "to_local"})
_GLOBAL_CALLS = frozenset({"shard_now", "to_global"})

#: Scheduler sinks: method name -> (index of the time argument, its
#: keyword name, domain expected -- None means "depends on receiver").
_SCHEDULE_SINKS = {
    "schedule_at": (0, "time", None),
    "schedule_probe": (0, "time", GLOBAL),
    "schedule_on_shard": (1, "at", GLOBAL),
}


def _is_param(value: Value) -> bool:
    return isinstance(value, tuple)


def _tail(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_offset_expr(node: ast.expr) -> bool:
    """Does this expression read as a per-source epoch offset?"""
    if isinstance(node, ast.Call):
        node = node.func
    tail = _tail(node)
    return tail is not None and "offset" in tail.lower()


@dataclass(frozen=True)
class TaintEvent:
    """One cross-domain meeting point, attached to an AST node."""

    kind: str  # "compare" | "arith" | "schedule"
    path: str
    line: int
    col: int
    left: str
    right: str
    detail: str = ""

    @property
    def sort_key(self):
        return (self.path, self.line, self.col, self.kind, self.detail)


@dataclass
class Summary:
    """Interprocedural facts exported by one function."""

    return_domain: Value = None
    #: param index -> (expected domain, event kind that established it).
    expectations: Dict[int, Tuple[str, str]] = field(default_factory=dict)

    def key(self):
        return (self.return_domain, tuple(sorted(self.expectations.items())))


class TimeflowAnalysis:
    """Project-wide fixpoint over function summaries, then event collection."""

    #: Fixpoint safety valve; summaries converge in 2-3 rounds in practice.
    MAX_ROUNDS = 8

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.summaries: Dict[FunctionInfo, Summary] = {
            info: Summary() for info in index.functions}
        #: (ctx.path, class) -> {attr: Value} -- ``self.x`` time state.
        self.attr_domains: Dict[Tuple[str, str], Dict[str, Value]] = {}
        self.events: List[TaintEvent] = []
        self._run()

    # -- driver ---------------------------------------------------------------

    def _run(self) -> None:
        for _ in range(self.MAX_ROUNDS):
            changed = False
            for info in self.index.functions:
                summary = _FunctionPass(self, info, collect=False).run()
                if summary.key() != self.summaries[info].key():
                    self.summaries[info] = summary
                    changed = True
            if not changed:
                break
        seen = set()
        for info in self.index.functions:
            if info.ctx.is_simulator_layer:
                continue  # the translation layer is allowed to mix
            final = _FunctionPass(self, info, collect=True)
            final.run()
            for event in final.events:
                if event.sort_key not in seen:
                    seen.add(event.sort_key)
                    self.events.append(event)
        self.events.sort(key=lambda e: e.sort_key)

    # -- shared attribute state ----------------------------------------------

    def attr_value(self, info: FunctionInfo, attr: str) -> Value:
        if info.cls is None:
            return None
        return self.attr_domains.get((info.ctx.path, info.cls), {}).get(attr)

    def set_attr(self, info: FunctionInfo, attr: str, value: Value) -> None:
        if info.cls is None or _is_param(value):
            return
        store = self.attr_domains.setdefault((info.ctx.path, info.cls), {})
        prior = store.get(attr, "<unset>")
        if prior == "<unset>":
            store[attr] = value
        elif prior != value:
            store[attr] = None  # conflicting writes poison the attribute


class _FunctionPass:
    """One forward walk of one function body."""

    def __init__(self, analysis: TimeflowAnalysis, info: FunctionInfo,
                 collect: bool) -> None:
        self.analysis = analysis
        self.info = info
        self.ctx = info.ctx
        self.collect = collect
        self.env: Dict[str, Value] = {}
        self.summary = Summary()
        self.events: List[TaintEvent] = []
        self._returns: List[Value] = []
        for i, name in enumerate(info.params):
            self.env[name] = _PARAM_DOMAINS.get(name, ("param", i))

    def run(self) -> Summary:
        self._walk(self.info.body)
        returned = {None if _is_param(v) else v for v in self._returns}
        if len(returned) == 1:
            self.summary.return_domain = returned.pop()
        return self.summary

    # -- events / expectations ------------------------------------------------

    def _event(self, node: ast.AST, kind: str, left: str, right: str,
               detail: str = "") -> None:
        if self.collect:
            self.events.append(TaintEvent(
                kind=kind, path=self.ctx.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0) + 1,
                left=left, right=right, detail=detail))

    def _expect(self, value: Value, domain: str, kind: str) -> None:
        """The body requires ``value`` (a parameter) to be ``domain``."""
        if _is_param(value) and domain in (LOCAL, GLOBAL):
            index = value[1]
            if index not in self.summary.expectations:
                self.summary.expectations[index] = (domain, kind)

    def _meet(self, node: ast.AST, kind: str, a: Value, b: Value,
              detail: str = "") -> None:
        """Two values meet in a comparison/arithmetic context."""
        if a in (LOCAL, GLOBAL, WALL) and b in (LOCAL, GLOBAL, WALL):
            if a != b:
                self._event(node, kind, a, b, detail)
        elif _is_param(a) and b in (LOCAL, GLOBAL):
            self._expect(a, b, kind)
        elif _is_param(b) and a in (LOCAL, GLOBAL):
            self._expect(b, a, kind)

    # -- statement walk -------------------------------------------------------

    def _walk(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._value(stmt.value)
            for target in stmt.targets:
                self._bind(target, value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._value(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            current = self._read_target(stmt.target)
            incoming = self._value(stmt.value)
            if isinstance(stmt.op, (ast.Add, ast.Sub)):
                result = self._combine(stmt, stmt.op, current, incoming,
                                       stmt.target, stmt.value)
                self._bind(stmt.target, result)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._returns.append(self._value(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self._value(stmt.value)
        elif isinstance(stmt, ast.If):
            self._value(stmt.test)
            before = dict(self.env)
            self._walk(stmt.body)
            after_body = self.env
            self.env = dict(before)
            self._walk(stmt.orelse)
            merged = {}
            for name in sorted(set(after_body) | set(self.env)):
                a, b = after_body.get(name), self.env.get(name)
                merged[name] = a if a == b else None
            self.env = merged
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._value(stmt.iter)
            # Two passes so loop-carried assignments stabilise.
            self._walk(stmt.body)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._value(stmt.test)
            self._walk(stmt.body)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._value(item.context_expr)
            self._walk(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._walk(stmt.body)
            for handler in stmt.handlers:
                self._walk(handler.body)
            self._walk(stmt.orelse)
            self._walk(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            return  # separate scopes, analysed on their own
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._value(child)

    def _bind(self, target: ast.expr, value: Value) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self":
            self.analysis.set_attr(self.info, target.attr, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, None)

    def _read_target(self, target: ast.expr) -> Value:
        if isinstance(target, ast.Name):
            return self.env.get(target.id)
        if isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self":
            return self.analysis.attr_value(self.info, target.attr)
        return None

    # -- expression evaluation ------------------------------------------------

    def _value(self, node: ast.expr) -> Value:
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            return self._attribute(node)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.BinOp):
            left = self._value(node.left)
            right = self._value(node.right)
            if isinstance(node.op, (ast.Add, ast.Sub)):
                return self._combine(node, node.op, left, right,
                                     node.left, node.right)
            return None
        if isinstance(node, ast.Compare):
            values = [(node.left, self._value(node.left))]
            values += [(c, self._value(c)) for c in node.comparators]
            for i in range(len(values) - 1):
                (_, a), (n, b) = values[i], values[i + 1]
                self._meet(n, "compare", a, b)
            return None
        if isinstance(node, ast.IfExp):
            self._value(node.test)
            a, b = self._value(node.body), self._value(node.orelse)
            return a if a == b else None
        if isinstance(node, ast.BoolOp):
            for v in node.values:
                self._value(v)
            return None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self._value(element)
            return None
        if isinstance(node, ast.Dict):
            for k in node.keys:
                if k is not None:
                    self._value(k)
            for v in node.values:
                self._value(v)
            return None
        if isinstance(node, ast.UnaryOp):
            return self._value(node.operand)
        if isinstance(node, ast.Subscript):
            self._value(node.value)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp, ast.Lambda)):
            return None  # nested scopes: out of this pass's reach
        if isinstance(node, ast.Starred):
            return self._value(node.value)
        return None

    def _attribute(self, node: ast.Attribute) -> Value:
        if node.attr == "global_now":
            return GLOBAL
        if node.attr == "now":
            owner_tail = _tail(node.value)
            if owner_tail is not None:
                low = owner_tail.lower()
                if low in _LOCAL_OWNERS:
                    return LOCAL
                if _KERNEL_TOKEN in low:
                    return GLOBAL
            return None
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return self.analysis.attr_value(self.info, node.attr)
        return None

    def _combine(self, node: ast.AST, op: ast.operator, left: Value,
                 right: Value, left_node: ast.expr,
                 right_node: ast.expr) -> Value:
        # Sanctioned translation: local + offset -> global; global -
        # offset -> local; offset + local -> global.
        if left in (LOCAL, GLOBAL) and _is_offset_expr(right_node):
            if isinstance(op, ast.Add):
                return GLOBAL if left == LOCAL else left
            return LOCAL if left == GLOBAL else left
        if right in (LOCAL, GLOBAL) and _is_offset_expr(left_node) \
                and isinstance(op, ast.Add):
            return GLOBAL if right == LOCAL else right
        concrete_left = left in (LOCAL, GLOBAL, WALL)
        concrete_right = right in (LOCAL, GLOBAL, WALL)
        if concrete_left and concrete_right:
            if left != right:
                self._event(node, "arith", left, right)
                return None
            # t2 - t1 in one domain is a duration; t + t keeps the domain.
            return None if isinstance(op, ast.Sub) else left
        if concrete_left or concrete_right:
            self._meet(node, "arith", left, right)
            return left if concrete_left else right
        return None

    def _call(self, node: ast.Call) -> Value:
        for arg in node.args:
            self._value(arg)
        for kw in node.keywords:
            self._value(kw.value)

        func = node.func
        name = None
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id

        resolved = self.ctx.resolve_call(func)
        if resolved in _WALL_CLOCK:
            return WALL

        if name in ("max", "min") and isinstance(func, ast.Name):
            values = [(a, self._value(a)) for a in node.args]
            for i in range(len(values) - 1):
                (_, a), (n, b) = values[i], values[i + 1]
                self._meet(n, "compare", a, b, detail=f"{name}()")
            concrete = {v for _, v in values if v in (LOCAL, GLOBAL, WALL)}
            return concrete.pop() if len(concrete) == 1 else None

        if name in _SCHEDULE_SINKS:
            self._schedule_sink(node, name)

        if name in _LOCAL_CALLS:
            return LOCAL
        if name in _GLOBAL_CALLS:
            return GLOBAL

        # Project-resolved callees: return summaries + arg expectations.
        # Ambiguous bare-name matches are only trusted when every
        # candidate agrees; expectation checks demand a single target.
        candidates = self.analysis.index.resolve_call(self.info, node)
        if candidates:
            self._check_arguments(node, candidates)
            returns = {self.analysis.summaries[c].return_domain
                       for c in candidates}
            if len(returns) == 1:
                value = returns.pop()
                return value if value in (LOCAL, GLOBAL, WALL) else None
        return None

    def _check_arguments(self, node: ast.Call,
                         candidates: List[FunctionInfo]) -> None:
        if len(candidates) != 1:
            return
        callee = candidates[0]
        summary = self.analysis.summaries[callee]
        if not summary.expectations:
            return
        params = callee.params
        for position, arg in enumerate(node.args):
            self._check_one_argument(node, callee, summary, position, arg)
        for kw in node.keywords:
            if kw.arg is not None and kw.arg in params:
                self._check_one_argument(node, callee, summary,
                                         params.index(kw.arg), kw.value)

    def _check_one_argument(self, node: ast.Call, callee: FunctionInfo,
                            summary: Summary, position: int,
                            arg: ast.expr) -> None:
        expectation = summary.expectations.get(position)
        if expectation is None:
            return
        expected, kind = expectation
        value = self._value(arg)
        params = callee.params
        param_name = params[position] if position < len(params) else "?"
        if value in (LOCAL, GLOBAL, WALL) and value != expected:
            self._event(
                node, kind, value, expected,
                detail=f"via parameter {param_name!r} of {callee.name}()")
        elif _is_param(value):
            # Taint flows through: this caller's parameter inherits the
            # callee's expectation.
            self._expect(value, expected, kind)

    def _schedule_sink(self, node: ast.Call, name: str) -> None:
        position, keyword, expected = _SCHEDULE_SINKS[name]
        time_arg: Optional[ast.expr] = None
        if len(node.args) > position:
            time_arg = node.args[position]
        else:
            for kw in node.keywords:
                if kw.arg == keyword:
                    time_arg = kw.value
        if time_arg is None:
            return
        if expected is None:  # schedule_at: domain depends on the receiver
            func = node.func
            receiver_tail = _tail(func.value) if isinstance(
                func, ast.Attribute) else None
            if receiver_tail is None:
                return
            low = receiver_tail.lower()
            if low in _LOCAL_OWNERS:
                expected = LOCAL
            elif _KERNEL_TOKEN in low:
                expected = GLOBAL
            else:
                # Unknown receiver: only wall-clock time is always wrong.
                value = self._value(time_arg)
                if value == WALL:
                    self._event(time_arg, "schedule", WALL, "virtual",
                                detail=f"{name}()")
                return
        value = self._value(time_arg)
        if value == WALL:
            self._event(time_arg, "schedule", WALL, expected,
                        detail=f"{name}()")
        elif value in (LOCAL, GLOBAL) and value != expected:
            self._event(time_arg, "schedule", value, expected,
                        detail=f"{name}()")
        elif _is_param(value):
            self._expect(value, expected, "schedule")


def analyze_timeflow(index: ProjectIndex) -> TimeflowAnalysis:
    return TimeflowAnalysis(index)


__all__ = ["GLOBAL", "LOCAL", "WALL", "Summary", "TaintEvent",
           "TimeflowAnalysis", "analyze_timeflow"]
