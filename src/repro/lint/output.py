"""Machine-readable renderers: ``--format json`` and ``--format sarif``.

Both formats carry the same per-finding fields as the text output plus
the line-content fingerprint from :mod:`repro.lint.baseline`, so a CI
consumer can diff scan results across commits without relying on line
numbers.  The SARIF output targets the 2.1.0 schema that code-scanning
UIs (GitHub PR annotations among them) ingest directly: one run, the
full rule table under ``tool.driver.rules``, one result per finding
with a ``physicalLocation`` region and a ``partialFingerprints`` entry.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.lint.baseline import (
    SourceCache,
    normalise_path,
    compute_fingerprints,
)
from repro.lint.engine import (
    BARE_PRAGMA,
    Finding,
    SYNTAX_ERROR,
    UNKNOWN_PRAGMA_RULE,
    all_rules,
)

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/"
                "schemas/sarif-schema-2.1.0.json")

#: Engine diagnostics are not suppressible and block the scan outright.
_ERROR_LEVEL_RULES = frozenset({SYNTAX_ERROR, UNKNOWN_PRAGMA_RULE,
                                BARE_PRAGMA})

_DIAGNOSTIC_TITLES = {
    SYNTAX_ERROR: "file does not parse",
    UNKNOWN_PRAGMA_RULE: "pragma names an unknown rule",
    BARE_PRAGMA: "pragma carries no justification",
}


def _level(rule_id: str) -> str:
    return "error" if rule_id in _ERROR_LEVEL_RULES else "warning"


def _docstring_summary(obj: object) -> str:
    doc = (getattr(obj, "__doc__", None) or "").strip()
    if not doc:
        return ""
    paragraph: List[str] = []
    for line in doc.splitlines():
        if not line.strip():
            break
        paragraph.append(line.strip())
    return " ".join(paragraph)


def _rule_table(extra_ids: Sequence[str]) -> List[Dict[str, object]]:
    """SARIF rule descriptors: every shipped rule, plus any engine
    diagnostic ids that actually occur in the results."""
    table: List[Dict[str, object]] = []
    seen = set()
    for rule in all_rules():
        seen.add(rule.rule_id)
        descriptor: Dict[str, object] = {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.title},
            "defaultConfiguration": {"level": _level(rule.rule_id)},
        }
        summary = _docstring_summary(type(rule))
        if summary:
            descriptor["fullDescription"] = {"text": summary}
        table.append(descriptor)
    for rule_id in sorted(set(extra_ids) - seen):
        table.append({
            "id": rule_id,
            "shortDescription": {
                "text": _DIAGNOSTIC_TITLES.get(rule_id, rule_id)},
            "defaultConfiguration": {"level": _level(rule_id)},
        })
    return table


def render_json(findings: Sequence[Finding],
                cache: Optional[SourceCache] = None) -> str:
    prints = compute_fingerprints(findings, cache)
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    payload = {
        "version": 1,
        "tool": "repro.lint",
        "findings": [
            {
                "rule": finding.rule,
                "path": normalise_path(finding.path),
                "line": finding.line,
                "col": finding.col,
                "level": _level(finding.rule),
                "message": finding.message,
                "fingerprint": print_,
            }
            for finding, print_ in zip(findings, prints)
        ],
        "counts": {rule: counts[rule] for rule in sorted(counts)},
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_sarif(findings: Sequence[Finding],
                 cache: Optional[SourceCache] = None) -> str:
    prints = compute_fingerprints(findings, cache)
    results: List[Dict[str, object]] = []
    for finding, print_ in zip(findings, prints):
        results.append({
            "ruleId": finding.rule,
            "level": _level(finding.rule),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": normalise_path(finding.path),
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.col, 1),
                    },
                },
            }],
            "partialFingerprints": {"reproLint/v1": print_},
        })
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.lint",
                    "rules": _rule_table([f.rule for f in findings]),
                },
            },
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_text(findings: Sequence[Finding]) -> str:
    return "".join(finding.format() + "\n" for finding in findings)


RENDERERS = {
    "text": lambda findings, cache=None: render_text(findings),
    "json": render_json,
    "sarif": render_sarif,
}


__all__ = ["RENDERERS", "SARIF_SCHEMA", "SARIF_VERSION",
           "render_json", "render_sarif", "render_text"]
