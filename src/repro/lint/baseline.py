"""Finding fingerprints, the committed baseline, and diff-aware scans.

New rule families land on an existing tree without a flag-day cleanup:
``--write-baseline lint-baseline.json`` records every current finding
as a *fingerprint*, and subsequent scans with ``--baseline`` report
only findings not in that ledger.  CI fails on regressions while the
baseline burns down incrementally.

A fingerprint deliberately ignores line *numbers*: it is a short SHA-1
over ``(rule id, normalised path, stripped text of the flagged source
line)``, so inserting code above a baselined finding does not
invalidate the ledger, while editing the flagged line itself (or fixing
it) does.  Identical lines in one file share a fingerprint; the
baseline therefore stores an *occurrence count* per fingerprint and a
scan suppresses at most that many occurrences.

``changed_files(base)`` backs the ``--changed BASE`` mode: the scan
still parses the whole program (cross-module propagation needs every
module), but only findings located in files touched since ``BASE`` --
plus untracked files -- are reported.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import Finding, LintError

#: Schema version of the baseline file; bump on incompatible changes.
BASELINE_VERSION = 1


def normalise_path(path: str) -> str:
    normalized = path.replace(os.sep, "/")
    while normalized.startswith("./"):
        normalized = normalized[2:]
    return normalized


class SourceCache:
    """Lazily reads and caches the split lines of scanned files."""

    def __init__(self,
                 sources: Optional[Dict[str, str]] = None) -> None:
        self._lines: Dict[str, List[str]] = {}
        if sources:
            for path, text in sources.items():
                self._lines[path] = text.splitlines()

    def line(self, path: str, lineno: int) -> str:
        if path not in self._lines:
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    self._lines[path] = fh.read().splitlines()
            except OSError:
                self._lines[path] = []
        lines = self._lines[path]
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1]
        return ""


def fingerprint(finding: Finding, line_text: str) -> str:
    """Stable 16-hex-digit id for a finding, line-number independent."""
    digest = hashlib.sha1()
    digest.update(finding.rule.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(normalise_path(finding.path).encode("utf-8"))
    digest.update(b"\x00")
    digest.update(line_text.strip().encode("utf-8"))
    return digest.hexdigest()[:16]


def compute_fingerprints(findings: Sequence[Finding],
                         cache: Optional[SourceCache] = None) -> List[str]:
    """Fingerprints aligned index-for-index with ``findings``."""
    cache = cache or SourceCache()
    return [fingerprint(f, cache.line(f.path, f.line)) for f in findings]


def write_baseline(path: str, findings: Sequence[Finding],
                   cache: Optional[SourceCache] = None) -> int:
    """Record the findings as the accepted baseline; returns the count."""
    counts: Dict[str, int] = {}
    for print_ in compute_fingerprints(findings, cache):
        counts[print_] = counts.get(print_, 0) + 1
    payload = {
        "version": BASELINE_VERSION,
        "tool": "repro.lint",
        "findings": len(findings),
        "fingerprints": {key: counts[key] for key in sorted(counts)},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(findings)


def load_baseline(path: str) -> Dict[str, int]:
    """Fingerprint -> accepted occurrence count from a baseline file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise LintError(f"cannot read baseline {path!r}: {exc}")
    except ValueError as exc:
        raise LintError(f"baseline {path!r} is not valid JSON: {exc}")
    if not isinstance(payload, dict) \
            or payload.get("version") != BASELINE_VERSION \
            or not isinstance(payload.get("fingerprints"), dict):
        raise LintError(f"baseline {path!r} has an unrecognised format "
                        f"(expected version {BASELINE_VERSION})")
    fingerprints: Dict[str, int] = {}
    for key, count in payload["fingerprints"].items():
        if not isinstance(count, int) or count < 0:
            raise LintError(f"baseline {path!r}: bad count for {key!r}")
        fingerprints[str(key)] = count
    return fingerprints


def apply_baseline(findings: Sequence[Finding], accepted: Dict[str, int],
                   cache: Optional[SourceCache] = None,
                   ) -> Tuple[List[Finding], int]:
    """Drop baselined findings; returns (fresh findings, suppressed count).

    Each fingerprint suppresses at most its recorded occurrence count,
    so a baselined pattern that *multiplies* still fails the scan.
    """
    remaining = dict(accepted)
    fresh: List[Finding] = []
    suppressed = 0
    for finding, print_ in zip(findings,
                               compute_fingerprints(findings, cache)):
        if remaining.get(print_, 0) > 0:
            remaining[print_] -= 1
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed


def changed_files(base: str, repo_root: str = ".") -> Set[str]:
    """Real paths of ``.py`` files changed since ``base`` (plus untracked)."""
    def run(*argv: str) -> List[str]:
        try:
            proc = subprocess.run(
                ["git", "-C", repo_root, *argv],
                capture_output=True, text=True, check=True)
        except FileNotFoundError:
            raise LintError("--changed requires git on PATH")
        except subprocess.CalledProcessError as exc:
            detail = (exc.stderr or "").strip() or f"exit {exc.returncode}"
            raise LintError(f"git {' '.join(argv[:2])} failed: {detail}")
        return [line for line in proc.stdout.splitlines() if line]

    top = run("rev-parse", "--show-toplevel")[0]
    names = run("diff", "--name-only", base, "--")
    names += run("ls-files", "--others", "--exclude-standard")
    return {os.path.realpath(os.path.join(top, name))
            for name in names if name.endswith(".py")}


def restrict_to_changed(findings: Sequence[Finding],
                        changed: Iterable[str]) -> List[Finding]:
    """Keep only findings located in one of the ``changed`` real paths."""
    wanted = set(changed)
    return [f for f in findings
            if os.path.realpath(f.path) in wanted]


__all__ = [
    "BASELINE_VERSION", "SourceCache", "normalise_path",
    "apply_baseline", "changed_files", "compute_fingerprints",
    "fingerprint", "load_baseline", "restrict_to_changed",
    "write_baseline",
]
