"""Tier 3: RNG-stream provenance rules (RP01..RP02).

The reproduction's determinism contract is *one root seed*: every
stochastic component draws from its own ``random.Random`` / numpy
``Generator`` whose seed is derived through
:func:`repro.cluster.ring.derive_seed` (position-sensitive, stable
across processes) from the root.  Two ways to silently break that
contract survive the module-local ND01 check:

* a stream constructed from a seed that does **not** descend from the
  root -- a literal, an ad-hoc ``seed + 1`` mangle, a ``hash()`` -- or a
  live stream re-seeded mid-run (``rng.seed(...)``), which resets the
  draw sequence out from under every other consumer (**RP01**);
* one stream *shared* between two consumers -- passed to two different
  components or stored under two names -- so their draw orders couple:
  adding an event to one shard reorders the other's randomness
  (**RP02**).

Sanctioned seed provenance is syntactic and deliberately generous: a
``derive_seed(...)`` call, or any name/attribute carrying a ``seed``
token (``seed``, ``root_seed``, ``self._seed``, ``config.seed``) --
i.e. a seed that was *handed in* rather than invented locally.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.engine import Finding, ModuleContext, Rule, dotted_name

#: Constructors that mint an RNG stream (canonical, import-resolved).
RNG_CONSTRUCTORS = frozenset({
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
})

#: Method names that *draw from* a stream -- calls through these are the
#: stream's own business, not an escape to another consumer.
_DRAW_METHODS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "sample", "shuffle", "gauss", "normal", "expovariate", "betavariate",
    "integers", "standard_normal", "getrandbits", "triangular",
    "vonmisesvariate", "paretovariate", "weibullvariate", "lognormvariate",
    "bytes", "seed", "getstate", "setstate", "jumped", "spawn",
})


def _has_seed_token(name: str) -> bool:
    return "seed" in name.lower()


def _is_rng_constructor(ctx: ModuleContext, node: ast.Call) -> bool:
    target = ctx.resolve_call(node.func)
    return target in RNG_CONSTRUCTORS


def _seed_argument(node: ast.Call) -> Optional[ast.expr]:
    if node.args:
        return node.args[0]
    for kw in node.keywords:
        if kw.arg in ("seed", "x"):
            return kw.value
    return None


class _SeedProvenance:
    """Is this expression a sanctioned (root-derived) seed?"""

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        #: Local names assigned sanctioned seed expressions.
        self.sanctioned_names: Set[str] = set()

    def note_assignment(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name) and self.is_sanctioned(value):
            self.sanctioned_names.add(target.id)

    def is_sanctioned(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None)
            if name == "derive_seed":
                return True
            canonical = self.ctx.resolve_call(func)
            return canonical is not None \
                and canonical.endswith(".derive_seed")
        if isinstance(node, ast.Name):
            return _has_seed_token(node.id) \
                or node.id in self.sanctioned_names
        if isinstance(node, ast.Attribute):
            return _has_seed_token(node.attr)
        if isinstance(node, ast.IfExp):
            return self.is_sanctioned(node.body) \
                and self.is_sanctioned(node.orelse)
        return False


class RuleRP01(Rule):
    """RNG stream seeded outside ``derive_seed`` provenance.

    Flags (a) RNG constructions whose seed expression is neither a
    ``derive_seed(...)`` call nor a passed-in seed name, and (b) any
    ``.seed(...)`` re-seeding of a live stream -- even with a derived
    seed, resetting the sequence mid-run yanks the draw order out from
    under every other holder; construct a fresh stream instead.
    Zero-argument constructions are ND01's finding and are not
    double-reported here.
    """

    rule_id = "RP01"
    title = "RNG seed not derived from the root seed"

    def check(self, ctx: ModuleContext) -> List[Finding]:
        provenance = _SeedProvenance(ctx)
        rng_names = _collect_rng_names(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                provenance.note_assignment(node.targets[0], node.value)
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_rng_constructor(ctx, node):
                seed = _seed_argument(node)
                if seed is None:
                    continue  # unseeded: ND01 territory
                if not provenance.is_sanctioned(seed):
                    findings.append(ctx.finding(
                        self, node,
                        "RNG seed is not derived from the root seed; use "
                        "derive_seed(seed, ...) or pass a seed parameter "
                        "through"))
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "seed":
                receiver = node.func.value
                canonical = ctx.resolve_call(node.func)
                if canonical is not None and (
                        canonical.startswith("random.")
                        or canonical.startswith("numpy.random.")):
                    continue  # the module-level global RNG: ND01's finding
                if not _is_rng_receiver(receiver, rng_names):
                    continue
                findings.append(ctx.finding(
                    self, node,
                    "re-seeding a live RNG stream resets the draw "
                    "sequence for every consumer; construct a fresh "
                    "stream with derive_seed(...) instead"))
        return findings


def _collect_rng_names(ctx: ModuleContext) -> Set[str]:
    """Bare names and ``self.<attr>`` attrs bound to RNG constructions."""
    names: Set[str] = set()
    for node in ast.walk(ctx.tree):
        value: Optional[ast.expr] = None
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not isinstance(value, ast.Call) \
                or not _is_rng_constructor(ctx, value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Attribute):
                names.add(target.attr)
    return names


def _is_rng_receiver(node: ast.expr, rng_names: Set[str]) -> bool:
    tail = None
    if isinstance(node, ast.Name):
        tail = node.id
    elif isinstance(node, ast.Attribute):
        tail = node.attr
    if tail is None:
        return False
    return tail in rng_names or "rng" in tail.lower()


class RuleRP02(Rule):
    """One RNG stream reaching two consumers.

    A stream's draw order is part of the determinism fingerprint of
    every component that holds it: hand the same instance to two
    components (two constructor calls, two helper sinks, or two stored
    names) and adding one draw to either reorders the other.  Tracks
    streams from their construction -- local variables inside a
    function, ``self.<attr>`` across one class's methods -- and flags
    every escape after the first distinct one.  Draw calls
    (``rng.random()``, ``rng.choice(...)``) are not escapes, and neither
    is passing the stream repeatedly to the *same* consumer.
    """

    rule_id = "RP02"
    title = "RNG stream shared by two consumers"

    def check(self, ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for body, locals_, attrs in _rp02_scopes(ctx):
            streams = _streams_in_scope(ctx, body, track_locals=locals_,
                                        track_attrs=attrs)
            for stream, escapes in streams.items():
                escapes.sort(key=lambda e: (getattr(e[1], "lineno", 0),
                                            getattr(e[1], "col_offset", 0)))
                distinct: Dict[str, ast.AST] = {}
                ordered: List[Tuple[str, ast.AST]] = []
                for sink, node in escapes:
                    if sink not in distinct:
                        distinct[sink] = node
                        ordered.append((sink, node))
                if len(ordered) < 2:
                    continue
                sinks = ", ".join(sink for sink, _ in ordered)
                for sink, node in ordered[1:]:
                    findings.append(ctx.finding(
                        self, node,
                        f"RNG stream {stream!r} is shared by multiple "
                        f"consumers ({sinks}); shared streams couple their "
                        f"draw order -- derive one stream per consumer via "
                        f"derive_seed"))
        return findings


def _rp02_scopes(ctx: ModuleContext):
    """(statements, track_locals, track_attrs) triples.

    Local-variable streams are tracked inside their own function (or the
    module body); ``self.<attr>`` streams are tracked over the *whole
    class* -- the methods concatenated -- so a ``self._rng`` built in
    ``__init__`` and escaped from two different methods is one stream.
    Each kind is tracked in exactly one scope, so no escape is counted
    twice.
    """
    yield ctx.tree.body, True, False
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.body, True, False
        elif isinstance(node, ast.ClassDef):
            methods: List[ast.stmt] = []
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.extend(item.body)
            yield methods, False, True


def _streams_in_scope(ctx: ModuleContext, body: List[ast.stmt], *,
                      track_locals: bool,
                      track_attrs: bool) -> Dict[str, List[Tuple[str, ast.AST]]]:
    """stream name -> [(sink key, node)] escapes inside one scope."""
    streams: Set[str] = set()
    for node in _shallow_walk(body):
        value: Optional[ast.expr] = None
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not isinstance(value, ast.Call) \
                or not _is_rng_constructor(ctx, value):
            continue
        for target in targets:
            if isinstance(target, ast.Name) and track_locals:
                streams.add(target.id)
            elif isinstance(target, ast.Attribute) and track_attrs \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                streams.add(f"self.{target.attr}")

    escapes: Dict[str, List[Tuple[str, ast.AST]]] = {s: [] for s in streams}
    if not streams:
        return escapes

    def stream_of(expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name) and expr.id in streams:
            return expr.id
        if isinstance(expr, ast.Attribute) \
                and isinstance(expr.value, ast.Name) \
                and expr.value.id == "self" \
                and f"self.{expr.attr}" in streams:
            return f"self.{expr.attr}"
        return None

    for node in _shallow_walk(body):
        if isinstance(node, ast.Call):
            func = node.func
            # A draw through the stream's own methods is not an escape.
            if isinstance(func, ast.Attribute) \
                    and stream_of(func.value) is not None \
                    and func.attr in _DRAW_METHODS:
                continue
            callee = dotted_name(func) or (
                func.attr if isinstance(func, ast.Attribute) else "<call>")
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                stream = stream_of(arg)
                if stream is not None:
                    escapes[stream].append((f"{callee}()", node))
        elif isinstance(node, ast.Assign):
            stream = stream_of(node.value)
            if stream is None:
                continue
            for target in node.targets:
                alias = None
                if isinstance(target, ast.Name):
                    alias = target.id
                elif isinstance(target, ast.Attribute):
                    alias = f".{target.attr}"
                if alias is not None and alias != stream:
                    escapes[stream].append((f"alias {alias}", node))
    return escapes


def _shallow_walk(body: List[ast.stmt]):
    """Walk statements without descending into nested def/class scopes."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


PROVENANCE_RULES = [RuleRP01, RuleRP02]

__all__ = ["PROVENANCE_RULES", "RNG_CONSTRUCTORS", "RuleRP01", "RuleRP02"]
