"""Tier 3: whole-program time-domain taint rules (TD01..TD03).

Shard-local simulator clocks and the kernel's merged global clock
differ by a per-source offset; host wall-clock time must never meet
virtual time at all.  The repo's worst historical bugs are exactly
cross-domain flows: a shard-local time compared against ``kernel.now``
without the offset translation (PR 3's missing-offset raise), and a
probe re-armed into a source's local past (PR 7's clamp).  These rules
consume the interprocedural taint analysis in :mod:`repro.lint.dataflow`
-- domains propagate through assignments, ``self`` attributes, returns,
and call boundaries, so a local time laundered through a helper is
flagged at the call site that injects it.

* **TD01** -- comparison (``<``/``>=``/``max``/``min``) across domains;
* **TD02** -- ``+``/``-`` across domains that is not the sanctioned
  offset translation (``local + offset``, ``global - offset``);
* **TD03** -- a time argument handed to a scheduler in the wrong
  domain: ``kernel.schedule_at`` / ``schedule_probe`` /
  ``schedule_on_shard`` take global time, a raw ``simulator.schedule_at``
  takes local time, and wall-clock values never belong in any of them.

The sanctioned translation surface is the same as SD03's: ``shard_now``
/ ``schedule_on_shard`` / ``to_global`` / ``to_local`` and ``+/-
<offset>`` arithmetic.  The simulator-owning layers (``net/``, the
kernel, its runtime sanitizer) implement the translation and are out of
scope.
"""

from __future__ import annotations

from typing import List

from repro.lint.engine import Finding, ProjectContext, ProjectRule

_REMEDY = {
    "compare": "translate through shard_now()/to_global() before comparing",
    "arith": "apply the source's offset (to_global()/to_local()) first",
    "schedule": "convert with shard_now()/to_global() or use the relative "
                "schedule(delay, ...) form",
}


class _TimeDomainRule(ProjectRule):
    """Shared driver: report the taint events of one kind."""

    kind: str = ""
    verb: str = ""

    def check_project(self, project: ProjectContext) -> List[Finding]:
        findings: List[Finding] = []
        for event in project.timeflow.events:
            if event.kind != self.kind:
                continue
            where = f" ({event.detail})" if event.detail else ""
            findings.append(Finding(
                rule=self.rule_id, path=event.path, line=event.line,
                col=event.col,
                message=f"{self.verb} mixes {event.left} and {event.right} "
                        f"time{where}; {_REMEDY[self.kind]}"))
        return findings


class RuleTD01(_TimeDomainRule):
    """Cross-domain time comparison.

    ``local < kernel.now`` orders two clocks that differ by a per-source
    offset: the verdict flips with registration order and epoch history.
    Includes ``max``/``min`` envelopes and comparisons reached through a
    call boundary (a parameter the callee compares against a known
    domain).
    """

    rule_id = "TD01"
    title = "cross-domain time comparison"
    kind = "compare"
    verb = "comparison"


class RuleTD02(_TimeDomainRule):
    """Cross-domain time arithmetic.

    ``global - local`` (outside the kernel) silently *is* an offset
    computation -- almost always a bug standing in for a missing
    translation; ``local + global`` is meaningless.  Adding or
    subtracting a recognised per-source offset is the sanctioned
    translation and is not flagged.
    """

    rule_id = "TD02"
    title = "cross-domain time arithmetic"
    kind = "arith"
    verb = "arithmetic"


class RuleTD03(_TimeDomainRule):
    """Wrong-domain (or wall-clock) time handed to a scheduler.

    Scheduling a shard-local instant on the kernel (or a global instant
    on a raw per-shard simulator) lands the event offset-shifted --
    possibly in the local past, the exact class the kernel's
    ``schedule_probe`` clamp and the runtime sanitizer's past-scheduling
    check contain at runtime.  This is the static tripwire for it.
    """

    rule_id = "TD03"
    title = "wrong-domain time in a scheduling call"
    kind = "schedule"
    verb = "scheduling"


TIMEDOMAIN_RULES = [RuleTD01, RuleTD02, RuleTD03]

__all__ = ["TIMEDOMAIN_RULES", "RuleTD01", "RuleTD02", "RuleTD03"]
