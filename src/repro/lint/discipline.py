"""Tier 2: protocol-discipline rules (SD01..SD04).

These rules know this codebase: which layers own the simulators, which
APIs mutate protocol state, and which accessors are the sanctioned way
to touch another source's clock.  They encode three invariants the
end-to-end suites enforce dynamically (telemetry non-interference,
fingerprint identity, clamped-head pump order) as cheap static checks.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.engine import (
    Finding,
    ModuleContext,
    ProjectContext,
    ProjectRule,
    Rule,
    dotted_name,
)

#: Protocol-mutating methods of the router / replica coordinator /
#: membership / repair scheduler / kernel foreground API.  A module
#: under ``obs/`` calling any of these on a non-``self`` receiver is
#: perturbing the simulation it claims to observe.  The observation
#: surface (``schedule_probe``, ``pending_work``, ``pending_slots``,
#: registry instruments, ``operation_observers.append``) is not listed,
#: so the pure-probe pattern passes untouched.
MUTATING_CALLS = frozenset({
    # router / cluster front-end
    "invoke_write", "invoke_read", "add_workload", "flush_key",
    "ensure_shards", "migrate_shard", "failover_shard",
    "notify_replica_completion", "schedule_on_shard",
    # membership transitions
    "fail", "recover", "fail_pool", "join_pool", "leave_pool",
    # repair scheduler
    "schedule_node_repairs", "withhold_node",
    # replica coordinator
    "catch_up", "promote", "apply_record",
    # kernel / simulator foreground scheduling and pumping
    "schedule", "schedule_at", "run_until_idle", "set_latency_scale",
})


class RuleSD01(ProjectRule):
    """Observability modules must not mutate protocol state.

    The telemetry-on/off byte-identity gate rests on every probe being
    pure observation.  Two triggers:

    * **direct** -- a call from an ``obs/`` module to a known mutating
      router/replica/membership/repair/kernel API on any non-``self``
      receiver (the original module-local check);
    * **transitive** -- a call from an ``obs/`` module to a helper
      (resolved through the project call graph: local defs, import
      aliases, unique method names) whose body *transitively* reaches a
      mutating API.  Purity is propagated over the whole program by
      :meth:`repro.lint.callgraph.ProjectIndex.compute_purity`, so a
      probe laundering a mutation through ``cluster/`` helpers is
      flagged at the probe's call site with the witness chain.

    Probe classes that *deliberately* drive sanctioned machinery (none
    today) annotate the call site with a justified pragma.
    """

    rule_id = "SD01"
    title = "obs/ module reaches a mutating protocol API"

    def check_project(self, project: ProjectContext) -> List[Finding]:
        findings: List[Finding] = []
        purity = None  # computed on first demand: obs/ modules only
        for ctx in project.modules:
            if not ctx.is_obs_module:
                continue
            direct_nodes = set()
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr not in MUTATING_CALLS:
                    continue
                # A probe driving its own machinery (``self.tick()``) is
                # its own business; the same method reached through a
                # held protocol reference
                # (``self.simulation.repair.fail(...)``) is interference
                # and stays flagged.
                if dotted_name(func.value) == "self":
                    continue
                direct_nodes.add(id(node))
                findings.append(ctx.finding(
                    self, node,
                    f"obs/ module calls mutating API .{func.attr}() -- "
                    f"probes must be pure observation (noninterference)"))

            if purity is None:
                purity = project.purity
            index = project.index
            for caller in index.functions:
                if caller.ctx is not ctx:
                    continue
                for call, callee in index.precise_callees(caller):
                    if id(call) in direct_nodes:
                        continue  # already reported as a direct mutation
                    if callee.ctx.is_obs_module:
                        continue  # its own body carries the direct finding
                    if callee.ctx.is_simulator_layer:
                        # The kernel/sanitizer/net implementation of the
                        # sanctioned observation surface (schedule_probe,
                        # pending_work) legitimately touches raw
                        # simulators; abusing a *mutating* kernel API
                        # from obs/ is caught by the direct check above.
                        continue
                    chain = purity.get(callee)
                    if chain is None:
                        continue
                    hops = " -> ".join([f"{callee.name}()"] + chain)
                    findings.append(ctx.finding(
                        self, call,
                        f"obs/ module reaches mutating API through helper "
                        f"{hops} -- probes must be pure observation "
                        f"(noninterference)"))
        return findings


class RuleSD02(Rule):
    """Absolute-time scheduling must derive from a clock accessor.

    ``schedule_at`` / ``schedule_probe`` with a *literal* absolute time
    pins an event to a wall position on the virtual timeline regardless
    of where the clock actually is -- correct only at t=0 setup, and
    even there fragile against harness refactors that pre-advance the
    clock.  Derive the argument from ``kernel.now`` / ``shard_now()``
    (or use the relative ``schedule(delay, ...)`` form, which this rule
    deliberately does not flag).
    """

    rule_id = "SD02"
    title = "literal absolute time in schedule_at/schedule_probe"

    _ABSOLUTE_SCHEDULERS = ("schedule_at", "schedule_probe")

    def check(self, ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            if name not in self._ABSOLUTE_SCHEDULERS:
                continue
            time_arg = None
            if node.args:
                time_arg = node.args[0]
            else:
                for kw in node.keywords:
                    if kw.arg == "time":
                        time_arg = kw.value
            if isinstance(time_arg, ast.Constant) \
                    and isinstance(time_arg.value, (int, float)) \
                    and not isinstance(time_arg.value, bool):
                findings.append(ctx.finding(
                    self, node,
                    f"{name}({time_arg.value!r}, ...) hard-codes an absolute "
                    f"virtual time; derive it from a clock accessor "
                    f"(kernel.now / shard_now())"))
        return findings


class RuleSD03(Rule):
    """Raw cross-source simulator access outside the sanctioned accessors.

    A per-shard simulator's clock is *local*: comparing or scheduling
    against it from outside without the source's kernel offset breaks
    the global ordering (the exact bug class the kernel's clamped-head
    logic and ``schedule_probe``'s past-clamp exist to contain).  Any
    ``<expr>.simulator.now`` / ``<expr>.simulator.schedule*`` where the
    receiver is not ``self`` must go through ``router.shard_now()`` /
    ``router.schedule_on_shard()`` / ``SimulatorSource.to_global``
    instead.  The simulator-owning layers (``net/``, the kernel and its
    runtime sanitizer) are out of scope; the accessor implementations
    themselves carry justified pragmas.
    """

    rule_id = "SD03"
    title = "raw cross-source simulator clock access"

    _CLOCK_ATTRS = frozenset({
        "now", "schedule", "schedule_at", "run", "run_until_idle", "step",
        "set_head_listener", "set_schedule_guard",
    })

    def check(self, ctx: ModuleContext) -> List[Finding]:
        if ctx.is_simulator_layer:
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute) \
                    or node.attr not in self._CLOCK_ATTRS:
                continue
            value = node.value
            if not isinstance(value, ast.Attribute) \
                    or value.attr != "simulator":
                continue
            owner = value.value
            if isinstance(owner, ast.Name) and owner.id == "self":
                continue  # the owner touching its own simulator
            findings.append(ctx.finding(
                self, node,
                f"cross-source access to .simulator.{node.attr}: local "
                f"clocks are only comparable through the kernel offset; use "
                f"shard_now()/schedule_on_shard()/to_global()"))
        return findings


class RuleSD04(Rule):
    """Coordinator pending/in-flight maps must be sanitizer-watchable.

    The kernel's runtime sanitizer detects leaked in-flight state by
    watching the maps registered through ``sanitizer_watches()``-style
    accessors (see ``ClusterSimulation(sanitize=True)``).  A
    cluster/sim-layer class that initialises dict-valued
    pending/in-flight bookkeeping without exposing that accessor keeps
    its retention bugs invisible to the sanitizer -- exactly the bug
    class PR 7's quorum-read pending leak fell into.  Scoped to the
    coordinator layers (``cluster/``, ``sim/``): observation-layer and
    consistency-checker dicts drain through their own audited
    lifecycles.
    """

    rule_id = "SD04"
    title = "pending/in-flight dict state without sanitizer_watches()"

    _STATE_NAME = ("pending", "inflight", "in_flight")
    _DICT_FACTORIES = frozenset({"dict", "defaultdict", "OrderedDict"})

    def _is_state_name(self, attr: str) -> bool:
        name = attr.lower()
        return any(token in name for token in self._STATE_NAME)

    def _is_dict_value(self, value: ast.expr) -> bool:
        if isinstance(value, ast.Dict):
            return True
        if isinstance(value, ast.Call):
            func = value.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            return name in self._DICT_FACTORIES
        return False

    def check(self, ctx: ModuleContext) -> List[Finding]:
        if "cluster" not in ctx.parts and "sim" not in ctx.parts:
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {item.name for item in node.body
                       if isinstance(item, (ast.FunctionDef,
                                            ast.AsyncFunctionDef))}
            if "sanitizer_watches" in methods:
                continue
            init = next((item for item in node.body
                         if isinstance(item, ast.FunctionDef)
                         and item.name == "__init__"), None)
            if init is None:
                continue
            for stmt in ast.walk(init):
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign) \
                        and stmt.value is not None:
                    targets, value = [stmt.target], stmt.value
                else:
                    continue
                if not self._is_dict_value(value):
                    continue
                for target in targets:
                    if not isinstance(target, ast.Attribute) \
                            or not isinstance(target.value, ast.Name) \
                            or target.value.id != "self":
                        continue
                    if not self._is_state_name(target.attr):
                        continue
                    findings.append(ctx.finding(
                        self, stmt,
                        f"class {node.name} holds in-flight dict state "
                        f"self.{target.attr} but exposes no "
                        f"sanitizer_watches() accessor; register the map so "
                        f"the runtime sanitizer's leak detection covers it"))
        return findings


DISCIPLINE_RULES = [RuleSD01, RuleSD02, RuleSD03, RuleSD04]

__all__ = ["DISCIPLINE_RULES", "MUTATING_CALLS",
           "RuleSD01", "RuleSD02", "RuleSD03", "RuleSD04"]
