"""``repro.lint`` -- determinism & simulation-safety static analysis.

Everything this repository proves -- atomicity of the layered LDS
protocol, verdict-equivalence of the streaming auditor, non-interference
of telemetry -- rests on one invariant: *fixed-seed runs are
byte-identical, always*.  That invariant is easy to break silently: an
unordered ``set`` iteration that feeds event emission, an unseeded
``random`` call, a wall-clock read leaking into virtual time, a probe
that mutates protocol state, a shard-local timestamp compared against
the kernel's global clock without the offset translation.  End-to-end
fingerprint tests catch such a regression only after the fact, and only
when a test happens to cross the broken path.

This package checks conformance *before* the run: an AST-based analyzer
(stdlib :mod:`ast`, no dependencies) with a small rule engine, per-rule
fixtures under ``tests/lint/``, inline suppression pragmas, and a CLI::

    python -m repro.lint            # self-scan src/repro
    python -m repro.lint src/ path2 # scan explicit paths
    python -m repro.lint --list-rules
    python -m repro.lint --format sarif --output scan.sarif src
    python -m repro.lint --baseline lint-baseline.json examples
    python -m repro.lint --changed origin/main src

Scans are *whole-program*: every requested file is parsed up front into
one :class:`repro.lint.engine.ProjectContext` carrying a project symbol
table and call graph (:mod:`repro.lint.callgraph`) and an
interprocedural time-domain taint analysis (:mod:`repro.lint.dataflow`).

Rules come in four families:

* **generic nondeterminism** (``ND01``..``ND05``): unseeded module-level
  RNG calls, wall-clock reads, unordered ``set`` iteration feeding
  order-sensitive consumers, ``id()``/``hash()`` in ordering keys,
  mutable default arguments;
* **RNG provenance** (``RP01``..``RP02``): RNG streams whose seed is not
  derived from the root seed via ``derive_seed(...)`` (or re-seeded
  mid-run), and one stream escaping to multiple consumers;
* **protocol discipline** (``SD01``..``SD04``): observability modules
  reaching mutating cluster APIs (directly or through the call graph),
  scheduling at literal absolute times, raw cross-source simulator
  clock access, and unwatchable in-flight bookkeeping;
* **time-domain taint** (``TD01``..``TD03``): cross-domain comparison,
  arithmetic, and scheduling between shard-local clocks, the kernel's
  global clock, and host wall time -- propagated through assignments,
  attributes, returns, and call boundaries.

A deliberate exception is annotated in place::

    wall = perf_counter()  # simlint: disable=ND02 -- wall profiling only

The justification after ``--`` is required by convention; under
``--require-justification`` (the weekly audit workflow) a bare pragma
is an ``E003`` error.  For incremental adoption the CLI speaks JSON and
SARIF 2.1.0 (:mod:`repro.lint.output`) and supports a committed
fingerprint baseline plus a git-diff-aware ``--changed`` mode
(:mod:`repro.lint.baseline`).

The static pass is paired with a *runtime* sanitizer for what static
analysis cannot see: :meth:`repro.sim.kernel.GlobalScheduler.enable_sanitizer`
installs per-event invariant checks (clock monotonicity, past-scheduling
detection, probe write-barriers, end-of-run leak detection).
"""

from repro.lint.engine import (
    Finding,
    LintError,
    ModuleContext,
    ProjectContext,
    ProjectRule,
    Rule,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
    lint_sources,
)

__all__ = [
    "Finding",
    "LintError",
    "ModuleContext",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_sources",
]
