"""``repro.lint`` -- determinism & simulation-safety static analysis.

Everything this repository proves -- atomicity of the layered LDS
protocol, verdict-equivalence of the streaming auditor, non-interference
of telemetry -- rests on one invariant: *fixed-seed runs are
byte-identical, always*.  That invariant is easy to break silently: an
unordered ``set`` iteration that feeds event emission, an unseeded
``random`` call, a wall-clock read leaking into virtual time, a probe
that mutates protocol state.  End-to-end fingerprint tests catch such a
regression only after the fact, and only when a test happens to cross
the broken path.

This package checks conformance *before* the run: an AST-based analyzer
(stdlib :mod:`ast`, no dependencies) with a small rule engine, per-rule
fixtures under ``tests/lint/``, inline suppression pragmas, and a CLI::

    python -m repro.lint            # self-scan src/repro
    python -m repro.lint src/ path2 # scan explicit paths
    python -m repro.lint --list-rules

Rules come in two tiers:

* **generic nondeterminism** (``ND01``..``ND05``): unseeded module-level
  RNG calls, wall-clock reads, unordered ``set`` iteration feeding
  order-sensitive consumers, ``id()``/``hash()`` in ordering keys,
  mutable default arguments;
* **protocol discipline** (``SD01``..``SD03``): observability modules
  calling mutating cluster APIs, scheduling at literal absolute times
  not derived from a clock accessor, and raw cross-source simulator
  clock access outside the sanctioned accessors.

A deliberate exception is annotated in place::

    wall = perf_counter()  # simlint: disable=ND02 -- wall profiling only

The justification after ``--`` is required by convention (the engine
accepts any text); a pragma without one should not survive review.

The static pass is paired with a *runtime* sanitizer for what static
analysis cannot see: :meth:`repro.sim.kernel.GlobalScheduler.enable_sanitizer`
installs per-event invariant checks (clock monotonicity, past-scheduling
detection, probe write-barriers, end-of-run leak detection).
"""

from repro.lint.engine import (
    Finding,
    LintError,
    ModuleContext,
    Rule,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
)

__all__ = [
    "Finding",
    "LintError",
    "ModuleContext",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
]
