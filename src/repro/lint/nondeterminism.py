"""Tier 1: generic nondeterminism rules (ND01..ND05).

These rules encode the repository's determinism discipline: every
stochastic choice flows from an explicitly seeded ``random.Random``
instance, virtual time is the only clock, and nothing order-sensitive
ever iterates an unordered container.  Each rule documents its exact
trigger and its known blind spots -- the static pass is a tripwire, not
a proof; the runtime sanitizer (:mod:`repro.sim.sanitizer`) covers what
the AST cannot see.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.lint.engine import Finding, ModuleContext, Rule, dotted_name

#: ``random`` module-level callables that are fine: seeded-instance
#: constructors.  Everything else on the module draws from the shared,
#: implicitly seeded global state.
_ALLOWED_RANDOM = {"random.Random"}

#: numpy RNG constructors that are deterministic *when given a seed*.
_SEEDABLE_NUMPY = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.RandomState",
}

#: Wall-clock reads.  ``perf_counter`` is included deliberately: its
#: only legitimate use here is wall-time *profiling* that never feeds
#: simulation state, and such sites carry a justified pragma.
_WALL_CLOCK = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: Set-returning set methods (receiver must itself be a known set).
_SET_COMBINATORS = {"union", "intersection", "difference",
                    "symmetric_difference", "copy"}

#: Consumers for which unordered iteration is order-insensitive.
_ORDER_FREE_CONSUMERS = {"sorted", "len", "sum", "min", "max", "any", "all",
                         "set", "frozenset"}

#: Annotation heads that mean "this is a set".
_SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet", "AbstractSet",
                    "MutableSet", "typing.Set", "typing.FrozenSet",
                    "typing.AbstractSet", "typing.MutableSet"}


def _annotation_is_set(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        node = node.value
    name = dotted_name(node)
    if name is None and isinstance(node, ast.Constant) \
            and isinstance(node.value, str):
        # String annotations: take the head before any subscript.
        name = node.value.split("[")[0].strip()
    if name is None:
        return False
    return name.split(".")[-1] in {n.split(".")[-1] for n in _SET_ANNOTATIONS}


class RuleND01(Rule):
    """Unseeded module-level RNG calls.

    Flags any call into the ``random`` module's global state
    (``random.random()``, ``random.shuffle`` -- including from-imports)
    and any ``numpy.random`` module-level call; zero-argument
    constructions of seedable RNGs (``random.Random()``,
    ``np.random.default_rng()``) are flagged too.  Seeded instances
    (``random.Random(seed)``) are the sanctioned pattern.
    """

    rule_id = "ND01"
    title = "unseeded global RNG call"

    def check(self, ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve_call(node.func)
            if target is None:
                continue
            if target in _ALLOWED_RANDOM or target in _SEEDABLE_NUMPY:
                if not node.args and not node.keywords:
                    findings.append(ctx.finding(
                        self, node,
                        f"{target}() without a seed is entropy-seeded; pass "
                        f"an explicit seed"))
                continue
            if target.startswith("random.") or target == "random":
                findings.append(ctx.finding(
                    self, node,
                    f"call to {target} draws from the global RNG; use a "
                    f"seeded random.Random instance"))
            elif target.startswith("numpy.random."):
                findings.append(ctx.finding(
                    self, node,
                    f"call to {target} draws from numpy's global RNG; use a "
                    f"seeded Generator"))
        return findings


class RuleND02(Rule):
    """Wall-clock reads in simulation code.

    Virtual time is the only clock: any ``time.time`` / ``datetime.now``
    style read makes behaviour depend on the host.  ``perf_counter`` is
    flagged as well -- wall-time profiling that provably never feeds
    simulation state is the one sanctioned use, annotated in place with
    a justified pragma.
    """

    rule_id = "ND02"
    title = "wall-clock read"

    def check(self, ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve_call(node.func)
            if target in _WALL_CLOCK:
                findings.append(ctx.finding(
                    self, node,
                    f"{target} reads the wall clock; simulation state must "
                    f"derive from virtual time only"))
        return findings


class _SetTypeIndex(ast.NodeVisitor):
    """Module-wide index of set-typed attributes and set-returning defs."""

    def __init__(self) -> None:
        self.set_attrs: Set[str] = set()
        self.set_funcs: Set[str] = set()

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if _annotation_is_set(node.annotation):
            target = node.target
            if isinstance(target, ast.Attribute):
                self.set_attrs.add(target.attr)
            elif isinstance(target, ast.Name):
                self.set_attrs.add(target.id)
        self.generic_visit(node)

    def _visit_func(self, node) -> None:
        if _annotation_is_set(node.returns):
            self.set_funcs.add(node.name)
        self.generic_visit(node)

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func


def _walk_scope(body: List[ast.stmt]):
    """Yield every node of a scope without entering nested def scopes."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # a separate scope, analysed on its own
        stack.extend(ast.iter_child_nodes(node))


class _ScopeSets:
    """Names assigned set expressions in one scope (conservative).

    A name is treated as a set only when *every* plain assignment to it
    in the scope is a recognisable set expression -- mixed assignments
    drop the name rather than risk a false positive.
    """

    def __init__(self, index: _SetTypeIndex, ctx: ModuleContext) -> None:
        self.index = index
        self.ctx = ctx
        self.names: Set[str] = set()

    def collect(self, body: List[ast.stmt]) -> None:
        # Two passes so ``x = set(); y = x`` resolves ``y``: the first
        # pass seeds ``self.names``, the second re-evaluates with it.
        for _ in range(2):
            set_assigned: Dict[str, bool] = {}
            for node in _walk_scope(body):
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) \
                        and isinstance(node.target, ast.Name):
                    if _annotation_is_set(node.annotation):
                        set_assigned.setdefault(node.target.id, True)
                    continue
                if value is None:
                    continue
                is_set = self.is_set_expr(value)
                for target in targets:
                    if isinstance(target, ast.Name):
                        prior = set_assigned.get(target.id, True)
                        set_assigned[target.id] = prior and is_set
            self.names = {name for name, ok in set_assigned.items() if ok}

    def is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Attribute):
            return node.attr in self.index.set_attrs
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return True
                return func.id in self.index.set_funcs
            if isinstance(func, ast.Attribute):
                if func.attr in _SET_COMBINATORS \
                        and self.is_set_expr(func.value):
                    return True
                return func.attr in self.index.set_funcs
        return False


class RuleND03(Rule):
    """Unordered ``set`` iteration feeding order-sensitive consumers.

    Set iteration order is a function of element hashes and insertion
    history; feeding it into a ``for`` body, a list, or a string join
    makes event order (and therefore the kernel fingerprint) depend on
    it.  Flagged sites either wrap the iterable in ``sorted(...)`` or
    carry a pragma arguing the body is order-insensitive.

    Trigger: ``for`` statements, list comprehensions and
    ``list()/tuple()/"".join()`` calls whose iterable is a recognisable
    set expression -- a set display/comprehension, ``set()``/
    ``frozenset()`` calls, set-operator expressions, names consistently
    assigned sets in the scope, attributes or local functions annotated
    set-typed anywhere in the module.  Aggregations that are
    order-insensitive (``sum``/``min``/``max``/``any``/``all``/``len``/
    ``sorted``/``set``) are not flagged, and neither are set/generator
    comprehensions that only feed those.
    """

    rule_id = "ND03"
    title = "unordered set iteration"

    def check(self, ctx: ModuleContext) -> List[Finding]:
        index = _SetTypeIndex()
        index.visit(ctx.tree)
        findings: List[Finding] = []
        self._check_scope(ctx, index, ctx.tree.body, findings)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_scope(ctx, index, node.body, findings)
        return findings

    def _check_scope(self, ctx: ModuleContext, index: _SetTypeIndex,
                     body: List[ast.stmt], findings: List[Finding]) -> None:
        scope = _ScopeSets(index, ctx)
        scope.collect(body)
        for node in _walk_scope(body):
            if isinstance(node, ast.For) and scope.is_set_expr(node.iter):
                findings.append(ctx.finding(
                    self, node.iter,
                    "iterating a set: order is hash/insertion dependent; "
                    "wrap in sorted(...) or justify with a pragma"))
            elif isinstance(node, ast.ListComp):
                for gen in node.generators:
                    if scope.is_set_expr(gen.iter):
                        findings.append(ctx.finding(
                            self, gen.iter,
                            "list built by iterating a set inherits "
                            "nondeterministic order; sort first"))
            elif isinstance(node, ast.Call):
                func = node.func
                name = func.id if isinstance(func, ast.Name) else None
                if name in ("list", "tuple") and len(node.args) == 1 \
                        and scope.is_set_expr(node.args[0]):
                    findings.append(ctx.finding(
                        self, node,
                        f"{name}(<set>) materialises nondeterministic "
                        f"order; use sorted(...)"))
                elif isinstance(func, ast.Attribute) \
                        and func.attr == "join" and len(node.args) == 1 \
                        and scope.is_set_expr(node.args[0]):
                    findings.append(ctx.finding(
                        self, node,
                        "join over a set concatenates in "
                        "nondeterministic order; sort first"))


class RuleND04(Rule):
    """``id()`` / ``hash()`` inside ordering keys.

    ``id`` is an allocation address and ``hash`` of strings is salted
    per process (PYTHONHASHSEED): either one inside a ``sorted``/
    ``min``/``max``/``.sort`` key makes the order vary across runs.
    """

    rule_id = "ND04"
    title = "id()/hash() in an ordering key"

    def check(self, ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_order_call = (
                (isinstance(func, ast.Name)
                 and func.id in ("sorted", "min", "max"))
                or (isinstance(func, ast.Attribute) and func.attr == "sort")
            )
            if not is_order_call:
                continue
            for child in node.args + [kw.value for kw in node.keywords]:
                for inner in ast.walk(child):
                    if isinstance(inner, ast.Call) \
                            and isinstance(inner.func, ast.Name) \
                            and inner.func.id in ("id", "hash"):
                        findings.append(ctx.finding(
                            self, inner,
                            f"{inner.func.id}() in an ordering key varies "
                            f"across processes/runs; derive a stable key"))
        return findings


class RuleND05(Rule):
    """Mutable default arguments.

    A ``def f(x=[])`` default is shared across calls: state leaks
    between invocations in call order, which is exactly the kind of
    hidden coupling that makes two same-seed runs diverge once any call
    order changes.  Use ``None`` plus an in-body default.
    """

    rule_id = "ND05"
    title = "mutable default argument"

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray",
                      "collections.defaultdict", "collections.OrderedDict",
                      "defaultdict", "OrderedDict"}

    def check(self, ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if isinstance(default, (ast.List, ast.Dict, ast.Set,
                                        ast.ListComp, ast.DictComp,
                                        ast.SetComp)):
                    findings.append(ctx.finding(
                        self, default,
                        "mutable default is shared across calls; default to "
                        "None and build inside the body"))
                elif isinstance(default, ast.Call):
                    name = dotted_name(default.func)
                    if name in self._MUTABLE_CALLS:
                        findings.append(ctx.finding(
                            self, default,
                            f"{name}() default is evaluated once and shared "
                            f"across calls; default to None"))
        return findings


NONDETERMINISM_RULES = [RuleND01, RuleND02, RuleND03, RuleND04, RuleND05]

__all__ = ["NONDETERMINISM_RULES", "RuleND01", "RuleND02", "RuleND03",
           "RuleND04", "RuleND05"]
