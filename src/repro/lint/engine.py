"""The rule engine: contexts, pragmas, findings, and the scan driver.

The engine is deliberately small.  A :class:`Rule` sees one parsed
module at a time through a :class:`ModuleContext` (source, AST, path
parts for scoping, and an import-alias resolver) and yields
:class:`Finding` objects.  The engine then subtracts everything an
inline pragma suppresses::

    self._rng = random.Random()  # simlint: disable=ND01 -- calibration only
    # simlint: disable-file=SD03 -- this module *is* the accessor layer

``disable=`` suppresses the named rules on that physical line (the line
of the flagged AST node); ``disable-file=`` suppresses them for the
whole module.  Text after ``--`` is the justification; the engine keeps
it in :attr:`ModuleContext.pragma_justifications` so tooling can reject
bare pragmas if it wants to.  A pragma naming a rule the engine does not
know is itself reported (``E002``) -- a typo in a suppression must not
silently re-enable the finding on review.

Rules never import each other and hold no state between modules, so the
scan is trivially restartable and order-independent: findings are
reported sorted by ``(path, line, column, rule)``.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: ``# simlint: disable=ND01,SD02 -- why`` / ``# simlint: disable-file=...``
_PRAGMA_RE = re.compile(
    r"#\s*simlint:\s*disable(?P<scope>-file)?\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
    r"(?:\s+--\s*(?P<why>.*))?"
)

#: Engine-level diagnostics (not suppressible, not real rules).
SYNTAX_ERROR = "E001"
UNKNOWN_PRAGMA_RULE = "E002"
BARE_PRAGMA = "E003"


@dataclass(frozen=True)
class Finding:
    """One reported hazard at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


class LintError(Exception):
    """Raised for engine misuse (unknown rule selection, bad path)."""


class _ImportMap(ast.NodeVisitor):
    """Resolves local names to canonical dotted import paths.

    ``import numpy as np`` maps ``np`` -> ``numpy``; ``from random
    import shuffle as mix`` maps ``mix`` -> ``random.shuffle``.  Names
    not bound by an import resolve to nothing, so a local variable that
    happens to be called ``random`` never triggers the RNG rules.
    """

    def __init__(self) -> None:
        self.names: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname is not None:
                self.names[alias.asname] = alias.name
            else:
                # ``import numpy.random`` binds the *root* name only.
                root = alias.name.split(".")[0]
                self.names[root] = root

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports cannot name stdlib hazards
        for alias in node.names:
            bound = alias.asname if alias.asname is not None else alias.name
            self.names[bound] = f"{node.module}.{alias.name}"


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a pure attribute chain rooted at a Name, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass
class ModuleContext:
    """Everything a rule may look at for one module."""

    path: str
    source: str
    tree: ast.Module
    #: Normalised path components, used for scoping (``"obs" in parts``).
    parts: Tuple[str, ...]
    imports: Dict[str, str] = field(default_factory=dict)
    #: line -> rules disabled on that line.
    line_pragmas: Dict[int, Set[str]] = field(default_factory=dict)
    #: rules disabled for the whole module.
    file_pragmas: Set[str] = field(default_factory=set)
    #: (line, rule) -> justification text after ``--`` (may be empty).
    pragma_justifications: Dict[Tuple[int, str], str] = field(
        default_factory=dict)

    @property
    def is_obs_module(self) -> bool:
        return "obs" in self.parts

    @property
    def is_simulator_layer(self) -> bool:
        """Modules that legitimately own raw simulator access (SD03 scope):
        the simulator package itself, the kernel, and the kernel's runtime
        sanitizer (whose whole job is inspecting raw source clocks)."""
        return ("net" in self.parts
                or self.parts[-2:] in (("sim", "kernel.py"),
                                       ("sim", "sanitizer.py")))

    def resolve_call(self, node: ast.expr) -> Optional[str]:
        """Canonical dotted target of a call expression, import-aware.

        Returns None unless the chain is rooted at an imported name, so
        shadowing locals never resolve to module paths.
        """
        dotted = dotted_name(node)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        canonical_root = self.imports.get(root)
        if canonical_root is None:
            return None
        return f"{canonical_root}.{rest}" if rest else canonical_root

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(rule=rule.rule_id, path=self.path,
                       line=getattr(node, "lineno", 0),
                       col=getattr(node, "col_offset", 0) + 1,
                       message=message)


class Rule:
    """Base class: one check over one module at a time."""

    rule_id: str = "??"
    title: str = ""

    def check(self, ctx: ModuleContext) -> List[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that sees the whole program at once.

    Project rules consume the shared :class:`ProjectContext` (symbol
    table, call graph, dataflow summaries) built over every parse-clean
    module of the scan; findings still attach to individual modules and
    are suppressed by that module's pragmas exactly like module-local
    findings.  Single-file scans simply run them over a one-module
    project, so fixtures and ``lint_source`` keep working unchanged.
    """

    def check(self, ctx: ModuleContext) -> List[Finding]:
        return []

    def check_project(self, project: "ProjectContext") -> List[Finding]:
        raise NotImplementedError


class ProjectContext:
    """The whole scanned program: modules plus lazily-built analyses."""

    def __init__(self, modules: Sequence[ModuleContext]) -> None:
        self.modules = list(modules)
        self.by_path: Dict[str, ModuleContext] = {
            ctx.path: ctx for ctx in self.modules}
        self._index = None
        self._timeflow = None
        self._purity = None

    @property
    def index(self):
        """The project symbol table / call graph (built once)."""
        if self._index is None:
            from repro.lint.callgraph import build_index
            self._index = build_index(self.modules)
        return self._index

    @property
    def timeflow(self):
        """The interprocedural time-domain taint analysis (run once)."""
        if self._timeflow is None:
            from repro.lint.dataflow import analyze_timeflow
            self._timeflow = analyze_timeflow(self.index)
        return self._timeflow

    @property
    def purity(self):
        """Impure functions -> witness chains (computed once)."""
        if self._purity is None:
            self._purity = self.index.compute_purity()
        return self._purity


def all_rules() -> List[Rule]:
    """Every shipped rule; ids are unique and sorted (ND, RP, SD, TD)."""
    from repro.lint.discipline import DISCIPLINE_RULES
    from repro.lint.nondeterminism import NONDETERMINISM_RULES
    from repro.lint.provenance import PROVENANCE_RULES
    from repro.lint.timedomain import TIMEDOMAIN_RULES

    return [cls() for cls in NONDETERMINISM_RULES + PROVENANCE_RULES
            + DISCIPLINE_RULES + TIMEDOMAIN_RULES]


def known_rule_ids() -> Set[str]:
    return {rule.rule_id for rule in all_rules()}


def _collect_pragmas(ctx: ModuleContext, known: Set[str],
                     diagnostics: List[Finding]) -> None:
    for lineno, line in enumerate(ctx.source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        rules = {r.strip() for r in match.group("rules").split(",") if r.strip()}
        why = (match.group("why") or "").strip()
        for rule_id in sorted(rules):
            if rule_id not in known:
                diagnostics.append(Finding(
                    rule=UNKNOWN_PRAGMA_RULE, path=ctx.path, line=lineno,
                    col=match.start() + 1,
                    message=f"pragma names unknown rule {rule_id!r}"))
                continue
            if match.group("scope"):
                ctx.file_pragmas.add(rule_id)
            else:
                ctx.line_pragmas.setdefault(lineno, set()).add(rule_id)
            ctx.pragma_justifications[(lineno, rule_id)] = why


def _select(rules: Optional[Sequence[Rule]],
            select: Optional[Iterable[str]]) -> List[Rule]:
    active = list(rules) if rules is not None else all_rules()
    if select is not None:
        wanted = set(select)
        known = {rule.rule_id for rule in active}
        unknown = wanted - known
        if unknown:
            raise LintError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        active = [rule for rule in active if rule.rule_id in wanted]
    return active


def _build_context(source: str, path: str) -> Tuple[Optional[ModuleContext],
                                                    Optional[Finding]]:
    normalized = path.replace(os.sep, "/")
    parts = tuple(p for p in normalized.split("/") if p and p != ".")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, Finding(rule=SYNTAX_ERROR, path=path,
                             line=exc.lineno or 0, col=(exc.offset or 0),
                             message=f"file does not parse: {exc.msg}")
    imports = _ImportMap()
    imports.visit(tree)
    return ModuleContext(path=path, source=source, tree=tree, parts=parts,
                         imports=imports.names), None


def _suppressed(ctx: ModuleContext, found: Finding) -> bool:
    return (found.rule in ctx.file_pragmas
            or found.rule in ctx.line_pragmas.get(found.line, ()))


def lint_sources(entries: Sequence[Tuple[str, str]], *,
                 rules: Optional[Sequence[Rule]] = None,
                 select: Optional[Iterable[str]] = None,
                 respect_pragmas: bool = True,
                 require_justification: bool = False) -> List[Finding]:
    """Scan ``(path, source)`` modules as one program; sorted findings.

    Module-local rules run per module; :class:`ProjectRule` subclasses
    run once over the whole set (symbol table and call graph span every
    parse-clean module), with their findings suppressed by the owning
    module's pragmas.  ``require_justification`` additionally reports a
    ``E003`` diagnostic for every pragma whose ``--`` justification is
    missing or empty.
    """
    active = _select(rules, select)
    known = known_rule_ids()
    findings: List[Finding] = []
    contexts: List[ModuleContext] = []
    for path, source in entries:
        ctx, error = _build_context(source, path)
        if ctx is None:
            findings.append(error)
            continue
        _collect_pragmas(ctx, known, findings)
        contexts.append(ctx)

    project = ProjectContext(contexts)
    for ctx in contexts:
        for rule in active:
            if isinstance(rule, ProjectRule):
                continue
            for found in rule.check(ctx):
                if respect_pragmas and _suppressed(ctx, found):
                    continue
                findings.append(found)
    for rule in active:
        if not isinstance(rule, ProjectRule):
            continue
        for found in rule.check_project(project):
            ctx = project.by_path.get(found.path)
            if respect_pragmas and ctx is not None \
                    and _suppressed(ctx, found):
                continue
            findings.append(found)

    if require_justification:
        for ctx in contexts:
            for (line, rule_id), why in sorted(
                    ctx.pragma_justifications.items()):
                if not why:
                    findings.append(Finding(
                        rule=BARE_PRAGMA, path=ctx.path, line=line, col=1,
                        message=f"pragma suppressing {rule_id} carries no "
                                f"justification; add '-- why' or remove it"))
    return sorted(findings, key=lambda f: f.sort_key)


def lint_source(source: str, path: str = "<string>", *,
                rules: Optional[Sequence[Rule]] = None,
                select: Optional[Iterable[str]] = None,
                respect_pragmas: bool = True,
                require_justification: bool = False) -> List[Finding]:
    """Scan one module's source text; returns sorted findings."""
    return lint_sources([(path, source)], rules=rules, select=select,
                        respect_pragmas=respect_pragmas,
                        require_justification=require_justification)


def lint_file(path: str, **kwargs) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    return lint_source(source, path=path, **kwargs)


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    collected: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            collected.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames
                                     if d not in ("__pycache__", ".git"))
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        collected.append(os.path.join(dirpath, name))
        else:
            raise LintError(f"no such file or directory: {path}")
    return sorted(dict.fromkeys(collected))


def lint_paths(paths: Iterable[str], **kwargs) -> List[Finding]:
    """Scan files and directory trees *as one program*; sorted findings.

    All files are parsed up front so whole-program rules see every
    module: a probe in ``obs/`` calling a helper defined in ``cluster/``
    is resolved across the file boundary.
    """
    entries: List[Tuple[str, str]] = []
    for filename in iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as fh:
            entries.append((filename, fh.read()))
    return lint_sources(entries, **kwargs)


__all__ = [
    "Finding", "LintError", "ModuleContext", "ProjectContext",
    "ProjectRule", "Rule",
    "all_rules", "dotted_name", "iter_python_files",
    "lint_file", "lint_paths", "lint_source", "lint_sources",
    "BARE_PRAGMA", "SYNTAX_ERROR", "UNKNOWN_PRAGMA_RULE",
]
