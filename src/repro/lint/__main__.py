"""CLI driver: ``python -m repro.lint [paths...]``.

With no paths the scan targets the installed ``repro`` package tree --
the self-scan CI runs.  Exit status: 0 clean, 1 findings, 2 usage
error.  ``--no-pragmas`` reveals suppressed findings (useful to audit
what the pragmas are hiding); ``--select`` narrows to specific rules.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.lint.engine import LintError, all_rules, lint_paths


def _default_target() -> str:
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def _list_rules() -> str:
    lines = ["rule   title", "----   -----"]
    for rule in all_rules():
        lines.append(f"{rule.rule_id}   {rule.title}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="determinism & simulation-safety static analysis")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to scan "
                             "(default: the repro package itself)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run (e.g. ND01,SD03)")
    parser.add_argument("--no-pragmas", action="store_true",
                        help="ignore simlint pragmas and report everything")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("--statistics", action="store_true",
                        help="append a per-rule findings summary")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    paths = args.paths or [_default_target()]
    select = None
    if args.select:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
    try:
        findings = lint_paths(paths, select=select,
                              respect_pragmas=not args.no_pragmas)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    for finding in findings:
        print(finding.format())
    if args.statistics and findings:
        counts: dict = {}
        for finding in findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        print("--")
        for rule_id in sorted(counts):
            print(f"{rule_id}: {counts[rule_id]}")
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
