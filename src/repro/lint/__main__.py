"""CLI driver: ``python -m repro.lint [paths...]``.

With no paths the scan targets the installed ``repro`` package tree --
the self-scan CI runs.  Exit status: 0 clean, 1 findings, 2 usage
error.  ``--no-pragmas`` reveals suppressed findings (useful to audit
what the pragmas are hiding); ``--select`` narrows to specific rules;
``--require-justification`` additionally fails on pragmas without a
``-- why`` trailer.

Incremental-adoption surface::

    python -m repro.lint --format sarif --output scan.sarif src
    python -m repro.lint --write-baseline lint-baseline.json examples
    python -m repro.lint --baseline lint-baseline.json examples
    python -m repro.lint --changed origin/main src

``--changed BASE`` still parses every requested file (whole-program
rules need the full call graph) but only reports findings in files git
says changed since ``BASE``; ``--baseline`` drops findings whose
line-content fingerprint is in the committed ledger.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.lint import baseline as baseline_mod
from repro.lint.engine import LintError, all_rules, lint_paths
from repro.lint.output import RENDERERS


def _default_target() -> str:
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def _list_rules() -> str:
    lines = ["rule   title", "----   -----"]
    for rule in all_rules():
        lines.append(f"{rule.rule_id}   {rule.title}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="determinism & simulation-safety static analysis")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to scan "
                             "(default: the repro package itself)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run (e.g. ND01,SD03)")
    parser.add_argument("--no-pragmas", action="store_true",
                        help="ignore simlint pragmas and report everything")
    parser.add_argument("--require-justification", action="store_true",
                        help="fail on pragmas without a '-- why' justification")
    parser.add_argument("--format", choices=sorted(RENDERERS),
                        default="text", dest="fmt",
                        help="output format (default: text)")
    parser.add_argument("--output", metavar="FILE",
                        help="write the report to FILE instead of stdout")
    parser.add_argument("--baseline", metavar="FILE",
                        help="suppress findings fingerprinted in FILE")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="record current findings as the accepted "
                             "baseline and exit 0")
    parser.add_argument("--changed", metavar="BASE",
                        help="report only findings in files git changed "
                             "since BASE (whole program is still analysed)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("--statistics", action="store_true",
                        help="append a per-rule findings summary")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    paths = args.paths or [_default_target()]
    select = None
    if args.select:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
    try:
        findings = lint_paths(
            paths, select=select,
            respect_pragmas=not args.no_pragmas,
            require_justification=args.require_justification)

        cache = baseline_mod.SourceCache()
        if args.changed:
            changed = baseline_mod.changed_files(args.changed)
            findings = baseline_mod.restrict_to_changed(findings, changed)

        if args.write_baseline:
            count = baseline_mod.write_baseline(
                args.write_baseline, findings, cache)
            print(f"baseline: recorded {count} finding(s) in "
                  f"{args.write_baseline}", file=sys.stderr)
            return 0

        suppressed = 0
        if args.baseline:
            accepted = baseline_mod.load_baseline(args.baseline)
            findings, suppressed = baseline_mod.apply_baseline(
                findings, accepted, cache)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    report = RENDERERS[args.fmt](findings, cache)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report)
    else:
        sys.stdout.write(report)

    if args.statistics and findings and args.fmt == "text":
        counts: dict = {}
        for finding in findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        print("--")
        for rule_id in sorted(counts):
            print(f"{rule_id}: {counts[rule_id]}")
    if suppressed:
        print(f"baseline: suppressed {suppressed} known finding(s)",
              file=sys.stderr)
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
