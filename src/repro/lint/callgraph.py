"""Whole-program symbol table, call graph, and purity inference.

The module-local rules (ND/SD tiers) see one AST at a time; the
whole-program rules (TD/RP tiers, and SD01's transitive form) need to
answer questions that span modules: *which function does this call
resolve to?* and *does that function, transitively, mutate protocol
state?*  This module builds that index from the already-parsed
:class:`~repro.lint.engine.ModuleContext` set.

Resolution is deliberately conservative.  A call resolves to

* the top-level function of the same module bound by that name,
* the function an import alias points at (``from repro.cluster.ring
  import derive_seed as ds`` makes ``ds(...)`` resolve cross-module --
  the alias fixpoint is inherited from the engine's ``_ImportMap``),
* the enclosing class's method for ``self.method()`` calls, or
* for a bare attribute call ``obj.method()``: every project function
  named ``method``.  Callers that need precision (purity propagation,
  summary lookup) only use this bucket when it is *unambiguous* -- one
  candidate project-wide -- so a common name like ``run`` never smears
  impurity across unrelated classes.

Module identity is matched by dotted-path *suffix* (``src/repro/cluster/
ring.py`` answers for ``repro.cluster.ring``), which keeps the index
independent of where the scan was rooted.

Purity: a function is **impure** when it syntactically calls one of the
protocol-mutating APIs (:data:`repro.lint.discipline.MUTATING_CALLS`) on
a non-``self`` receiver, or when it calls -- through any precisely
resolved edge -- a function already known impure.  The fixpoint records
a witness chain so findings can say *how* a probe reaches the mutation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.engine import ModuleContext, dotted_name

#: Name of the synthetic function wrapping a module's top-level code.
MODULE_BODY = "<module>"


@dataclass(eq=False)  # identity semantics: each def site is one node
class FunctionInfo:
    """One function or method (or a module body) in the project."""

    ctx: ModuleContext
    node: ast.AST  # FunctionDef / AsyncFunctionDef / Module
    name: str
    cls: Optional[str] = None
    #: Dotted module path derived from the file path (``repro.sim.kernel``).
    module: str = ""

    @property
    def qualname(self) -> str:
        owner = f"{self.cls}." if self.cls else ""
        return f"{self.module}:{owner}{self.name}"

    @property
    def params(self) -> List[str]:
        if isinstance(self.node, ast.Module):
            return []
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if names and self.cls is not None and names[0] in ("self", "cls"):
            names = names[1:]
        return names

    @property
    def body(self) -> List[ast.stmt]:
        return self.node.body


def module_dotted_path(ctx: ModuleContext) -> str:
    """Dotted module path from the file path (``a/b/c.py`` -> ``a.b.c``)."""
    parts = list(ctx.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _walk_calls(body: Sequence[ast.stmt]):
    """Every Call node of a scope, without entering nested def scopes."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


class ProjectIndex:
    """Symbol table + call graph over every parse-clean module."""

    def __init__(self, modules: Sequence[ModuleContext]) -> None:
        self.modules = list(modules)
        self.functions: List[FunctionInfo] = []
        #: ctx.path -> {name: top-level FunctionInfo}
        self._module_scope: Dict[str, Dict[str, FunctionInfo]] = {}
        #: (ctx.path, class name) -> {method name: FunctionInfo}
        self._class_scope: Dict[Tuple[str, str], Dict[str, FunctionInfo]] = {}
        #: bare name -> every function/method with that name.
        self._by_name: Dict[str, List[FunctionInfo]] = {}
        #: dotted module path (suffix-matched) -> ctx.path
        self._module_paths: Dict[str, str] = {}
        for ctx in self.modules:
            self._index_module(ctx)

    # -- construction ---------------------------------------------------------

    def _add(self, info: FunctionInfo) -> None:
        self.functions.append(info)
        self._by_name.setdefault(info.name, []).append(info)

    def _index_module(self, ctx: ModuleContext) -> None:
        dotted = module_dotted_path(ctx)
        self._module_paths[dotted] = ctx.path
        scope: Dict[str, FunctionInfo] = {}
        self._module_scope[ctx.path] = scope

        self._add(FunctionInfo(ctx=ctx, node=ctx.tree, name=MODULE_BODY,
                               module=dotted))
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(ctx=ctx, node=node, name=node.name,
                                    module=dotted)
                scope[node.name] = info
                self._add(info)
            elif isinstance(node, ast.ClassDef):
                methods: Dict[str, FunctionInfo] = {}
                self._class_scope[(ctx.path, node.name)] = methods
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        info = FunctionInfo(ctx=ctx, node=item,
                                            name=item.name, cls=node.name,
                                            module=dotted)
                        methods[item.name] = info
                        self._add(info)

    # -- lookup ---------------------------------------------------------------

    def module_function(self, ctx: ModuleContext,
                        name: str) -> Optional[FunctionInfo]:
        return self._module_scope.get(ctx.path, {}).get(name)

    def method(self, ctx: ModuleContext, cls: str,
               name: str) -> Optional[FunctionInfo]:
        return self._class_scope.get((ctx.path, cls), {}).get(name)

    def named(self, name: str) -> List[FunctionInfo]:
        return list(self._by_name.get(name, ()))

    def _resolve_dotted(self, canonical: str) -> List[FunctionInfo]:
        """``repro.cluster.ring.derive_seed`` -> its FunctionInfo(s).

        Matches the module part by dotted-path suffix, then the final
        component against the module's top-level scope; a two-level tail
        (``mod.Class.method``) is also tried.
        """
        prefix, _, last = canonical.rpartition(".")
        if not prefix:
            return []
        matches: List[FunctionInfo] = []
        for dotted, path in self._module_paths.items():
            if dotted == prefix or dotted.endswith("." + prefix):
                info = self._module_scope.get(path, {}).get(last)
                if info is not None:
                    matches.append(info)
        if matches:
            return matches
        # ``pkg.mod.Class.method``: try the penultimate part as a class.
        head, _, cls = prefix.rpartition(".")
        if head:
            for dotted, path in self._module_paths.items():
                if dotted == head or dotted.endswith("." + head):
                    info = self._class_scope.get((path, cls), {}).get(last)
                    if info is not None:
                        matches.append(info)
        return matches

    def resolve_call(self, caller: FunctionInfo,
                     call: ast.Call) -> List[FunctionInfo]:
        """Candidate callees of ``call`` from inside ``caller``.

        A single-element result is a *precise* edge; multiple elements
        mean a bare-attribute call matched several same-named methods
        (callers decide how much ambiguity they tolerate); empty means
        the target is outside the project (stdlib, builtins, dynamic).
        """
        ctx = caller.ctx
        func = call.func
        if isinstance(func, ast.Name):
            local = self.module_function(ctx, func.id)
            if local is not None:
                return [local]
            canonical = ctx.imports.get(func.id)
            if canonical is not None:
                return self._resolve_dotted(canonical)
            return []
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id == "self" \
                    and caller.cls is not None:
                own = self.method(ctx, caller.cls, func.attr)
                if own is not None:
                    return [own]
                return self.named(func.attr)
            canonical = ctx.resolve_call(func)
            if canonical is not None:
                resolved = self._resolve_dotted(canonical)
                if resolved:
                    return resolved
            return self.named(func.attr)
        return []

    def precise_callees(self, caller: FunctionInfo) -> List[
            Tuple[ast.Call, FunctionInfo]]:
        """(call site, callee) pairs for unambiguously resolved calls."""
        edges: List[Tuple[ast.Call, FunctionInfo]] = []
        for call in _walk_calls(caller.body):
            candidates = self.resolve_call(caller, call)
            if len(candidates) == 1 and candidates[0] is not caller:
                edges.append((call, candidates[0]))
        return edges

    # -- purity ---------------------------------------------------------------

    def compute_purity(self) -> Dict[FunctionInfo, List[str]]:
        """Impure functions -> witness chain down to the mutating call.

        The chain lists hops: ``["helper()", ".invoke_write()"]`` means
        the function calls ``helper`` which calls the mutating API.
        """
        from repro.lint.discipline import MUTATING_CALLS

        impure: Dict[FunctionInfo, List[str]] = {}
        for info in self.functions:
            for call in _walk_calls(info.body):
                func = call.func
                if isinstance(func, ast.Attribute) \
                        and func.attr in MUTATING_CALLS \
                        and dotted_name(func.value) != "self":
                    impure[info] = [f".{func.attr}()"]
                    break

        edges: Dict[FunctionInfo, List[Tuple[FunctionInfo, str]]] = {}
        for info in self.functions:
            edges[info] = [(callee, f"{callee.name}()")
                           for _, callee in self.precise_callees(info)]

        changed = True
        while changed:
            changed = False
            for info, callees in edges.items():
                if info in impure:
                    continue
                for callee, label in callees:
                    if callee in impure:
                        impure[info] = [label] + impure[callee]
                        changed = True
                        break
        return impure


def build_index(modules: Sequence[ModuleContext]) -> ProjectIndex:
    return ProjectIndex(modules)


__all__ = ["MODULE_BODY", "FunctionInfo", "ProjectIndex", "build_index",
           "module_dotted_path"]
