#!/usr/bin/env python3
"""A tour of the telemetry stack on ``quorum-reads-under-lag``.

The walkthrough drives the same fixed-seed scenario as
``examples/quorum_reads.py`` -- a 4-pool, r=3 cluster whose followers
lag by 400 time units, read through rotating 2-of-3 quorums with read
repair, writes entering at the nearest pool -- but this time with every
telemetry pillar on (``Telemetry.full()``):

* the **metrics registry** collects the router counters and the
  sampler's gauges/histograms behind one export path;
* the **kernel sampler** records a cluster-health time series every 25
  virtual time units (queue depths, replication lag, repair backlog,
  live pools), dumped as JSONL;
* the **trace recorder** emits per-operation spans -- write roots with
  forward-hop and replication-apply children, read roots with quorum
  legs and read-repair instants -- as Chrome ``trace_event`` JSON you
  can open in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``;
* the **pump profile** attributes every kernel event to its event type,
  flamegraph-ready via folded-stack lines.

The tour then re-runs the identical scenario with telemetry *off* and
checks the governing invariant plus the acceptance criteria: the kernel
fingerprints match (observation changed nothing), write spans carry
forward-hop and replication-apply children, and the sampled replication
lag rises under the burst then collapses to zero once repair and the
replication queues drain.  Exits non-zero if any of that fails, so the
CI smoke job doubles as the telemetry stack's correctness gate.

Run with:  PYTHONPATH=src python examples/telemetry_tour.py [--out DIR]
"""

from __future__ import annotations

import argparse
import json
import tempfile
from pathlib import Path

from repro import ClusterSimulation, LDSConfig, ReplicationConfig, Telemetry
from repro.sim import quorum_reads_under_lag

SEED = 7
KEYS = [f"obj-{i}" for i in range(16)]
POOLS = [f"pool-{i}" for i in range(4)]
REPLICATION_LAG = 400.0


def build(telemetry) -> ClusterSimulation:
    config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
    simulation = ClusterSimulation(
        config, POOLS, seed=SEED,
        writers_per_shard=2, readers_per_shard=2,
        replication=ReplicationConfig(r=3, replication_lag=REPLICATION_LAG,
                                      read_quorum=2,
                                      write_ingress="nearest"),
        read_policy="quorum",
        telemetry=telemetry,
    )
    simulation.ensure_shards(KEYS)
    simulation.apply(quorum_reads_under_lag(KEYS, seed=SEED))
    return simulation


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for trace.json / series.jsonl / "
                             "report.txt (default: a temp dir)")
    args = parser.parse_args()
    out = args.out if args.out is not None else \
        Path(tempfile.mkdtemp(prefix="telemetry-tour-"))
    out.mkdir(parents=True, exist_ok=True)

    telemetry = Telemetry.full()
    simulation = build(telemetry)
    print(f"cluster: {simulation.describe()}\n")

    failures = []

    # -- invariant: telemetry is pure observation --------------------------------
    bare = build(None)
    fingerprints_match = \
        simulation.kernel.fingerprint == bare.kernel.fingerprint
    print("== non-interference ==")
    print(f"  instrumented fingerprint: {simulation.kernel.fingerprint:#010x}")
    print(f"  bare fingerprint:         {bare.kernel.fingerprint:#010x}")
    print(f"  identical: {fingerprints_match}")
    if not fingerprints_match:
        failures.append("telemetry perturbed the run (fingerprint mismatch)")

    # -- trace spans --------------------------------------------------------------
    trace = telemetry.trace
    write_roots = trace.spans("write ")
    read_roots = trace.spans("read ")
    child_names = set()
    for root in write_roots:
        for child in trace.children_of(root["id"]):
            child_names.add(child["name"].split(" ")[0])
    print("\n== trace ==")
    print(f"  {len(trace.events)} events: {len(write_roots)} write roots, "
          f"{len(read_roots)} read roots, "
          f"{len(trace.open_handles())} never closed")
    print(f"  write-span children seen: {sorted(child_names)}")
    if "forward-hop" not in child_names:
        failures.append("no forward-hop children under write spans")
    if "replication-apply" not in child_names:
        failures.append("no replication-apply children under write spans")
    if trace.open_handles():
        failures.append("some root spans never closed")

    # -- sampled time series ------------------------------------------------------
    lag = telemetry.sampler.series("replication_lag", "max")
    print("\n== sampled replication lag ==")
    print(f"  {len(lag)} samples @ {telemetry.sampler.interval:g} time units")
    print(f"  peak={max(lag)} records, final={lag[-1]}")
    if max(lag) <= 0:
        failures.append("expected nonzero replication lag under the burst")
    if lag[-1] != 0:
        failures.append("expected the lag to collapse once queues drained")

    # -- artefacts ---------------------------------------------------------------
    trace_path = out / "trace.json"
    series_path = out / "series.jsonl"
    report_path = out / "report.txt"
    trace.write(trace_path)
    telemetry.sampler.write_jsonl(series_path)
    report = simulation.run_report()
    report_path.write_text(report + "\n", encoding="utf-8")

    with open(trace_path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if "traceEvents" not in payload:
        failures.append("trace.json is not Chrome trace_event JSON")

    print(f"\n{report}")
    print("\n== artefacts ==")
    print(f"  trace:  {trace_path}  (open in https://ui.perfetto.dev)")
    print(f"  series: {series_path}")
    print(f"  report: {report_path}")

    if failures:
        print("\nFAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nOK: fingerprint-identical instrumented run, "
          f"{len(write_roots)} write spans with "
          f"{sorted(child_names)} children, lag peak {max(lag)} -> 0.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
