#!/usr/bin/env python3
"""The cluster as its own correctness oracle: session audits over every
shipped scenario, plus proof the auditor can actually catch violations.

Runs all four shipped scenarios (repair-under-load, migration-under-load,
correlated-pool-failure, flash-crowd) on the global-clock kernel under a
fixed seed and audits each merged history for per-epoch atomicity *and*
the four per-client session guarantees across keys, shards and migration
epochs: monotonic reads, monotonic writes, read-your-writes and
writes-follow-reads.  Every scenario must audit clean.  Then the
injection harness perturbs one real history into a violation of each
guarantee class and shows the auditor detecting all of them -- an auditor
that has never fired is not evidence of anything.

Exits non-zero on any unexpected violation or missed detection, so the CI
smoke job doubles as a cluster-wide consistency gate.

Run with:  PYTHONPATH=src python examples/session_audit.py
"""

from repro import ClusterSimulation, LDSConfig
from repro.consistency.injection import inject_session_violation
from repro.consistency.sessions import SESSION_GUARANTEES, check_sessions
from repro.sim import (
    correlated_pool_failure,
    flash_crowd,
    migration_under_load,
    repair_under_load,
)

SEED = 11
KEYS = [f"obj-{i}" for i in range(16)]
POOLS = ["pool-0", "pool-1"]


def build_scenarios():
    return [
        (repair_under_load(KEYS, "pool-0/l2-0", seed=SEED, operations=160,
                           duration=600.0, fail_at=120.0), {}),
        (migration_under_load(KEYS, "pool-9", seed=SEED, operations=160,
                              duration=600.0, join_at=150.0), {}),
        (correlated_pool_failure(KEYS, "pool-0", seed=SEED, operations=160,
                                 duration=600.0, fail_at=120.0, stagger=5.0),
         {}),
        (flash_crowd(KEYS, seed=SEED, operations=120, crowd_operations=160,
                     shift_at=250.0, duration=400.0, latency_scale=1.5),
         {"writers_per_shard": 2, "readers_per_shard": 2}),
    ]


def main() -> None:
    config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
    failed = False
    audited_history = None

    print("session audits over the shipped scenarios "
          f"(seed={SEED}, pools={POOLS}):\n")
    for scenario, sim_kwargs in build_scenarios():
        simulation = ClusterSimulation(config, POOLS, seed=SEED,
                                       repair_min_interval=10.0, **sim_kwargs)
        simulation.apply(scenario)
        report = simulation.audit()
        sessions = report.sessions
        verdict = "OK" if report.ok else "FAILED"
        print(f"  {scenario.name:25s} {verdict:6s} "
              f"sessions={sessions.sessions_checked} "
              f"ops={sessions.operations_checked} "
              f"pairs={sessions.pairs_checked} "
              f"migrations={simulation.router.stats.migrations} "
              f"repairs={simulation.repair.stats.repairs_completed}")
        if not report.ok:
            failed = True
            if report.atomicity is not None:
                print(f"    atomicity: {report.atomicity}")
            for violation in sessions.violations[:5]:
                print(f"    {violation}")
        if scenario.name == "repair-under-load":
            audited_history = simulation.history(global_clock=True)

    print("\ninjection drill (repair-under-load history): every guarantee "
          "class must be detectable:")
    for guarantee in SESSION_GUARANTEES:
        injection = inject_session_violation(audited_history, guarantee)
        flagged = check_sessions(injection.history).for_guarantee(guarantee)
        blamed = any(set(injection.mutated) & set(v.operations)
                     for v in flagged)
        status = "detected" if flagged and blamed else "MISSED"
        print(f"  {guarantee:20s} {status}  ({injection.description})")
        if not (flagged and blamed):
            failed = True

    if failed:
        raise SystemExit("session audit FAILED")
    print("\nsession audit OK: all scenarios clean, all injections detected")


if __name__ == "__main__":
    main()
