#!/usr/bin/env python3
"""Replica groups end to end: r=3 placement, routed reads, a pool kill,
degraded follower reads, deterministic promotion -- and a clean audit.

The walkthrough builds a 4-pool cluster where every key's shard lives on
three pools (one LDS primary + two follower stores fed with an explicit
replication lag), drives a Zipf workload through the round-robin read
routing policy, then kills ``pool-0`` outright at t=300:

* groups whose *primary* lived there freeze primary-bound traffic, keep
  serving follower reads (the degraded-reads window), promote a caught-up
  follower after the detection delay, and flush the frozen operations
  into the promoted epoch;
* groups that only kept a *follower* there re-provision it on the next
  live ring pool.

The run must exit audit-clean -- per-epoch atomicity at every primary plus
all four session guarantees over the merged global-clock history -- and
the stale-follower injection drill proves the auditor would catch the
replica layer's characteristic failure mode if the session guard ever let
one through.  Exits non-zero otherwise, so the CI smoke job doubles as
the replica subsystem's correctness gate.

Run with:  PYTHONPATH=src python examples/replica_failover.py
"""

from repro import ClusterSimulation, LDSConfig, ReplicationConfig
from repro.consistency.injection import (
    inject_stale_follower_read,
    is_follower_read,
)
from repro.consistency.sessions import check_sessions
from repro.sim import replica_failover_under_load

SEED = 11
KEYS = [f"obj-{i}" for i in range(16)]
POOLS = [f"pool-{i}" for i in range(4)]
KILL_AT = 300.0


def main() -> int:
    config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
    simulation = ClusterSimulation(
        config, POOLS, seed=SEED,
        replication=ReplicationConfig(r=3, replication_lag=25.0,
                                      failover_detection_delay=12.0,
                                      catch_up_per_record=1.0),
        read_policy="round-robin",
    )
    simulation.ensure_shards(KEYS)
    print(f"cluster: {simulation.describe()}")
    group = simulation.replicas.groups[KEYS[0]]
    print(f"example replica set for {KEYS[0]!r}: {group.pools()} "
          f"(primary first)\n")

    scenario = replica_failover_under_load(KEYS, "pool-0", seed=SEED,
                                           kill_at=KILL_AT)
    print(f"scenario: {scenario.name} -- {scenario.description}\n")
    simulation.apply(scenario)

    print("== replica-layer timeline around the kill ==")
    shown = 0
    for time, kind, detail in simulation.timeline():
        if kind in ("kill-pool", "primary-down", "promote", "follower-lost",
                    "follower-provisioned"):
            print(f"  t={time:8.1f}  {kind:<20} {detail}")
            shown += 1
    if not shown:
        print("  (nothing -- the kill never happened?)")

    distribution = simulation.read_distribution()
    stats = simulation.replicas.stats
    print("\n== read routing ==")
    print(f"  {distribution.describe()}")
    for pool in sorted(distribution.counts):
        print(f"  {pool}: {distribution.counts[pool]} reads served")
    print(f"  replication: {stats.records_logged} records logged, "
          f"{stats.records_applied} applied, "
          f"{stats.catch_up_records} caught up at promotion, "
          f"{stats.followers_provisioned} follower(s) re-provisioned")

    failures = []
    if stats.promotions < 1:
        failures.append("expected at least one promotion")
    if distribution.follower_fraction < 0.30:
        failures.append(
            f"followers served only {distribution.follower_fraction:.0%} "
            "of reads (expected >= 30%)"
        )

    report = simulation.audit()
    print(f"\n== audit ==\n  {report.describe()}")
    if not report.ok:
        failures.append("the audit reported violations")

    history = simulation.history(global_clock=True)
    if any(is_follower_read(op) for op in history):
        injection = inject_stale_follower_read(history)
        injected = check_sessions(injection.history)
        status = "DETECTED" if not injected.ok else "MISSED"
        print(f"  stale-follower injection [{injection.guarantee}]: {status} "
              f"({injection.description})")
        if injected.ok:
            failures.append("the stale-follower injection went undetected")
    else:
        failures.append("no follower-served reads to inject against")

    if failures:
        print("\nFAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: failover promoted deterministically, followers carried "
          f"{distribution.follower_fraction:.0%} of reads, audit clean, "
          "injection detected.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
