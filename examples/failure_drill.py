#!/usr/bin/env python3
"""Failure drill: crash the maximum tolerated servers while clients keep working.

Exercises Theorems IV.8 (liveness) and IV.9 (atomicity): f1 edge servers
and f2 back-end servers crash at random times while two writers and two
readers run a mixed workload.  Every operation must still complete, the
history must be atomic, and the surviving back-end servers alone must
still be able to rebuild the latest value.

Run with:  python examples/failure_drill.py
"""

from repro import BoundedLatencyModel, LDSConfig, LDSSystem
from repro.consistency import LinearizabilityChecker, check_atomicity_by_tags
from repro.net.failures import FailureInjector
from repro.workloads import WorkloadGenerator, WorkloadRunner


def main() -> None:
    config = LDSConfig(n1=7, n2=9, f1=2, f2=2)
    print(f"Deployment: {config.describe()}")
    print(f"Crashing f1={config.f1} edge servers and f2={config.f2} back-end servers.\n")

    system = LDSSystem(config, num_writers=2, num_readers=2,
                       latency_model=BoundedLatencyModel(tau0=1, tau1=1, tau2=8, seed=3))

    injector = FailureInjector(seed=3)
    schedule = injector.random_schedule(config.l1_pids, config.f1, (10.0, 150.0))
    schedule = schedule.merge(injector.random_schedule(config.l2_pids, config.f2, (10.0, 150.0)))
    for pid, when in sorted(schedule.crash_times.items(), key=lambda item: item[1]):
        print(f"  scheduled crash: {pid} at t={when:.1f}")
    schedule.apply(system.network)

    workload = WorkloadGenerator(seed=3, client_spacing=80.0).mixed_random(
        num_operations=14, write_fraction=0.5, duration=300.0,
        num_writers=2, num_readers=2,
    )
    report = WorkloadRunner(system).run(workload)

    print(f"\noperations invoked:   {len(report.history)}")
    print(f"operations completed: {len(report.history) - report.incomplete_operations}")
    print(f"mean write latency:   {report.write_latency.mean:.1f}")
    print(f"mean read latency:    {report.read_latency.mean:.1f}")
    print(f"alive edge servers:   {system.alive_l1_count()}/{config.n1}")
    print(f"alive back-end:       {system.alive_l2_count()}/{config.n2}")

    tag_check = check_atomicity_by_tags(report.history.complete())
    search_check = LinearizabilityChecker().check(report.history.complete())
    print(f"\natomicity (tag-based checker):      {'OK' if tag_check is None else tag_check}")
    print(f"atomicity (linearizability search): {'OK' if search_check is None else search_check}")

    # The surviving back-end servers alone can still rebuild the latest value.
    surviving = {
        server.index: server.stored_element.data
        for server in system.l2_servers if not server.crashed
    }
    latest_tag = max(server.stored_tag for server in system.l2_servers if not server.crashed)
    rebuilt = system.code.decode_from_backend(dict(list(surviving.items())[: config.k]))
    print(f"\nlatest tag persisted in the back-end: {latest_tag}")
    print(f"value rebuilt from {config.k} surviving coded elements: {rebuilt!r}")


if __name__ == "__main__":
    main()
