#!/usr/bin/env python3
"""Quickstart: a single LDS object, a couple of writes, a couple of reads.

Builds a small two-layer deployment (5 edge servers tolerating 1 crash,
6 back-end servers tolerating 1 crash), writes two versions of an object,
reads it back, and prints the communication / storage costs next to the
closed-form values from the paper's Section V.

Run with:  python examples/quickstart.py
"""

from repro import FixedLatencyModel, LDSConfig, LDSSystem
from repro.consistency import check_atomicity_by_tags
from repro.core.analysis import mbr_read_cost, mbr_storage_cost_l2, mbr_write_cost


def main() -> None:
    config = LDSConfig(n1=5, n2=6, f1=1, f2=1)
    print(f"Deployment: {config.describe()}")
    print(f"L1 quorum size: {config.l1_quorum}, L2 quorum size: {config.l2_quorum}")

    # tau0/tau1 are fast edge links, tau2 the slow edge <-> back-end link.
    system = LDSSystem(config, num_writers=2, num_readers=2,
                       latency_model=FixedLatencyModel(tau0=1, tau1=1, tau2=10))

    # Two writers store versions of the object.
    first = system.write(b"object version 1", writer=0)
    second = system.write(b"object version 2", writer=1)
    print(f"\nwrite #1 tag={first.tag}, latency={first.duration:.1f}")
    print(f"write #2 tag={second.tag}, latency={second.duration:.1f}")

    # A read while the value is still cached in the edge layer.
    hot_read = system.read(reader=0)
    print(f"hot read  -> {hot_read.value!r} (latency {hot_read.duration:.1f})")

    # Let the system go quiescent: values are offloaded to the coded
    # back-end and garbage collected from the edge layer.
    system.run_until_idle()
    print(f"\nedge-layer temporary storage after quiescence: {system.storage.l1_cost:.2f}")
    print(f"back-end permanent storage: {system.storage.l2_cost:.2f} "
          f"(paper: {mbr_storage_cost_l2(config.n2, config.k, config.d):.2f})")

    # A cold read now has to regenerate coded data from the back-end.
    cold_read = system.read(reader=1)
    print(f"cold read -> {cold_read.value!r} (latency {cold_read.duration:.1f})")

    print("\ncommunication costs (normalised, value size = 1):")
    print(f"  write      measured {system.operation_cost(second.op_id):7.2f}   "
          f"paper {mbr_write_cost(config.n1, config.n2, config.k, config.d):7.2f}")
    print(f"  cold read  measured {system.operation_cost(cold_read.op_id):7.2f}   "
          f"paper {mbr_read_cost(config.n1, config.n2, config.k, config.d, 0):7.2f}")

    violation = check_atomicity_by_tags(system.history().complete())
    print(f"\natomicity check: {'OK' if violation is None else violation}")


if __name__ == "__main__":
    main()
