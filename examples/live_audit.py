#!/usr/bin/env python3
"""Live correctness observability: the auditor runs *inside* the run.

Three demonstrations, each a CI gate:

1. **Non-perturbation.**  The same quorum-read scenario runs twice under
   a fixed seed, once bare and once with the live audit pillars (the
   streaming session auditor and the sampling availability monitor)
   attached.  The kernel fingerprints must be byte-identical -- probes
   observe, they never perturb -- and the live verdict must equal the
   batch auditor's on the merged history, field by field.

2. **Online session detection.**  A fabricated stale completion (the
   feed-level analog of the history injections: what a buggy replica
   read path would have reported) is pushed into the live feed mid-run.
   The probe must flag it *at sim time* -- counter, JSONL row, trace-
   ready instant -- before anyone asks for a report.

3. **Online availability detection.**  Mid-run, an under-replication
   drill silently crashes one L2 slot per shard (no membership event, no
   repair task: decay the control plane never saw).  The armed sampling
   epochs must raise the silent-hole alarm while the run is still going.

Exits non-zero on any divergence or missed detection.

Run with:  PYTHONPATH=src python examples/live_audit.py
"""

from repro import ClusterSimulation, LDSConfig
from repro.cluster.replicas import ReplicationConfig
from repro.consistency.history import Operation, READ, WRITE
from repro.consistency.injection import inject_under_replication
from repro.consistency.sessions import check_sessions
from repro.sim import quorum_reads_under_lag

SEED = 7
KEYS = [f"obj-{i}" for i in range(16)]
POOLS = [f"pool-{i}" for i in range(4)]
CONFIG = LDSConfig(n1=3, n2=4, f1=1, f2=1)


def run_quorum(live_audit: bool, sanitize: bool = False) -> ClusterSimulation:
    simulation = ClusterSimulation(
        CONFIG, POOLS, seed=SEED,
        writers_per_shard=2, readers_per_shard=2,
        replication=ReplicationConfig(r=3, replication_lag=400.0,
                                      read_quorum=2),
        read_policy="quorum",
        live_audit=live_audit,
        sanitize=sanitize,
    )
    simulation.ensure_shards(KEYS)
    simulation.apply(quorum_reads_under_lag(KEYS, seed=SEED))
    return simulation


def check_non_perturbation() -> bool:
    print("1. non-perturbation (quorum-reads-under-lag, seed "
          f"{SEED}, audit off vs on vs on+sanitized):")
    bare = run_quorum(live_audit=False)
    live = run_quorum(live_audit=True)
    identical = bare.kernel.fingerprint == live.kernel.fingerprint
    print(f"   kernel fingerprint {bare.kernel.fingerprint:#018x} "
          f"{'==' if identical else '!='} {live.kernel.fingerprint:#018x}")

    # Third leg: the runtime sanitizer checks every event, every probe
    # and the replica layer's pending maps -- and must neither perturb
    # the fingerprint nor find anything.
    sanitized = run_quorum(live_audit=True, sanitize=True)
    sanitizer = sanitized.kernel.sanitizer
    sanitized_identical = \
        sanitized.kernel.fingerprint == bare.kernel.fingerprint
    identical = identical and sanitized_identical and sanitizer.ok
    print(f"   sanitized fingerprint "
          f"{'==' if sanitized_identical else '!='} bare; "
          f"{sanitizer.events_checked} events and "
          f"{sanitizer.probes_checked} probes checked, "
          f"{len(sanitizer.violations)} violation(s)")

    batch = check_sessions(live.history(global_clock=True))
    streamed = live.audit().sessions
    equivalent = (
        streamed.describe() == batch.describe()
        and sorted(map(str, streamed.violations))
        == sorted(map(str, batch.violations))
    )
    print(f"   live verdict:  {streamed.describe()}")
    print(f"   batch verdict: {batch.describe()}")
    probe = live.telemetry.auditor
    print(f"   retention: peak tracked entries "
          f"{probe.auditor.peak_tracked_entries} over "
          f"{streamed.operations_checked} checked operations")
    ok = identical and equivalent and not streamed.violations
    print(f"   {'OK' if ok else 'FAILED'}\n")
    return ok


def check_online_session_detection() -> bool:
    print("2. online session detection (stale completion in the feed):")
    simulation = ClusterSimulation(CONFIG, POOLS[:2], seed=3, live_audit=True)
    simulation.invoke_write("k", b"v1", session="s")
    simulation.run_until_idle()
    simulation.invoke_write("k", b"v2", session="s")
    simulation.run_until_idle()
    first = min((op for op in simulation.history()
                 if op.kind == WRITE and op.is_complete),
                key=lambda op: op.invoked_at)
    now = simulation.now
    stale = Operation(
        op_id="k/replica:drill/read-0",
        client_id="replica:drill/reader-0",
        kind=READ, object_id=first.object_id, value=first.value,
        invoked_at=now + 1.0, responded_at=now + 2.0, tag=first.tag,
        session="s",
    )
    simulation.router.notify_replica_completion(stale)
    simulation.invoke_write("other", b"x", at=now + 80.0)
    simulation.run_until_idle()

    probe = simulation.telemetry.auditor
    detected = bool(probe.rows)
    for row in probe.rows:
        print(f"   t={row['t']:.1f} {row['guarantee']} "
              f"session={row['session']} key={row['key']} "
              f"operations={row['operations']}")
    print(f"   {len(probe.rows)} violation row(s) surfaced at sim time, "
          f"registry: audit_violations="
          f"{sum(probe._c_violations.as_dict().values())}")
    print(f"   {'OK' if detected else 'FAILED'}\n")
    return detected


def check_online_availability_detection() -> bool:
    print("3. online availability detection (silent under-replication "
          "mid-run):")
    simulation = ClusterSimulation(CONFIG, POOLS, seed=SEED, live_audit=True)
    simulation.ensure_shards(KEYS)
    for index, key in enumerate(KEYS):
        simulation.invoke_write(key, b"v", at=float(index))
    simulation.run_until_idle()

    drill = inject_under_replication(simulation, count=len(KEYS))
    start = simulation.now
    for index, key in enumerate(KEYS):
        simulation.invoke_write(key, b"w", at=start + 20.0 * (index + 1))
    simulation.run_until_idle()

    monitor = simulation.telemetry.availability
    assessment = monitor.assessment()
    detected = not assessment.ok
    print(f"   drilled {len(drill.holes)} silent hole(s); sampled "
          f"{assessment.samples_taken} fragments over {assessment.epochs} "
          f"epochs")
    print(f"   {assessment.describe()}")
    report = simulation.audit()
    print(f"   cluster audit: {report.describe()}")
    print(f"   {'OK' if detected and not report.ok else 'FAILED'}\n")
    return detected and not report.ok


def main() -> None:
    print("live audit gate: streaming session auditor + availability "
          "monitor as kernel probes\n")
    ok = check_non_perturbation()
    ok = check_online_session_detection() and ok
    ok = check_online_availability_detection() and ok
    if not ok:
        raise SystemExit("live audit gate FAILED")
    print("live audit gate OK: fingerprints identical, verdicts "
          "equivalent, both drills detected online")


if __name__ == "__main__":
    main()
