#!/usr/bin/env python3
"""Code-layer comparison: MBR vs MSR vs Reed-Solomon vs replication vs RLNC.

Works directly with the code substrate (no protocol) to show why the paper
picks product-matrix MBR codes for the back-end: rebuilding one coded
element via regenerating-code repair downloads far less data than a
Reed-Solomon recreation, while the storage overhead stays close to MDS.

Run with:  python examples/code_comparison.py
"""

from repro.codes import (
    ProductMatrixMBRCode,
    ProductMatrixMSRCode,
    RandomLinearNetworkCode,
    ReedSolomonCode,
    ReplicationCode,
)

PAYLOAD = bytes(range(256)) * 4
N, K, D = 12, 4, 6


def section(title: str) -> None:
    print(f"\n--- {title} ---")


def main() -> None:
    print(f"payload: {len(PAYLOAD)} bytes, code parameters n={N}, k={K}, d={D}")

    section("storage overhead (stored bytes / payload bytes)")
    for name, code in [
        ("replication", ReplicationCode(N)),
        ("Reed-Solomon", ReedSolomonCode(N, K)),
        ("product-matrix MSR", ProductMatrixMSRCode(N, K)),
        ("product-matrix MBR", ProductMatrixMBRCode(N, K, D)),
    ]:
        print(f"  {name:<20} {code.storage_overhead:6.2f}x")

    section("rebuilding one element (download / payload size)")
    mbr = ProductMatrixMBRCode(N, K, D)
    rs = ReedSolomonCode(N, K)
    mbr_elements = mbr.encode(PAYLOAD)
    helpers = {i: mbr.helper_data(i, mbr_elements[i].data, 0) for i in range(1, D + 1)}
    mbr_download = sum(len(h) for h in helpers.values())
    payload_bytes = mbr.stripe_count(len(PAYLOAD)) * mbr.block_size
    repaired = mbr.repair(0, helpers)
    assert repaired.data == mbr_elements[0].data
    print(f"  MBR repair ({D} helpers, beta each):  {mbr_download / payload_bytes:6.3f}")
    rs_elements = rs.encode(PAYLOAD)
    rs_download = sum(len(e.data) for e in rs_elements[:K])
    print(f"  Reed-Solomon recreation (k elements): "
          f"{rs_download / (rs.stripe_count(len(PAYLOAD)) * rs.block_size):6.3f}")

    section("decode-from-any-k sanity checks")
    print(f"  MBR decode from elements 3..{3+K-1}:   "
          f"{mbr.decode(mbr_elements[3:3 + K]) == PAYLOAD}")
    print(f"  RS  decode from elements 5..{5+K-1}:   "
          f"{rs.decode(rs_elements[5:5 + K]) == PAYLOAD}")

    section("random linear network codes (functional repair, probabilistic)")
    rlnc = RandomLinearNetworkCode(n=N, k=K, d=D, alpha=3, beta=1, file_size=12, seed=1)
    probability = rlnc.decode_probability_estimate(trials=30, node_count=K + 1, seed=2)
    print(f"  estimated decode probability from {K + 1} nodes: {probability:.2f}")
    print("  (the conclusion of the paper asks exactly this question about RLNC back-ends)")


if __name__ == "__main__":
    main()
