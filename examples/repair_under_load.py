#!/usr/bin/env python3
"""Repair under load on the global clock: rate-limited background repair
competing with foreground Zipf traffic, all on one timeline.

Builds a 3-pool cluster driven by the global simulation kernel, runs the
shipped ``repair-under-load`` scenario (a back-end node of pool-0 dies at
t=150 while a Zipf-skewed keyed workload is in flight), and prints the
interleaving evidence the legacy per-shard loop could never produce:
repairs starting and finishing *between* foreground operations of other
shards, a rate-limited repair spread, and per-shard atomicity intact.

Run with:  PYTHONPATH=src python examples/repair_under_load.py
"""

from repro import ClusterSimulation, LDSConfig
from repro.sim import repair_under_load

VICTIM = "pool-0/l2-0"


def main() -> None:
    config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
    simulation = ClusterSimulation(
        config, ["pool-0", "pool-1", "pool-2"], seed=17,
        repair_min_interval=12.0, repair_max_concurrent=1,
        repair_detection_delay=3.0, repair_slot_jitter=2.0,
    )
    keys = [f"obj-{i}" for i in range(32)]
    scenario = repair_under_load(
        keys, VICTIM, seed=17,
        operations=192, write_fraction=0.4, duration=700.0, fail_at=150.0,
    )
    print(f"scenario: {scenario.name} -- {scenario.description}")
    # Pre-warm every shard so the failure hits a fully populated pool.
    simulation.ensure_shards(keys)
    simulation.apply(scenario)
    print(simulation.describe())

    # -- the global timeline around the failure --------------------------------
    timeline = simulation.timeline()
    fail_time = next(t for t, cat, _ in timeline if cat == "fail-node")
    repair_done = [t for t, cat, _ in timeline if cat == "repair-done"]
    print(f"\ntimeline excerpt (around the crash at t={fail_time:g}):")
    window_end = repair_done[min(2, len(repair_done) - 1)]
    excerpt = [e for e in timeline if fail_time - 10 <= e[0] <= window_end]
    for t, cat, detail in excerpt[:28]:
        print(f"  t={t:8.2f}  {cat:13s} {detail}")

    # -- interleaving statistics ------------------------------------------------
    stats = simulation.interleaving
    print("\ninterleaving:")
    print(f"  {stats.events_total} merged events over "
          f"{len(stats.events_by_source)} sources; "
          f"{stats.context_switches} cross-source switches "
          f"(rate {stats.switch_rate:.2f})")
    window = [e for e in timeline if repair_done and
              fail_time <= e[0] <= repair_done[-1]]
    foreground = sum(1 for _, cat, _ in window if cat in ("invoke", "respond"))
    repairs = sum(1 for _, cat, _ in window if cat.startswith("repair"))
    shards_active = {detail.split()[-1].split("/")[0].split("@")[0]
                     for _, cat, detail in window if cat == "respond"}
    print(f"  repair window [t={fail_time:g}, t={repair_done[-1]:.1f}]: "
          f"{repairs} repair events interleaved with {foreground} foreground "
          f"events on {len(shards_active)} shards")
    rstats = simulation.repair.stats
    times = simulation.repair.scheduled_times()
    print(f"  repairs completed: {rstats.repairs_completed} "
          f"(skipped {rstats.repairs_skipped}, retries {rstats.retries}), "
          f"rate-limited over {times[-1] - times[0]:.1f} time units")
    print(f"  node {VICTIM} status: "
          f"{simulation.cluster.node(VICTIM).status}")

    # -- correctness -------------------------------------------------------------
    violation = simulation.check_atomicity()
    incomplete = sum(1 for op in simulation.history() if not op.is_complete)
    print(f"\natomicity on every shard history: "
          f"{'OK' if violation is None else violation}")
    print(f"incomplete operations: {incomplete}")
    if violation is not None or incomplete or len(shards_active) < 2:
        raise SystemExit("repair-under-load walkthrough FAILED")
    print("repair-under-load walkthrough OK")


if __name__ == "__main__":
    main()
