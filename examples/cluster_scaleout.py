#!/usr/bin/env python3
"""Cluster scale-out walkthrough: placement, skewed load, failure, repair.

Builds a 4-pool sharded cluster serving 64 objects, drives it with a
Zipf-skewed keyed workload, then fails one back-end node of the busiest
pool.  The background :class:`RepairScheduler` rebuilds the lost coded
element of every shard on that pool -- rate-limited, interleaved with
foreground traffic -- until full redundancy is restored, and the
per-object atomicity check passes over the whole execution.

Run with:  PYTHONPATH=src python examples/cluster_scaleout.py
"""

from repro import (
    KeyedWorkloadRunner,
    LDSConfig,
    ShardedCluster,
    WorkloadGenerator,
)


def main() -> None:
    config = LDSConfig(n1=5, n2=6, f1=1, f2=1)
    pools = [f"pool-{i}" for i in range(4)]
    cluster = ShardedCluster(
        config, pools,
        repair_min_interval=8.0, repair_max_concurrent=2,
        repair_detection_delay=2.0,
    )
    keys = [f"obj-{i}" for i in range(64)]
    print(cluster.describe())

    # -- phase 1: Zipf-skewed keyed workload over the healthy cluster --------
    generator = WorkloadGenerator(seed=7, client_spacing=60.0)
    workload = generator.zipf_keyed(
        keys, num_operations=256, write_fraction=0.4, duration=500.0, s=1.2,
    )
    report = KeyedWorkloadRunner(cluster.router).run(workload)
    counts = cluster.shard_counts()
    print(f"\nphase 1: {len(workload)} operations over {len(cluster.router.shards)} "
          f"shards ({workload.description})")
    print(f"  shard counts by pool: {counts}")
    balance = cluster.router.shard_balance()
    print(f"  placement balance: cv={balance.coefficient_of_variation:.3f}, "
          f"max/mean={balance.max_over_mean:.2f}")
    print(f"  write latency p50/p95: {report.write_latency.p50:.1f}/"
          f"{report.write_latency.p95:.1f}")
    print(f"  read  latency p50/p95: {report.read_latency.p50:.1f}/"
          f"{report.read_latency.p95:.1f}")
    print(f"  batching: {cluster.router_stats.batches_flushed} batches, "
          f"mean size {cluster.router_stats.mean_batch_size:.1f}, "
          f"largest {cluster.router_stats.largest_batch}")

    # Make sure every key has a shard so the failure drill touches them all.
    cluster.router.ensure_shards(keys)
    cluster.run_until_idle()

    # -- phase 2: fail one back-end node of the busiest pool -------------------
    busiest = max(counts, key=counts.get)
    victim = f"{busiest}/l2-0"
    affected = cluster.router.shards_on_pool(busiest)
    print(f"\nphase 2: failing node {victim} "
          f"({len(affected)} shards lose one coded element)")
    cluster.fail_node(victim, time=0.0)
    degraded = sum(1 for s in affected if s.system.alive_l2_count() < config.n2)
    print(f"  degraded shards immediately after the crash: {degraded}")

    # Foreground traffic continues while repairs run in the background.
    followup = generator.keyed_random(
        keys, num_operations=64, write_fraction=0.5, duration=200.0,
    )
    KeyedWorkloadRunner(cluster.router).run(followup)
    cluster.run_until_idle()

    # -- phase 3: verify the repair restored full redundancy ------------------
    stats = cluster.repair.stats
    still_degraded = [s.key for s in cluster.router.shards_on_pool(busiest)
                      if s.system.alive_l2_count() < config.n2]
    times = cluster.repair.scheduled_times()
    print(f"\nphase 3: background repair")
    print(f"  repairs completed: {stats.repairs_completed} "
          f"(skipped {stats.repairs_skipped}, retries {stats.retries})")
    print(f"  repair downloads (normalised): {stats.total_download_fraction:.2f}")
    if times:
        print(f"  rate limiting: first at t={times[0]:.1f}, last at t={times[-1]:.1f}, "
              f"{len(times)} repairs spread over {times[-1] - times[0]:.1f} time units")
    print(f"  node {victim} status: {cluster.node(victim).status}")
    print(f"  shards still degraded: {still_degraded or 'none'}")

    violation = cluster.check_atomicity()
    print(f"\natomicity over the whole execution: "
          f"{'OK' if violation is None else violation}")
    if violation is not None or still_degraded:
        raise SystemExit("cluster scale-out walkthrough FAILED")
    print("cluster scale-out walkthrough OK")


if __name__ == "__main__":
    main()
