#!/usr/bin/env python3
"""Multi-object fleet: temporary vs permanent storage (Figure 6 in miniature).

Runs N independent LDS instances (one per object) under a random write
load, then prints the aggregate edge-layer (temporary) and back-end
(permanent) storage costs over time together with the Lemma V.5 bounds,
plus what a replicated back-end would have cost.

Run with:  python examples/multi_object_fleet.py
"""

from repro import BoundedLatencyModel, LDSConfig, MultiObjectSystem
from repro.core.analysis import (
    mbr_storage_cost_l2,
    multi_object_storage_bounds,
    replication_storage_cost_l2,
)

NUM_OBJECTS = 8
TAU2_OVER_TAU1 = 5.0


def main() -> None:
    config = LDSConfig.symmetric(n=5, f=1)
    print(f"Deployment per object: {config.describe()}, objects: {NUM_OBJECTS}")

    fleet = MultiObjectSystem(
        config, num_objects=NUM_OBJECTS, seed=7,
        latency_factory=lambda i: BoundedLatencyModel(tau0=1, tau1=1,
                                                      tau2=TAU2_OVER_TAU1, seed=i),
    )
    scheduled = fleet.schedule_uniform_write_load(writes_per_unit_time=0.4, duration=60.0)
    print(f"scheduled {len(scheduled)} writes across the fleet over 60 time units")
    fleet.run_all()
    assert fleet.all_operations_complete()

    print("\naggregate storage cost over time (normalised units):")
    print(f"  {'time':>6} | {'L1 (temporary)':>15} | {'L2 (permanent)':>15}")
    for sample in fleet.storage_timeseries([0, 10, 20, 30, 40, 60, 90, 120]):
        print(f"  {sample.time:>6.0f} | {sample.l1_cost:>15.2f} | {sample.l2_cost:>15.2f}")

    peak_l1 = fleet.peak_l1_cost()
    total_l2 = fleet.total_l2_cost()
    bounds = multi_object_storage_bounds(
        NUM_OBJECTS, config.n1, config.n2, config.k,
        theta=len(scheduled), mu=TAU2_OVER_TAU1,
    )
    per_object = mbr_storage_cost_l2(config.n2, config.k, config.d)
    replicated = replication_storage_cost_l2(config.n2) * NUM_OBJECTS

    print(f"\npeak temporary (L1) storage: {peak_l1:.2f}   (Lemma V.5 bound: {bounds.l1_bound:.0f})")
    print(f"permanent (L2) storage:      {total_l2:.2f}   "
          f"(paper: {NUM_OBJECTS} x {per_object:.2f} = {NUM_OBJECTS * per_object:.2f})")
    print(f"replicated back-end would cost: {replicated:.0f}  "
          f"({replicated / total_l2:.1f}x more)")
    print("\nAs in Figure 6: permanent storage grows linearly with the number of "
          "objects while the temporary bound depends only on the write rate.")


if __name__ == "__main__":
    main()
